"""A2 — Section 3.2 ablation: the number of multi-trust steps n (Eq. 8).

"We can choose n as 1 in Maze, which means the one-step direct trust matrix
is enough for Maze.  However, multi-trust can be easily extended to an
n-step direct trust matrix to adapt to other P2P networks."

Experiment: measure pairwise *reach* (fraction of user pairs with non-zero
RM) as n grows, on (a) a dense Maze-like one-step matrix (evaluation
coverage 100%) and (b) a sparse one (evaluation coverage 5%, the regime
other P2P networks without implicit evaluations live in).

Expected shape: the dense matrix gains almost nothing beyond n=1 (the
paper's choice); the sparse matrix needs n >= 2 to approach useful reach.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import render_table
from repro.core import (EvaluationStore, ReputationConfig,
                        build_file_trust_matrix)

from .conftest import DAY, publish_result, run_once

STEPS = [1, 2, 3, 4]
NUM_USERS = 300


def _build_one_step(maze_trace, evaluation_coverage: float):
    config = ReputationConfig(retention_saturation_seconds=10 * DAY)
    rng = random.Random(11)
    store = EvaluationStore(config=config)
    users = set()
    horizon = maze_trace.parameters.trace_days * DAY
    for file_id, holder_ids in maze_trace.initial_holdings.items():
        for user_id in holder_ids:
            if len(users) >= NUM_USERS and user_id not in users:
                continue
            users.add(user_id)
            if rng.random() < evaluation_coverage:
                store.record_retention(user_id, file_id, horizon, 0.0)
    return build_file_trust_matrix(store, config), sorted(users)


def _reach(matrix, users):
    """Fraction of ordered user pairs with a positive matrix entry."""
    sample = users[:150]
    pairs = 0
    reached = 0
    for observer in sample:
        row = matrix.row(observer)
        for target in sample:
            if target == observer:
                continue
            pairs += 1
            if row.get(target, 0.0) > 0.0:
                reached += 1
    return reached / pairs if pairs else 0.0


def _run(maze_trace):
    from repro.analysis import steps_to_converge

    dense_one_step, dense_users = _build_one_step(maze_trace, 1.0)
    sparse_one_step, sparse_users = _build_one_step(maze_trace, 0.05)
    results = {}
    convergence = {}
    for label, one_step, users in (("dense (k=100%)", dense_one_step,
                                    dense_users),
                                   ("sparse (k=5%)", sparse_one_step,
                                    sparse_users)):
        current = one_step
        per_step = []
        for n in STEPS:
            if n > 1:
                current = current.matmul(one_step)
            per_step.append(_reach(current, users))
        results[label] = per_step
        convergence[label] = steps_to_converge(one_step, max_steps=4,
                                               tolerance=0.95)
    return results, convergence


@pytest.mark.benchmark(group="ablations")
def test_ablation_multitrust_steps(benchmark, maze_trace):
    results, convergence = run_once(benchmark, _run, maze_trace)

    rows = [[f"n={n}", results["dense (k=100%)"][index],
             results["sparse (k=5%)"][index]]
            for index, n in enumerate(STEPS)]
    table = render_table(
        ["steps", "reach, dense one-step", "reach, sparse one-step"], rows,
        title="A2: multi-trust steps (RM = TM^n) vs pairwise reach")
    convergence_note = (
        f"\nordering convergence (95% agreement): dense at n="
        f"{convergence['dense (k=100%)']}, sparse at n="
        f"{convergence['sparse (k=5%)']}")
    publish_result("ablation_a2_steps", table + convergence_note)

    # The dense (Maze-like) regime's ordering is already stable at n=1 —
    # the quantitative form of the paper's "we can choose n as 1 in Maze".
    assert convergence["dense (k=100%)"] == 1

    dense = results["dense (k=100%)"]
    sparse = results["sparse (k=5%)"]
    # Dense regime: n=1 already reaches nearly everyone — the paper's "n=1
    # is enough for Maze".
    assert dense[0] > 0.8
    assert dense[1] - dense[0] < 0.15
    # Sparse regime: n=1 reaches few, deeper steps add substantial reach —
    # "extended to an n-step ... to adapt to other P2P networks".
    assert sparse[0] < 0.5
    assert max(sparse[1:]) > sparse[0] * 1.5
    # Reach is monotone in n (trust paths only accumulate).
    for series in (dense, sparse):
        for earlier, later in zip(series, series[1:]):
            assert later >= earlier - 1e-9

"""C4 — Section 3.4 claim: trust-based service differentiation.

"The system features service differentiation based on reputation ... give
downloading preference to users with high reputations ... a bandwidth quota
is applied to downloads of users with lower reputations.  Different from
other reputation systems, uploading real files, voting on files and ranking
other users honestly and even deleting fake files quicker can increase a
user's reputation and give him better service."

Experiment: a mixed population (honest sharers+voters, lazy voters, free-
riders, polluters) runs twice — incentive mechanism ON vs OFF — under the
paper's mechanism.  We report per-class mean bandwidth, mean queue wait and
goodput, and the fake-removal latency.

Expected shape: with the incentive ON, honest sharers get strictly better
service than free-riders and polluters; with it OFF the classes are
indistinguishable.  Voting earns credit, so honest voters outrank lazy
voters on effective reputation.
"""

from __future__ import annotations

import statistics

import pytest

from repro.analysis import jain_fairness, render_table
from repro.baselines import MultiDimensionalMechanism
from repro.core import ReputationConfig
from repro.simulator import (FileSharingSimulation, ScenarioSpec,
                             SimulationConfig)

from .conftest import DAY, publish_result, run_once

DURATION = 3 * DAY
SCENARIO = ScenarioSpec(honest=24, lazy_voters=8, free_riders=8, polluters=6,
                        honest_vote_probability=0.4)


def _simulate(use_differentiation: bool):
    config = SimulationConfig(
        scenario=SCENARIO, duration_seconds=DURATION, num_files=120,
        request_rate=0.03, seed=31,
        use_service_differentiation=use_differentiation,
        use_file_filtering=True)
    reputation_config = ReputationConfig(
        retention_saturation_seconds=DURATION / 3)
    mechanism = MultiDimensionalMechanism(reputation_config)
    simulation = FileSharingSimulation(config, mechanism)
    metrics = simulation.run()
    return simulation, mechanism, metrics


def _run():
    on = _simulate(True)
    off = _simulate(False)
    return on, off


def _credit_by_class(simulation, mechanism):
    per_class = {}
    for peer_id, peer in simulation.peers.items():
        per_class.setdefault(peer.label, []).append(
            mechanism.system.credits.credit(peer_id))
    return {label: statistics.mean(values)
            for label, values in per_class.items()}


@pytest.mark.benchmark(group="claims")
def test_claim_service_differentiation(benchmark):
    (sim_on, mech_on, metrics_on), (sim_off, mech_off, metrics_off) = \
        run_once(benchmark, _run)

    rows = []
    for label in sorted(set(metrics_on.class_labels())
                        | set(metrics_off.class_labels())):
        stats_on = metrics_on.stats_for(label)
        stats_off = metrics_off.stats_for(label)
        rows.append([
            label,
            stats_on.mean_bandwidth / 1024.0,
            stats_off.mean_bandwidth / 1024.0,
            stats_on.mean_wait,
            stats_off.mean_wait,
            stats_on.real_downloads,
            stats_off.real_downloads,
        ])
    table = render_table(
        ["class", "bw on (KB/s)", "bw off (KB/s)", "wait on (s)",
         "wait off (s)", "real dl on", "real dl off"], rows,
        title="C4: per-class service with incentive ON vs OFF", precision=1)

    credits = _credit_by_class(sim_on, mech_on)
    credit_table = render_table(
        ["class", "mean incentive credit"],
        [[label, credits.get(label, 0.0)] for label in sorted(credits)],
        title="\nC4: incentive credit earned (ON run)")
    removal = render_table(
        ["run", "mean fake-removal latency (h)", "fake fraction"],
        [["incentive on", metrics_on.mean_fake_removal_latency / 3600.0,
          metrics_on.overall_fake_fraction],
         ["incentive off", metrics_off.mean_fake_removal_latency / 3600.0,
          metrics_off.overall_fake_fraction]],
        title="\nC4: pollution cleanup")

    def class_fairness(metrics):
        return jain_fairness([metrics.stats_for(label).mean_bandwidth
                              for label in metrics.class_labels()])

    fairness_on = class_fairness(metrics_on)
    fairness_off = class_fairness(metrics_off)
    fairness_note = (
        f"\nJain fairness of per-class bandwidth: "
        f"incentive on {fairness_on:.4f}, off {fairness_off:.4f} "
        f"(differentiation deliberately lowers cross-class fairness)")
    publish_result("claim_c4_service_differentiation",
                   table + "\n" + credit_table + "\n" + removal
                   + fairness_note)

    # --- Paper-shape assertions -------------------------------------- #
    bw = {label: metrics_on.stats_for(label).mean_bandwidth
          for label in metrics_on.class_labels()}
    bw_off = {label: metrics_off.stats_for(label).mean_bandwidth
              for label in metrics_off.class_labels()}

    # ON: honest sharers receive more bandwidth than free-riders and
    # polluters.
    assert bw["honest"] > bw["free-rider"]
    assert bw["honest"] > bw["polluter"]
    # OFF: the same classes are within noise of each other (no mechanism to
    # separate them).
    spread_off = (max(bw_off.values()) - min(bw_off.values()))
    assert spread_off < 0.25 * statistics.mean(bw_off.values())
    # Differentiation makes the cross-class allocation measurably less
    # equal than the undifferentiated run.
    assert fairness_on < fairness_off

    # Voting earns credit honest voters get and lazy voters forgo.
    from repro.core import IncentiveAction
    vote_credit = {}
    for peer_id, peer in sim_on.peers.items():
        vote_credit.setdefault(peer.label, 0)
        vote_credit[peer.label] += mech_on.system.credits.action_count(
            peer_id, IncentiveAction.VOTE)
    assert vote_credit["honest"] > 0
    assert vote_credit["lazy-voter"] == 0
    # Free-riders serve nobody, so they cannot earn upload credit.
    upload_credit = {}
    for peer_id, peer in sim_on.peers.items():
        upload_credit.setdefault(peer.label, 0)
        upload_credit[peer.label] += mech_on.system.credits.action_count(
            peer_id, IncentiveAction.UPLOAD_REAL_FILE)
    assert upload_credit["free-rider"] == 0
    assert upload_credit["honest"] > 0

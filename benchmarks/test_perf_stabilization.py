"""P2 — Chord stabilisation cost under churn.

The in-process oracle network hides the work real Chord does after churn;
:class:`~repro.dht.stabilization.StabilizingDHTNetwork` performs it
explicitly.  This bench measures, for growing ring sizes, how many local
stabilisation rounds a fresh ring and a churn burst need before every
pointer matches the ideal ring — and that lookups are correct afterwards.

Expected shape: rounds grow slowly (finger repair is round-robin, so the
bound is driven by the finger count, not the ring size), and a burst that
kills 20% of nodes needs no more rounds than full bootstrap.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import render_table
from repro.dht import hash_key, lookup
from repro.dht.stabilization import StabilizingDHTNetwork

from .conftest import publish_result, run_once

RING_SIZES = [16, 32, 64, 128]


def _bootstrap_and_churn(size: int):
    network = StabilizingDHTNetwork()
    for index in range(size):
        network.join(f"node-{index:04d}")
    bootstrap_rounds = network.stabilize_until_consistent(max_rounds=512)

    rng = random.Random(size)
    victims = rng.sample([node.user_id for node in network.nodes()],
                         max(size // 5, 1))
    for victim in victims:
        network.fail(victim)
    churn_rounds = network.stabilize_until_consistent(max_rounds=512)

    # Correctness spot check after repair.
    for seed in range(20):
        key = hash_key(f"check-{seed}")
        assert lookup(network, key).owner is network.owner_of(key)
    return bootstrap_rounds, churn_rounds


def _run():
    return {size: _bootstrap_and_churn(size) for size in RING_SIZES}


@pytest.mark.benchmark(group="perf")
def test_perf_stabilization(benchmark):
    results = run_once(benchmark, _run)

    rows = [[size, bootstrap, churn]
            for size, (bootstrap, churn) in results.items()]
    publish_result("perf_stabilization", render_table(
        ["ring size", "bootstrap rounds", "rounds after 20% failures"],
        rows, title="P2: Chord stabilisation rounds to consistency"))

    for bootstrap, churn in results.values():
        # Convergence must happen well within the round budget.
        assert bootstrap < 512
        assert churn < 512
        # Repairing a 20% burst is never harder than full bootstrap + slack.
        assert churn <= bootstrap + 16

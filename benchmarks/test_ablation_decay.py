"""A4 — recency-decay extension of Eq. 4 (our §4.3 generalisation).

Section 4.3 handles stale state with hard interval pruning ("users only
need to preserve the evaluations within an interval").  The repo implements
a smooth alternative: each download's Eq. 4 contribution decays
exponentially with age.  This ablation shows why recency matters:

Scenario: a *turncoat* uploader serves good content for the first half of
the window, then switches to serving fakes; a *steady* uploader serves good
content throughout.  At the end of the window we compare the downloader's
normalised volume trust (DM row) toward both uploaders, with and without
decay, plus the hard-pruning variant for reference.

Expected shape: without decay the turncoat retains roughly half of the
trust (old good bytes never fade); with decay (or pruning) trust tracks
*current* behaviour and the turncoat collapses toward zero.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core import (DownloadLedger, EvaluationStore, ReputationConfig,
                        build_volume_trust_matrix)

from .conftest import DAY, publish_result, run_once

WINDOW_DAYS = 30
SWITCH_DAY = 15
PURE_EXPLICIT = ReputationConfig(eta=0.0, rho=1.0)


def _build_history():
    ledger = DownloadLedger()
    store = EvaluationStore(config=PURE_EXPLICIT)
    for day in range(WINDOW_DAYS):
        timestamp = day * DAY
        # One download from each uploader per day, same size.
        good_file = f"steady-{day}"
        ledger.record_download("alice", "steady", good_file, 100.0,
                               timestamp=timestamp)
        store.record_vote("alice", good_file, 1.0, timestamp)

        turncoat_file = f"turncoat-{day}"
        ledger.record_download("alice", "turncoat", turncoat_file, 100.0,
                               timestamp=timestamp)
        quality = 1.0 if day < SWITCH_DAY else 0.0  # fakes after the switch
        store.record_vote("alice", turncoat_file, quality, timestamp)
    return ledger, store


def _run():
    ledger, store = _build_history()
    now = WINDOW_DAYS * DAY

    undecayed = build_volume_trust_matrix(ledger, store, PURE_EXPLICIT)

    decayed = build_volume_trust_matrix(ledger, store, PURE_EXPLICIT,
                                        now=now, half_life=5 * DAY)

    pruned_ledger, pruned_store = _build_history()
    cutoff = now - 10 * DAY
    pruned_ledger.prune_older_than(cutoff)
    pruned = build_volume_trust_matrix(pruned_ledger, pruned_store,
                                       PURE_EXPLICIT)

    variants = {
        "no decay (paper Eq. 4)": undecayed,
        "exp decay, half-life 5d": decayed,
        "hard pruning, 10d window (Sec 4.3)": pruned,
    }
    return {name: (matrix.get("alice", "steady"),
                   matrix.get("alice", "turncoat"))
            for name, matrix in variants.items()}


@pytest.mark.benchmark(group="ablations")
def test_ablation_decay(benchmark):
    results = run_once(benchmark, _run)

    rows = [[name, steady, turncoat,
             turncoat / steady if steady else None]
            for name, (steady, turncoat) in results.items()]
    publish_result("ablation_a4_decay", render_table(
        ["variant", "DM(alice->steady)", "DM(alice->turncoat)",
         "turncoat share"], rows,
        title=("A4: volume-trust recency — turncoat uploader "
               f"(good until day {SWITCH_DAY}, fake after)")))

    no_decay = results["no decay (paper Eq. 4)"]
    decayed = results["exp decay, half-life 5d"]
    pruned = results["hard pruning, 10d window (Sec 4.3)"]

    # Undecayed Eq. 4: the turncoat keeps half the steady uploader's
    # byte-trust (15 good days vs 30) despite serving only fakes lately.
    assert no_decay[1] / no_decay[0] == pytest.approx(0.5, abs=0.05)
    # Decay collapses the turncoat's share toward zero.
    assert decayed[1] / decayed[0] < 0.15
    # Hard pruning achieves the same end state (everything recent from the
    # turncoat is fake), but as a step function.
    assert pruned[1] / pruned[0] < 0.05
    # All variants keep trusting the steady uploader.
    for steady, _ in results.values():
        assert steady > 0.4
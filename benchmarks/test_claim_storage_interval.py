"""C9 — Section 4.3 claim: interval-bounded evaluation storage suffices.

"Most files' numbers of owners are small and most files have a small life
cycle which is also shown in [Figure] 1.  So users only need to preserve
the evaluations within an interval when they have evaluated so many files."

Evaluations of files a user still holds cost nothing (they are re-derived
from current retention); what §4.3 bounds is the memory of *dead* files —
titles that left the system.  This bench prunes evaluations of files that
have been dead longer than a grace interval and measures

* the mean number of evaluations a user must store at the end of the
  window (the evaluation-exchange message cost §4.3 worries about), and
* the request coverage over the final week (the benefit being protected).

Expected shape: dropping long-dead files saves storage with almost no
coverage loss — requests target alive files, and trust overlap through a
file that just died is rare — which is exactly the paper's argument.
"""

from __future__ import annotations

import statistics
from typing import Dict, Set

import pytest

from repro.analysis import render_table
from repro.traces import GeneratedTrace, MazeTraceGenerator, TraceParameters

from .conftest import DAY, publish_result, run_once

#: Grace periods (days a dead file's evaluation is kept); None = keep all.
GRACES_DAYS = [0, 5, 10, None]
FINAL_WINDOW_DAYS = 7


def _replay_with_grace(generated: GeneratedTrace,
                       grace_days) -> Dict[str, float]:
    grace = None if grace_days is None else grace_days * DAY
    horizon = generated.parameters.trace_days * DAY
    final_start = horizon - FINAL_WINDOW_DAYS * DAY
    death_time = {f.file_id: f.death_time for f in generated.catalog}

    evaluated: Dict[str, Set[str]] = {}
    for file_id, holders in generated.initial_holdings.items():
        for user_id in holders:
            evaluated.setdefault(user_id, set()).add(file_id)

    def retained(file_id: str, now: float) -> bool:
        if grace is None:
            return True
        return death_time[file_id] >= now - grace

    covered = total = 0
    for record in generated.trace:
        now = record.timestamp
        if now >= final_start:
            total += 1
            uploader_files = evaluated.get(record.uploader_id, set())
            downloader_files = evaluated.get(record.downloader_id, set())
            small, large = ((uploader_files, downloader_files)
                            if len(uploader_files) <= len(downloader_files)
                            else (downloader_files, uploader_files))
            if any(file_id in large and retained(file_id, now)
                   for file_id in small):
                covered += 1
        evaluated.setdefault(record.downloader_id, set()).add(
            record.content_hash)

    stored = [sum(1 for file_id in files if retained(file_id, horizon))
              for files in evaluated.values()]
    return {
        "coverage": covered / total if total else 0.0,
        "mean_stored": statistics.mean(stored),
    }


def _run():
    generated = MazeTraceGenerator(TraceParameters(
        num_users=800, num_files=1000, num_actions=10_000, trace_days=30.0,
        library_size=40, seed=77)).generate()
    return {grace: _replay_with_grace(generated, grace)
            for grace in GRACES_DAYS}


@pytest.mark.benchmark(group="claims")
def test_claim_storage_interval(benchmark):
    results = run_once(benchmark, _run)

    def label(grace):
        return "keep everything" if grace is None else f"dead > {grace}d dropped"

    rows = [[label(grace), r["mean_stored"], r["coverage"]]
            for grace, r in results.items()]
    publish_result("claim_c9_storage_interval", render_table(
        ["policy", "mean stored evaluations/user", "final-week coverage"],
        rows, title="C9: pruning dead files' evaluations (Sec 4.3)"))

    full = results[None]
    # Storage shrinks monotonically as the grace tightens.
    stored = [results[g]["mean_stored"] for g in (0, 5, 10)]
    assert stored[0] <= stored[1] <= stored[2] <= full["mean_stored"]
    assert results[0]["mean_stored"] < 0.8 * full["mean_stored"]
    # Coverage barely moves: a short grace keeps ~all of it, and even the
    # tightest policy (drop the moment a file dies) keeps most.
    for grace in (5, 10):
        assert results[grace]["coverage"] > 0.9 * full["coverage"]
    assert results[0]["coverage"] > 0.8 * full["coverage"]

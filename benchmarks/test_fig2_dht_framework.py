"""F2 — Figure 2: the DHT-based framework, steps 1-6, with message costs.

Figure 2 is the paper's architecture diagram; its companion text (Section 4)
makes checkable claims this bench regenerates as a table:

* Lookup is the basic operation and routing costs O(log n) hops.
* A file's evaluation is published *with* its index record, so adding the
  evaluation layer costs **zero extra lookup messages**, only extra bytes
  ("the system will not need more lookup messages ... though it will
  increase the size of the information slightly").
* All six steps — publish, update, retrieve, user reputation, file
  reputation, service differentiation — run end to end over the overlay.
* Forged third-party evaluations are rejected via signatures.
"""

from __future__ import annotations

import math
import statistics

import pytest

from repro.analysis import render_table
from repro.core import ReputationConfig
from repro.dht import (DHTNetwork, EvaluationOverlay, KeyAuthority,
                       MessageKind, attempt_forged_publication)

from .conftest import publish_result, run_once

NUM_NODES = 64
NUM_FILES = 200
PURE_EXPLICIT = ReputationConfig(eta=0.0, rho=1.0)


def _run_framework():
    overlay = EvaluationOverlay(DHTNetwork(), KeyAuthority(),
                                config=PURE_EXPLICIT, replication=2,
                                record_ttl=10 * 3600.0)
    users = [f"user-{index:03d}" for index in range(NUM_NODES)]
    for user_id in users:
        overlay.register_user(user_id)

    # Step 1: publication (each file published with evaluation by 3 owners;
    # additionally every user holds and evaluates a few popular titles, so
    # evaluation lists overlap — the substrate Eq. 2 trust needs).
    publish_hops = []
    for index in range(NUM_FILES):
        file_id = f"file-{index:04d}"
        for owner_offset in range(3):
            owner = users[(index + owner_offset * 17) % NUM_NODES]
            evaluation = 0.9 if index % 4 else 0.1
            publish_hops.append(
                overlay.publish(owner, file_id, evaluation, now=0.0))
    for user_id in users:
        for popular_index in range(3):
            file_id = f"file-{popular_index:04d}"
            evaluation = 0.9 if popular_index % 4 else 0.1
            publish_hops.append(
                overlay.publish(user_id, file_id, evaluation, now=0.0))
    publish_lookups = overlay.tally.count(MessageKind.LOOKUP)
    publish_count = NUM_FILES * 3 + NUM_NODES * 3

    # Baseline: the same index publications *without* evaluations, in a
    # parallel overlay, to compare message costs.
    bare = EvaluationOverlay(DHTNetwork(), KeyAuthority(),
                             config=PURE_EXPLICIT, replication=2,
                             record_ttl=10 * 3600.0)
    for user_id in users:
        bare.register_user(user_id)
    for index in range(NUM_FILES):
        file_id = f"file-{index:04d}"
        for owner_offset in range(3):
            owner = users[(index + owner_offset * 17) % NUM_NODES]
            bare.publish_index_only(owner, file_id, now=0.0)
    for user_id in users:
        for popular_index in range(3):
            bare.publish_index_only(user_id, f"file-{popular_index:04d}",
                                    now=0.0)

    # Step 2: update via republication.
    overlay.republish_all(users[0], now=3600.0)

    # Step 3: retrieval.
    retrieved = overlay.retrieve(users[5], "file-0004", now=3700.0)

    # Step 4+5: user reputation and file reputation.
    score, _ = overlay.file_reputation(users[5], "file-0004", now=3700.0)

    # Step 6: service differentiation.
    level = overlay.service_level(users[5], retrieved.owners[0])

    # Security: forged publication must be rejected.
    forged_accepted = attempt_forged_publication(
        overlay, attacker_id=users[1], victim_id=users[2],
        file_id="file-0004", forged_evaluation=0.0, now=3700.0)

    return {
        "overlay": overlay,
        "bare": bare,
        "publish_hops": publish_hops,
        "publish_lookups": publish_lookups,
        "publish_count": publish_count,
        "retrieved": retrieved,
        "file_score": score,
        "service_level": level,
        "forged_accepted": forged_accepted,
    }


@pytest.mark.benchmark(group="fig2")
def test_fig2_dht_framework(benchmark):
    result = run_once(benchmark, _run_framework)
    overlay = result["overlay"]
    bare = result["bare"]

    mean_hops = statistics.mean(result["publish_hops"])
    publish_lookups = result["publish_lookups"]
    bare_lookups = bare.tally.count(MessageKind.LOOKUP)
    eval_bytes = overlay.tally.bytes_sent.get(MessageKind.PUBLISH, 0)
    bare_bytes = bare.tally.bytes_sent.get(MessageKind.PUBLISH, 0)

    rows = [
        ["nodes", NUM_NODES],
        ["publications (index+evaluation)", result["publish_count"]],
        ["mean publish lookup hops", round(mean_hops, 2)],
        ["log2(n) reference", round(math.log2(NUM_NODES), 2)],
        ["publish lookups with evaluations", publish_lookups],
        ["publish lookups index-only", bare_lookups],
        ["extra lookups from evaluations", publish_lookups - bare_lookups],
        ["publish bytes with evaluations", eval_bytes],
        ["publish bytes index-only", bare_bytes],
        ["byte overhead ratio", round(eval_bytes / bare_bytes, 2)],
        ["retrieved owners", len(result["retrieved"].owners)],
        ["retrieved evaluations", len(result["retrieved"].evaluations)],
        ["file reputation (step 5)", round(result["file_score"], 3)
         if result["file_score"] is not None else None],
        ["bandwidth quota (step 6, B/s)",
         round(result["service_level"].bandwidth_quota)],
        ["forged evaluation accepted", result["forged_accepted"]],
    ]
    publish_result("fig2", render_table(
        ["quantity", "value"], rows,
        title="Figure 2: DHT framework walkthrough (steps 1-6)"))

    # --- Paper-shape assertions -------------------------------------- #
    # O(log n) routing.
    assert mean_hops < 2 * math.log2(NUM_NODES)
    # Evaluations piggyback: identical lookup count to the bare index
    # overlay for the same publications, strictly more bytes.
    assert publish_lookups == bare_lookups
    assert eval_bytes > bare_bytes
    assert eval_bytes < 5 * bare_bytes  # "increase ... slightly"
    # The pipeline produced a usable judgement and service level.
    assert result["retrieved"].evaluations
    assert result["file_score"] is not None
    assert result["service_level"].bandwidth_quota > 0
    # Signatures hold.
    assert not result["forged_accepted"]

"""F1 — Figure 1: request coverage vs. evaluation coverage over 30 days.

Paper setup (Section 3.2): replay a 30-day Maze download log; with
evaluation coverage k% each user evaluates k% of his files; a request is
covered when a file-based direct-trust edge exists uploader->downloader.

Paper's reported shape:
* k = 5%  -> coverage is small;
* k = 20% -> coverage reaches ~50%;
* k = 100% (implicit retention evaluation) -> coverage above 80%;
* coverage does not change significantly over time (user/file churn);
* download-volume and user-based trust increase coverage further.

This bench regenerates the figure as a per-day series for
k in {5, 10, 20, 50, 100}% plus volume/user-augmented variants, asserts the
shape, and records it to benchmarks/results/fig1.txt.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_ascii_chart, render_series, render_table
from repro.traces import CoverageReplayer

from .conftest import publish_result, run_once

COVERAGES = [0.05, 0.10, 0.20, 0.50, 1.00]


def _run_figure1(maze_trace):
    series = {}
    for coverage in COVERAGES:
        label = f"k={int(coverage * 100)}%"
        series[label] = CoverageReplayer(maze_trace, coverage, seed=1).run()
    series["k=10%+vol"] = CoverageReplayer(
        maze_trace, 0.10, include_volume=True, seed=1).run()
    series["k=10%+user"] = CoverageReplayer(
        maze_trace, 0.10, include_user=True,
        rank_probability=0.2, seed=1).run()
    return series


@pytest.mark.benchmark(group="fig1")
def test_fig1_request_coverage(benchmark, maze_trace):
    results = run_once(benchmark, _run_figure1, maze_trace)

    days = sorted({point.day for series in results.values()
                   for point in series.points})
    per_day = {
        label: [next((p.fraction for p in series.points if p.day == day), 0.0)
                for day in days]
        for label, series in results.items()
    }
    text = render_series(
        per_day, x_labels=[f"day{day:02d}" for day in days], x_header="time",
        title="Figure 1: request coverage vs evaluation coverage (per day)")
    summary = render_table(
        ["series", "overall", "steady-state"],
        [[label, series.overall, series.steady_state()]
         for label, series in results.items()],
        title="\nFigure 1 summary")
    chart = render_ascii_chart(
        {label: per_day[label]
         for label in ("k=5%", "k=20%", "k=100%")},
        height=12, y_min=0.0, y_max=1.0,
        title="\nFigure 1 (x = day, y = request coverage)")
    publish_result("fig1", text + "\n" + summary + "\n" + chart)

    # --- Paper-shape assertions -------------------------------------- #
    overall = {label: series.overall for label, series in results.items()}
    # Monotone in k.
    assert (overall["k=5%"] < overall["k=10%"] < overall["k=20%"]
            < overall["k=50%"] < overall["k=100%"])
    # k=5% small; k=100% (implicit evaluation) high — the paper's >80%.
    assert overall["k=5%"] < 0.15
    assert results["k=100%"].steady_state() > 0.8
    # Extra dimensions increase coverage (Section 3.2 closing remark).
    assert overall["k=10%+vol"] > overall["k=10%"]
    assert overall["k=10%+user"] > overall["k=10%"]
    # Coverage stays roughly flat over time after warm-up: compare the
    # mean of the second week against the final week.
    full = results["k=100%"]
    fractions = full.fractions()
    mid = sum(fractions[7:14]) / 7
    late = sum(fractions[-7:]) / 7
    assert abs(late - mid) < 0.15

"""C6 — Section 4.2 claims: the framework resists its catalogued attacks.

The paper lists four attacks; this bench exercises each one end to end:

1. **Third-party evaluation forgery** — "solved by digital signature": we
   measure the survival rate of forged publications (must be 0%).
3. **Own-evaluation forgery (mimicry)** — "a virtual user examine other
   users' evaluations randomly.  If there are great differences between two
   examinations ... he should be punished": we measure examiner precision
   and recall over a mixed honest/mimic population.
4. **Collusion** — colluders rank each other 1.0 and praise their fakes; we
   verify that honest observers' pairwise multi-trust keeps colluders below
   honest peers, and that their fakes are still identified.

(Attack 2, index peers dropping queries, is routing security and explicitly
out of the paper's scope; replication in ``repro.dht`` mitigates it and the
DHT tests cover it.)
"""

from __future__ import annotations

import statistics

import pytest

from repro.analysis import render_table
from repro.baselines import MultiDimensionalMechanism
from repro.core import ReputationConfig
from repro.dht import (DHTNetwork, EvaluationOverlay, KeyAuthority,
                       ProactiveExaminer, attempt_forged_publication,
                       make_mimic_responder)
from repro.simulator import (FileSharingSimulation, ScenarioSpec,
                             SimulationConfig)

from .conftest import DAY, publish_result, run_once

NUM_DHT_USERS = 40
NUM_MIMICS = 8
NUM_HONEST_SUSPECTS = 12


def _forgery_experiment():
    """Attack 1: forged third-party evaluations are always rejected."""
    overlay = EvaluationOverlay(DHTNetwork(), KeyAuthority())
    users = [f"u{index:02d}" for index in range(NUM_DHT_USERS)]
    for user_id in users:
        overlay.register_user(user_id)
    survived = 0
    attempts = 50
    for attempt in range(attempts):
        attacker = users[attempt % 10]
        victim = users[10 + attempt % 10]
        if attempt_forged_publication(overlay, attacker, victim,
                                      f"file-{attempt}", 0.0, now=0.0):
            survived += 1
    return survived, attempts


def _examination_experiment():
    """Attack 3: proactive examination flags mimics, spares honest users."""
    overlay = EvaluationOverlay(DHTNetwork(), KeyAuthority())
    catalog = [f"file-{index:02d}" for index in range(20)]
    honest = [f"honest-{index:02d}" for index in range(NUM_HONEST_SUSPECTS)]
    mimics = [f"mimic-{index:02d}" for index in range(NUM_MIMICS)]
    for user_id in honest + mimics:
        overlay.register_user(user_id)
    for position, user_id in enumerate(honest):
        for offset in range(8):
            file_id = catalog[(position + offset) % len(catalog)]
            overlay.publish(user_id, file_id, ((position + offset) % 5) / 4.0,
                            now=0.0)
    for user_id in mimics:
        overlay.set_responder(user_id, make_mimic_responder(overlay))

    examiner = ProactiveExaminer(overlay, seed=3)
    flagged = {user_id: examiner.examine(user_id, catalog).flagged
               for user_id in honest + mimics}
    true_positives = sum(flagged[user_id] for user_id in mimics)
    false_positives = sum(flagged[user_id] for user_id in honest)
    return true_positives, false_positives


def _collusion_experiment():
    """Attack 4: collusion cliques under the full mechanism."""
    duration = 2 * DAY
    config = SimulationConfig(
        scenario=ScenarioSpec(honest=24, colluders=8, clique_size=4,
                              honest_vote_probability=0.4),
        duration_seconds=duration, num_files=100, request_rate=0.03,
        seed=47)
    mechanism = MultiDimensionalMechanism(
        ReputationConfig(retention_saturation_seconds=duration / 3))
    simulation = FileSharingSimulation(config, mechanism)
    metrics = simulation.run()

    honest_ids = [pid for pid, peer in simulation.peers.items()
                  if peer.label == "honest"]
    colluder_ids = [pid for pid, peer in simulation.peers.items()
                    if peer.label == "colluder"]

    def honest_view(target):
        return statistics.mean(
            mechanism.system.user_reputation(observer, target)
            for observer in honest_ids if observer != target)

    honest_mean = statistics.mean(honest_view(uid) for uid in honest_ids)
    colluder_mean = statistics.mean(honest_view(uid) for uid in colluder_ids)

    # Within the clique, colluders do trust each other highly (the attack
    # "works" internally) — but that trust does not leak into honest views.
    clique_view = statistics.mean(
        mechanism.system.user_reputation(colluder_ids[0], other)
        for other in colluder_ids[1:4])
    return honest_mean, colluder_mean, clique_view, metrics


def _run():
    return (_forgery_experiment(), _examination_experiment(),
            _collusion_experiment())


@pytest.mark.benchmark(group="claims")
def test_claim_attack_resilience(benchmark):
    ((survived, attempts), (true_positives, false_positives),
     (honest_mean, colluder_mean, clique_view, metrics)) = \
        run_once(benchmark, _run)

    rows = [
        ["A1: forged publications survived", f"{survived}/{attempts}"],
        ["A3: mimics flagged", f"{true_positives}/{NUM_MIMICS}"],
        ["A3: honest falsely flagged",
         f"{false_positives}/{NUM_HONEST_SUSPECTS}"],
        ["A4: honest peers' mean reputation (honest view)",
         round(honest_mean, 6)],
        ["A4: colluders' mean reputation (honest view)",
         round(colluder_mean, 6)],
        ["A4: intra-clique mutual reputation", round(clique_view, 6)],
        ["A4: fake fraction of downloads",
         round(metrics.overall_fake_fraction, 3)],
    ]
    publish_result("claim_c6_attacks", render_table(
        ["attack / measure", "result"], rows,
        title="C6: Section 4.2 attack resilience"))

    # Attack 1: signatures make forgery survival impossible.
    assert survived == 0
    # Attack 3: examination catches every mimic without smearing honest
    # users.
    assert true_positives == NUM_MIMICS
    assert false_positives == 0
    # Attack 4: collusion inflates intra-clique trust but honest observers
    # still rank colluders clearly below honest peers.
    assert clique_view > colluder_mean
    assert honest_mean > 1.5 * colluder_mean

"""C2 — Section 2 claim: EigenTrust suffers false negatives AND positives.

"Q. Lian et al. [13] also found that it suffers from both false negatives
and false positives."  Multi-trust (the paper's pairwise RM) avoids both
because trust stays anchored to each observer's own direct relationships.

Scenario: an honest community with moderate traffic, a set of honest
*newcomers* with small but flawless service records (false-negative bait),
and a collusion clique that only trusts itself while baiting honest peers
(false-positive bait).  We measure:

* false negative rate: newcomers ranked no better than peers with no
  service record at all;
* false positive: colluders outranking the median honest peer.

The same population is scored by the paper's multi-trust mechanism for
contrast (honest observers' mean pairwise view).
"""

from __future__ import annotations

import statistics

import pytest

from repro.analysis import render_table
from repro.baselines import EigenTrustMechanism, MultiDimensionalMechanism
from repro.core import ReputationConfig

from .conftest import publish_result, run_once

HONEST = [f"honest-{index:02d}" for index in range(12)]
NEWCOMERS = [f"newcomer-{index:02d}" for index in range(4)]
IDLE = [f"idle-{index:02d}" for index in range(4)]
COLLUDERS = [f"colluder-{index:02d}" for index in range(4)]


def _drive(mechanism):
    """Feed the same transaction history into any mechanism."""
    transaction = 0

    def tx(downloader, uploader, vote):
        nonlocal transaction
        file_id = f"f{transaction:05d}"
        transaction += 1
        mechanism.record_download(downloader, uploader, file_id, 100.0,
                                  timestamp=float(transaction))
        mechanism.record_vote(downloader, file_id, vote,
                              timestamp=float(transaction) + 0.5)

    # Honest community: ring of positive transactions, several rounds.
    for round_number in range(6):
        for index, downloader in enumerate(HONEST):
            uploader = HONEST[(index + 1 + round_number) % len(HONEST)]
            if uploader != downloader:
                tx(downloader, uploader, 0.9)
    # Newcomers: one flawless upload each.
    for index, newcomer in enumerate(NEWCOMERS):
        tx(HONEST[index], newcomer, 0.9)
    # Idle users appear as downloaders only (no service record at all).
    for index, idle in enumerate(IDLE):
        tx(idle, HONEST[index], 0.9)
    # Colluders: bait one honest transaction each, then fabricate heavy
    # intra-clique traffic.
    for index, colluder in enumerate(COLLUDERS):
        tx(HONEST[index], colluder, 0.9)
    for _ in range(10):
        for index, colluder in enumerate(COLLUDERS):
            other = COLLUDERS[(index + 1) % len(COLLUDERS)]
            tx(colluder, other, 1.0)
    mechanism.refresh()
    return mechanism


def _run():
    eigentrust = _drive(EigenTrustMechanism(damping=0.1))
    multitrust = _drive(MultiDimensionalMechanism(
        ReputationConfig(multitrust_steps=2)))

    eigen_scores = eigentrust.global_scores()

    def honest_view(target):
        return statistics.mean(
            multitrust.reputation(observer, target) for observer in HONEST
            if observer != target)

    return eigen_scores, {user: honest_view(user)
                          for user in HONEST + NEWCOMERS + IDLE + COLLUDERS}


@pytest.mark.benchmark(group="claims")
def test_claim_eigentrust_errors(benchmark):
    eigen_scores, mt_scores = run_once(benchmark, _run)

    def mean_of(scores, users):
        return statistics.mean(scores.get(user, 0.0) for user in users)

    rows = []
    for label, users in (("honest", HONEST), ("newcomer", NEWCOMERS),
                         ("idle", IDLE), ("colluder", COLLUDERS)):
        rows.append([label, mean_of(eigen_scores, users),
                     mean_of(mt_scores, users)])
    publish_result("claim_c2_eigentrust", render_table(
        ["class", "eigentrust (global)", "multi-trust (honest view)"],
        rows, title="C2: EigenTrust false negatives/positives vs multi-trust",
        precision=5))

    # False negative: under EigenTrust a newcomer with a flawless record
    # stays far below established honest peers, barely above peers with no
    # record at all; multi-trust separates newcomers from no-record peers
    # much more sharply.
    eigen_newcomer = mean_of(eigen_scores, NEWCOMERS)
    eigen_idle = mean_of(eigen_scores, IDLE)
    eigen_honest = mean_of(eigen_scores, HONEST)
    assert eigen_newcomer < eigen_honest / 2
    eigen_ratio = eigen_newcomer / eigen_idle
    mt_ratio = (mean_of(mt_scores, NEWCOMERS)
                / max(mean_of(mt_scores, IDLE), 1e-12))
    assert mt_ratio > 2 * eigen_ratio

    # False positive: the collusion sink outranks honest peers globally...
    assert mean_of(eigen_scores, COLLUDERS) > mean_of(eigen_scores, HONEST)
    # ...while honest observers' multi-trust keeps colluders below honest.
    assert mean_of(mt_scores, COLLUDERS) < mean_of(mt_scores, HONEST)

"""C8 — robustness limit: camouflaged polluters at growing population share.

The paper claims "only the one who performs well and gives honest feedback
can get a high reputation".  The strongest counter-strategy is the
*camouflaged* polluter: vote honestly on every real file (earning Eq. 2
file-trust indistinguishable from honest users), and lie only about your
own fakes.  This bench sweeps the attacker share of the population and
measures what survives:

* **ranking** (AUC of Eq. 9 scores): honest evaluations keep real files
  strictly above fakes as long as honest users have *any* aggregate
  weight, so ranking degrades last;
* **absolute thresholding** (miss rate at the fixed default threshold):
  attacker praise inflates fake scores past the threshold once attackers
  dominate — the per-user threshold must adapt;
* **margin** (min real score − max fake score): shrinks monotonically with
  attacker share, quantifying how much headroom a threshold has.

This is the quantitative version of the paper's §4.2 collusion discussion:
the mechanism resists, but not unconditionally.
"""

from __future__ import annotations

import statistics

import pytest

from repro.analysis import auc, render_table, roc_points
from repro.baselines import MultiDimensionalMechanism
from repro.core import ReputationConfig
from repro.simulator import (FileSharingSimulation, ScenarioSpec,
                             SimulationConfig)

from .conftest import DAY, publish_result, run_once

DURATION = 2 * DAY
TOTAL_PEERS = 40
SHARES = [0.1, 0.3, 0.5, 0.7]
THRESHOLD = 0.5


def _run_share(share: float):
    attackers = round(TOTAL_PEERS * share)
    config = SimulationConfig(
        scenario=ScenarioSpec(honest=TOTAL_PEERS - attackers,
                              camouflaged_polluters=attackers,
                              honest_vote_probability=0.4),
        duration_seconds=DURATION, num_files=100, fake_ratio=0.3,
        request_rate=0.025, seed=71, use_file_filtering=False)
    mechanism = MultiDimensionalMechanism(
        ReputationConfig(retention_saturation_seconds=DURATION / 3))
    simulation = FileSharingSimulation(config, mechanism)
    simulation.run()

    observers = sorted(pid for pid, peer in simulation.peers.items()
                       if peer.label == "honest")[:8]
    scores = {}
    for catalog_file in simulation.catalog:
        values = [mechanism.file_score(observer, catalog_file.file_id)
                  for observer in observers]
        known = [value for value in values if value is not None]
        if known:
            scores[catalog_file.file_id] = statistics.mean(known)
    truth = {f.file_id: f.is_fake for f in simulation.catalog
             if f.file_id in scores}

    fake_scores = [scores[f] for f, is_fake in truth.items() if is_fake]
    real_scores = [scores[f] for f, is_fake in truth.items() if not is_fake]
    missed = sum(1 for value in fake_scores if value >= THRESHOLD)
    return {
        "auc": auc(roc_points(scores, truth)),
        "mean_fake": statistics.mean(fake_scores),
        "mean_real": statistics.mean(real_scores),
        "margin": min(real_scores) - max(fake_scores),
        "miss_rate": missed / len(fake_scores),
    }


def _run():
    return {share: _run_share(share) for share in SHARES}


@pytest.mark.benchmark(group="claims")
def test_claim_attack_ratio(benchmark):
    results = run_once(benchmark, _run)

    rows = [[f"{int(share * 100)}%", r["auc"], r["mean_real"],
             r["mean_fake"], r["margin"], r["miss_rate"]]
            for share, r in results.items()]
    publish_result("claim_c8_attack_ratio", render_table(
        ["attacker share", "ranking AUC", "mean real score",
         "mean fake score", "margin", f"miss rate @ {THRESHOLD}"], rows,
        title="C8: camouflaged-polluter share vs Eq. 9 robustness"))

    shares = sorted(results)
    # Ranking survives every tested share: honest evaluations always keep
    # real files above fakes in aggregate order.
    for share in shares:
        assert results[share]["auc"] > 0.95, share
    # Fake scores inflate monotonically with attacker share...
    fake_means = [results[share]["mean_fake"] for share in shares]
    assert all(b > a - 0.02 for a, b in zip(fake_means, fake_means[1:]))
    # ...the safety margin shrinks...
    margins = [results[share]["margin"] for share in shares]
    assert margins[-1] < margins[0]
    # ...and the *fixed* default threshold breaks at high shares while
    # holding at low shares: thresholds must be per-user and adaptive,
    # as the paper's "set by himself" allows.
    assert results[shares[0]]["miss_rate"] < 0.4
    assert results[shares[-1]]["miss_rate"] > 0.6

"""C7 — Section 4.3 claim: churn hurts availability; replication +
regular republication mitigate it.

"In a real P2P network, users may join and leave the system frequently and
churn may affect data's availability ... There are many techniques to
reduce the effect of churn.  Take emule for example, a user will publish
index information to multi-users regularly."

Experiment: the full DHT-backed deployment runs under peer churn
(mean 4h sessions / 8h offline).  When a peer goes offline its DHT node
fails abruptly, taking stored evaluation records with it; rejoining peers
republish.  We sweep the paper's two mitigation knobs —

* **replication** (publish to r successors: "publish ... to multi-users"),
* **republication cadence** (the maintenance tick),

— and measure the *blind judgement fraction*: how often a requester finds
no evaluations to judge a file by.  Expected shape: churn with minimal
mitigation is blindest; replication and faster republication each cut
blindness; the no-churn control is the floor.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core import ReputationConfig
from repro.dht import DHTBackedMechanism
from repro.simulator import (ChurnModel, FileSharingSimulation, ScenarioSpec,
                             SimulationConfig, run_chaos_sweep)

from .conftest import DAY, publish_result, run_once

DURATION = 1.5 * DAY


def _run_setting(churn_on: bool, replication: int,
                 maintenance_hours: float):
    config = SimulationConfig(
        scenario=ScenarioSpec(honest=20, polluters=4,
                              honest_vote_probability=0.5),
        duration_seconds=DURATION, num_files=60, request_rate=0.015,
        seed=53,
        maintenance_interval_seconds=maintenance_hours * 3600.0,
        churn=(ChurnModel(mean_session_seconds=4 * 3600.0,
                          mean_offline_seconds=8 * 3600.0, seed=3)
               if churn_on else None))
    mechanism = DHTBackedMechanism(
        ReputationConfig(retention_saturation_seconds=DURATION / 3),
        replication=replication, record_ttl=12 * 3600.0)
    metrics = FileSharingSimulation(config, mechanism).run()
    judged = metrics.blind_judgements + metrics.informed_judgements
    blind_fraction = (metrics.blind_judgements / judged) if judged else 1.0
    return blind_fraction, metrics.total_requests


def _run():
    settings = [
        ("no churn, r=2, 6h republish", False, 2, 6.0),
        ("churn, r=1, 12h republish", True, 1, 12.0),
        ("churn, r=3, 12h republish", True, 3, 12.0),
        ("churn, r=1, 3h republish", True, 1, 3.0),
        ("churn, r=3, 3h republish", True, 3, 3.0),
    ]
    results = {}
    for label, churn_on, replication, maintenance in settings:
        results[label] = _run_setting(churn_on, replication, maintenance)
    return results


@pytest.mark.benchmark(group="claims")
def test_claim_churn_resilience(benchmark):
    results = run_once(benchmark, _run)

    rows = [[label, blind, requests]
            for label, (blind, requests) in results.items()]
    publish_result("claim_c7_churn", render_table(
        ["setting", "blind judgement fraction", "requests"], rows,
        title="C7: churn vs evaluation availability (DHT deployment)"))

    blind = {label: value for label, (value, _) in results.items()}
    worst = blind["churn, r=1, 12h republish"]
    # Churn with minimal mitigation visibly degrades availability vs the
    # no-churn control.
    assert worst > blind["no churn, r=2, 6h republish"]
    # Each mitigation helps on its own...
    assert blind["churn, r=3, 12h republish"] < worst
    assert blind["churn, r=1, 3h republish"] < worst
    # ...and combined they recover most of the churn damage.
    best_mitigated = blind["churn, r=3, 3h republish"]
    assert best_mitigated < worst * 0.8


def _run_chaos():
    return run_chaos_sweep(loss_rates=[0.0, 0.05, 0.1],
                           churn_rates=[0.0, 0.3],
                           peers=24, files=40, rounds=30,
                           replication=3, seed=11)


@pytest.mark.chaos
@pytest.mark.benchmark(group="claims")
def test_claim_churn_chaos(benchmark):
    """C7 extension — message loss compounds churn, yet retries, quorum
    reads and replica repair keep availability high and rankings stable.

    Deltas are against the fault-free (loss=0, churn=0) baseline cell.
    Everything is driven by a seeded FaultPlan RNG, so the table is
    reproducible byte-for-byte run to run.
    """
    results = run_once(benchmark, _run_chaos)

    baseline = results[0]
    rows = []
    for cell in results:
        rows.append([
            f"{cell.loss_rate:.0%}", f"{cell.churn_rate:.0%}",
            round(cell.availability, 4),
            round(cell.availability - baseline.availability, 4),
            round(cell.mean_hops, 2),
            round(cell.hop_ratio_vs_baseline, 2),
            round(cell.kendall_tau_vs_baseline, 3),
            cell.drops, cell.retries, cell.repairs,
        ])
    publish_result("claim_c7_churn_chaos", render_table(
        ["loss", "churn", "availability", "delta vs fault-free",
         "mean hops", "hop ratio", "kendall tau", "drops", "retries",
         "repairs"], rows,
        title="C7 chaos: loss x churn sweep (retries + quorum + repair)"))

    assert baseline.availability == 1.0
    assert baseline.drops == 0
    worst = [cell for cell in results
             if cell.loss_rate == 0.1 and cell.churn_rate == 0.3][0]
    # The ISSUE acceptance bar: 10% loss under churn keeps >= 95%
    # retrieval availability, lookups stay within 2x fault-free hops,
    # and the recovered reputation ranking barely moves.
    assert worst.availability >= 0.95
    assert worst.hop_ratio_vs_baseline <= 2.0
    assert worst.kendall_tau_vs_baseline >= 0.6
    # Faults were actually injected — the resilience, not the absence of
    # faults, is what the availability figure demonstrates.
    assert worst.drops > 0 and worst.retries > 0

"""A1 — footnote 1 ablation: distance-metric choice in Eq. 2.

"There are also many other equations to define the distance between two
vectors, such as Kullback-Leibler distance and Euclid distance."

Experiment: a population of profile-driven evaluators (clusters with shared
taste, plus adversarial inverters) evaluates a catalog; for each metric we
build FM and measure (a) how well the induced trust separates same-cluster
from cross-cluster pairs, and (b) fake-file identification AUC via Eq. 9.
The paper's L1 default should be competitive with both alternatives.
"""

from __future__ import annotations

import random
import statistics

import pytest

from repro.analysis import auc, render_table, roc_points
from repro.core import (EvaluationStore, ReputationConfig,
                        build_file_trust_matrix, compute_reputation_matrix,
                        file_reputation)

from .conftest import publish_result, run_once

METRICS = ["l1", "euclidean", "kl"]
NUM_PER_CLUSTER = 12
NUM_INVERTERS = 8
NUM_FILES = 60
FAKE_EVERY = 4  # every 4th file is fake


def _build_population(metric: str):
    config = ReputationConfig(eta=0.0, rho=1.0, distance_metric=metric)
    rng = random.Random(5)
    store = EvaluationStore(config=config)
    clusters = {
        "a": [f"a{index:02d}" for index in range(NUM_PER_CLUSTER)],
        "b": [f"b{index:02d}" for index in range(NUM_PER_CLUSTER)],
    }
    inverters = [f"x{index:02d}" for index in range(NUM_INVERTERS)]

    qualities = {f"f{index:03d}": (0.1 if index % FAKE_EVERY == 0 else 0.9)
                 for index in range(NUM_FILES)}
    for index, (file_id, quality) in enumerate(sorted(qualities.items())):
        # A third of the real files are "divisive": cluster taste differs
        # (cluster a loves them, cluster b merely tolerates them), which is
        # what the file-trust dimension is supposed to pick up.
        divisive = quality > 0.5 and index % 3 == 0
        for cluster, members in clusters.items():
            base = quality
            if divisive and cluster == "b":
                base = 0.4
            for user_id in members:
                if rng.random() < 0.5:
                    noise = rng.gauss(0.0, 0.08)
                    store.record_vote(user_id, file_id,
                                      min(max(base + noise, 0.0), 1.0))
        for user_id in inverters:
            if rng.random() < 0.5:
                store.record_vote(user_id, file_id, 1.0 - quality)
    return config, store, clusters, inverters, qualities


def _evaluate_metric(metric: str):
    config, store, clusters, inverters, qualities = _build_population(metric)
    fm = build_file_trust_matrix(store, config)
    rm = compute_reputation_matrix(fm, config=config)

    same, cross, adversarial = [], [], []
    members_a, members_b = clusters["a"], clusters["b"]
    for observer in members_a[:6]:
        for target in members_a:
            if target != observer:
                same.append(rm.get(observer, target))
        for target in members_b:
            cross.append(rm.get(observer, target))
        for target in inverters:
            adversarial.append(rm.get(observer, target))

    # Eq. 9 fake identification from cluster-a observers.
    scores = {}
    for file_id in qualities:
        per_observer = []
        for observer in members_a[:6]:
            evaluations = store.file_evaluations(file_id)
            score = file_reputation(rm, observer, evaluations)
            if score is not None:
                per_observer.append(score)
        if per_observer:
            scores[file_id] = statistics.mean(per_observer)
    truth = {file_id: quality < 0.5 for file_id, quality in qualities.items()
             if file_id in scores}
    metric_auc = auc(roc_points(scores, truth))
    return (statistics.mean(same), statistics.mean(cross),
            statistics.mean(adversarial), metric_auc)


def _run():
    return {metric: _evaluate_metric(metric) for metric in METRICS}


@pytest.mark.benchmark(group="ablations")
def test_ablation_distance_metrics(benchmark):
    results = run_once(benchmark, _run)

    rows = [[metric, *[round(v, 5) for v in values]]
            for metric, values in results.items()]
    publish_result("ablation_a1_distances", render_table(
        ["metric", "same-cluster trust", "cross-cluster trust",
         "inverter trust", "fake-id AUC"], rows,
        title="A1: Eq. 2 distance-metric ablation", precision=5))

    for metric, (same, cross, adversarial, metric_auc) in results.items():
        # Every metric must order: same-cluster > cross > adversarial.
        assert same > cross > adversarial, metric
        # And identify fakes essentially perfectly in this clean setting.
        assert metric_auc > 0.95, metric
    # The paper's L1 default is competitive: within 5% of the best AUC.
    best = max(values[3] for values in results.values())
    assert results["l1"][3] >= best - 0.05

"""C1 — Section 2 claim: private-history Tit-for-Tat barely covers uploads.

"A one month download log only enforces Tit-for-Tat to only 2% of a peer's
uploads and the other 98% are blind uploads" (citing Lian et al. [13]).

We replay the 30-day Maze-like trace and measure, for every upload, whether
the uploader had prior private history with the requester (had previously
downloaded from them).  For contrast the same table shows the coverage the
paper's file-based dimension achieves at k=100% on the same trace — the gap
*is* the paper's motivation.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table, tit_for_tat_coverage
from repro.traces import CoverageReplayer

from .conftest import publish_result, run_once


def _run(maze_trace):
    tft = tit_for_tat_coverage(maze_trace.trace)
    file_based = CoverageReplayer(maze_trace, 1.0, seed=1).run().overall
    return tft, file_based


@pytest.mark.benchmark(group="claims")
def test_claim_tft_coverage(benchmark, maze_trace):
    tft, file_based = run_once(benchmark, _run, maze_trace)

    publish_result("claim_c1_tft", render_table(
        ["mechanism", "request coverage", "blind uploads"],
        [
            ["tit-for-tat (30-day private history)", tft, 1.0 - tft],
            ["file-based trust, k=100% (this paper)", file_based,
             1.0 - file_based],
        ],
        title="C1: Tit-for-Tat coverage vs multi-dimensional file trust"))

    # The paper's ~2% / 98%-blind claim: private history covers almost
    # nothing on a Maze-scale trace.
    assert tft < 0.05
    # The paper's mechanism covers the vast majority on the same trace.
    assert file_based > 0.8
    assert file_based > 10 * tft

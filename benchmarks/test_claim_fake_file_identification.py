"""C3 — Section 3.3 claim: Eq. 9 file reputation identifies fake files.

"In our reputation system, only the one who performs well and gives honest
feedback can get a high reputation, the reputation between users can be
used to identify fake files directly."

Experiment: simulate a polluted network (fake-title ratio sweep), let the
paper's mechanism accumulate trust, then score *every* catalog file via
Eq. 9 from honest observers and classify against ground truth.  Baselines:
LIP (lifetime+popularity, [3]) and Credence (vote correlation, [5]) driven
by the same history.  Reported per fake-ratio: precision/recall/F1 at the
default threshold plus ROC-AUC.

Paper-shape expectations: the multi-dimensional system identifies most
fakes with high precision and beats LIP in the small-owner-count regime the
paper criticises ("cannot identify the quality of a file accurately when
its number of owners is too small").
"""

from __future__ import annotations

import statistics

import pytest

from repro.analysis import auc, render_table, roc_points, score_judgements
from repro.baselines import (CredenceMechanism, LIPMechanism,
                             MultiDimensionalMechanism)
from repro.core import ReputationConfig
from repro.simulator import (FileSharingSimulation, ScenarioSpec,
                             SimulationConfig)

from .conftest import DAY, publish_result, run_once

FAKE_RATIOS = [0.1, 0.25, 0.4]
DURATION = 2 * DAY


class _Tee:
    """Fan one signal stream out to several mechanisms."""

    def __init__(self, *mechanisms):
        self.mechanisms = mechanisms

    def __getattr__(self, name):
        def fan_out(*args, **kwargs):
            result = None
            for mechanism in self.mechanisms:
                result = getattr(mechanism, name)(*args, **kwargs)
            return result
        return fan_out


def _score_all_files(simulation, mechanism, observers, threshold):
    """Eq. 9 scores and fake flags for every catalog file."""
    scores, flags = {}, {}
    for catalog_file in simulation.catalog:
        file_scores = [mechanism.file_score(observer, catalog_file.file_id)
                       for observer in observers]
        known = [s for s in file_scores if s is not None]
        if not known:
            continue
        score = statistics.mean(known)
        scores[catalog_file.file_id] = score
        flags[catalog_file.file_id] = score < threshold
    return scores, flags


def _run():
    rows = []
    roc_rows = []
    for fake_ratio in FAKE_RATIOS:
        config = SimulationConfig(
            scenario=ScenarioSpec(honest=30, polluters=6,
                                  honest_vote_probability=0.15),
            duration_seconds=DURATION, num_files=150,
            fake_ratio=fake_ratio, request_rate=0.02, seed=21,
            use_file_filtering=False)  # score post hoc, unfiltered history
        reputation_config = ReputationConfig(
            retention_saturation_seconds=DURATION / 3)
        md = MultiDimensionalMechanism(reputation_config)
        lip = LIPMechanism(lifetime_scale_seconds=DURATION / 3)
        credence = CredenceMechanism()
        simulation = FileSharingSimulation(config, _Tee(md, lip, credence))
        # Noisy consumers: fakes are recognised only 60% of the time.
        for peer in simulation.peers.values():
            peer.behavior.detection_probability = 0.6
        simulation.run()

        observers = sorted(pid for pid, peer in simulation.peers.items()
                           if peer.label == "honest")[:10]
        truth = {f.file_id: f.is_fake for f in simulation.catalog}
        owner_counts = {f.file_id: len(simulation.registry.holders(f.file_id))
                        for f in simulation.catalog}
        median_owners = sorted(owner_counts.values())[len(owner_counts) // 2]

        for name, mechanism, threshold in (
                ("multidimensional", md, 0.5),
                ("lip", lip, 0.35),
                ("credence", credence, 0.5)):
            scores, flags = _score_all_files(simulation, mechanism,
                                             observers, threshold)
            confusion = score_judgements(
                flags, {f: truth[f] for f in flags})
            rows.append([f"{int(fake_ratio*100)}%", name, len(scores),
                         confusion.precision, confusion.recall,
                         confusion.f1])
            small = {f: s for f, s in scores.items()
                     if owner_counts[f] <= median_owners}
            roc_rows.append([
                f"{int(fake_ratio*100)}%", name,
                auc(roc_points(scores, {f: truth[f] for f in scores})),
                auc(roc_points(small, {f: truth[f] for f in small}))
                if small else None,
            ])
    return rows, roc_rows


@pytest.mark.benchmark(group="claims")
def test_claim_fake_file_identification(benchmark):
    rows, roc_rows = run_once(benchmark, _run)

    table = render_table(
        ["fake ratio", "mechanism", "files scored", "precision", "recall",
         "F1"], rows,
        title="C3: fake-file identification at the default threshold")
    roc_table = render_table(
        ["fake ratio", "mechanism", "ROC AUC (all)",
         "ROC AUC (few owners)"], roc_rows,
        title="\nC3: threshold-free ranking quality")
    publish_result("claim_c3_fake_files", table + "\n" + roc_table)

    by_key = {(row[0], row[1]): row for row in rows}
    auc_by_key = {(row[0], row[1]): (row[2], row[3]) for row in roc_rows}
    for ratio in ("10%", "25%", "40%"):
        md_row = by_key[(ratio, "multidimensional")]
        # At the default (conservative) threshold the mechanism is precise:
        # what it flags is essentially always fake.  Recall at a fixed
        # threshold is user-tunable ("the threshold set by himself"); the
        # ROC rows show the full trade-off.
        assert md_row[3] > 0.8, f"precision too low at {ratio}"
        assert md_row[4] > 0.15, f"recall degenerate at {ratio}"
        # Threshold-free: the paper's mechanism ranks fakes below reals
        # nearly perfectly and stays in LIP's league overall.
        assert auc_by_key[(ratio, "multidimensional")][0] > 0.9
        assert (auc_by_key[(ratio, "multidimensional")][0]
                >= auc_by_key[(ratio, "lip")][0] - 0.05)
        # The paper's LIP critique: in the few-owner regime LIP degrades
        # while the paper's mechanism holds up (and wins).
        md_small = auc_by_key[(ratio, "multidimensional")][1]
        lip_small = auc_by_key[(ratio, "lip")][1]
        if md_small is not None and lip_small is not None:
            assert md_small >= lip_small - 0.02

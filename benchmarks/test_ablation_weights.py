"""A3 — weight ablations: Eq. 1 (eta/rho) and Eq. 7 (alpha/beta/gamma).

The paper's future work: "we need to do more experiments to improve the
equations and choose the weight values in our work".  This bench runs those
experiments:

* **Eq. 1 sweep** — vary the implicit/explicit blend eta (rho = 1 - eta)
  and measure fake-identification AUC in a noisy-voter world.  Pure
  implicit loses the precision of votes; pure explicit loses coverage
  (few voters) — the blend should be robust across the middle.
* **Eq. 7 sweep** — vary (alpha, beta, gamma) over a simplex grid and
  measure (a) one-step matrix edge count and (b) honest-vs-polluter
  reputation separation in a simulated population.  Single-dimension
  corners are strictly worse on at least one axis than mixed weights.
"""

from __future__ import annotations

import statistics

import pytest

from repro.analysis import auc, render_table, roc_points, separation
from repro.baselines import MultiDimensionalMechanism
from repro.core import ReputationConfig
from repro.simulator import (FileSharingSimulation, ScenarioSpec,
                             SimulationConfig)

from .conftest import DAY, publish_result, run_once

ETA_GRID = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
DIMENSION_GRID = [
    (1.0, 0.0, 0.0),
    (0.0, 1.0, 0.0),
    (0.0, 0.0, 1.0),
    (0.5, 0.3, 0.2),   # the repo default
    (0.34, 0.33, 0.33),
    (0.6, 0.2, 0.2),
]
DURATION = 2 * DAY


def _simulate(reputation_config: ReputationConfig, seed: int = 61):
    config = SimulationConfig(
        scenario=ScenarioSpec(honest=24, polluters=6, free_riders=4,
                              honest_vote_probability=0.35),
        duration_seconds=DURATION, num_files=100, request_rate=0.025,
        seed=seed, use_file_filtering=False)
    mechanism = MultiDimensionalMechanism(reputation_config)
    simulation = FileSharingSimulation(config, mechanism)
    simulation.run()
    return simulation, mechanism


def _fake_auc(simulation, mechanism):
    observers = sorted(pid for pid, peer in simulation.peers.items()
                       if peer.label == "honest")[:8]
    scores = {}
    for catalog_file in simulation.catalog:
        values = [mechanism.file_score(observer, catalog_file.file_id)
                  for observer in observers]
        known = [value for value in values if value is not None]
        if known:
            scores[catalog_file.file_id] = statistics.mean(known)
    truth = {f.file_id: f.is_fake for f in simulation.catalog
             if f.file_id in scores}
    return auc(roc_points(scores, truth))


def _honest_polluter_separation(simulation, mechanism):
    honest = [pid for pid, peer in simulation.peers.items()
              if peer.label == "honest"]
    polluters = [pid for pid, peer in simulation.peers.items()
                 if peer.label == "polluter"]
    scores = {}
    for target in honest + polluters:
        scores[target] = statistics.mean(
            mechanism.system.user_reputation(observer, target)
            for observer in honest[:8] if observer != target)
    return separation(scores, honest, polluters)


def _run():
    eta_rows = []
    for eta in ETA_GRID:
        reputation_config = ReputationConfig(
            eta=eta, rho=1.0 - eta,
            retention_saturation_seconds=DURATION / 3)
        simulation, mechanism = _simulate(reputation_config)
        eta_rows.append([eta, 1.0 - eta, _fake_auc(simulation, mechanism)])

    dimension_rows = []
    for alpha, beta, gamma in DIMENSION_GRID:
        reputation_config = ReputationConfig(
            alpha=alpha, beta=beta, gamma=gamma,
            retention_saturation_seconds=DURATION / 3)
        simulation, mechanism = _simulate(reputation_config)
        edges = mechanism.system.one_step_matrix().entry_count()
        gap = _honest_polluter_separation(simulation, mechanism)
        dimension_rows.append([alpha, beta, gamma, edges, gap])
    return eta_rows, dimension_rows


@pytest.mark.benchmark(group="ablations")
def test_ablation_weights(benchmark):
    eta_rows, dimension_rows = run_once(benchmark, _run)

    eta_table = render_table(
        ["eta (implicit)", "rho (explicit)", "fake-id AUC"], eta_rows,
        title="A3a: Eq. 1 weight sweep")
    dimension_table = render_table(
        ["alpha (FM)", "beta (DM)", "gamma (UM)", "TM edges",
         "honest-polluter separation"], dimension_rows,
        title="\nA3b: Eq. 7 weight sweep", precision=5)
    publish_result("ablation_a3_weights", eta_table + "\n" + dimension_table)

    # Eq. 1: every blend must actually rank fakes below reals.
    for eta, _, fake_auc in eta_rows:
        assert fake_auc > 0.75, f"eta={eta}"
    # A mixed blend is at least as good as the worst extreme (robustness).
    extremes = [row[2] for row in eta_rows if row[0] in (0.0, 1.0)]
    middles = [row[2] for row in eta_rows if 0.0 < row[0] < 1.0]
    assert max(middles) >= min(extremes)

    by_weights = {(row[0], row[1], row[2]): (row[3], row[4])
                  for row in dimension_rows}
    default_edges, default_gap = by_weights[(0.5, 0.3, 0.2)]
    # Eq. 7: the mixed default separates honest from polluters...
    assert default_gap > 0
    # ...and subsumes the edges of every single-dimension corner.
    for corner in ((1.0, 0.0, 0.0), (0.0, 1.0, 0.0), (0.0, 0.0, 1.0)):
        corner_edges, _ = by_weights[corner]
        assert default_edges >= corner_edges
    # The volume-only and user-only corners are much sparser than mixed.
    assert default_edges > 2 * by_weights[(0.0, 1.0, 0.0)][0]
    assert default_edges > 2 * by_weights[(0.0, 0.0, 1.0)][0]

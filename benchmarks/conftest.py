"""Shared fixtures and helpers for the benchmark harness.

Each benchmark regenerates one table/figure/claim of the paper (see
DESIGN.md section 5).  Rendered result tables are printed *and* written to
``benchmarks/results/<experiment>.txt`` so a full run leaves a reviewable
record; EXPERIMENTS.md summarises paper-vs-measured from those outputs.

Heavy inputs (the 30-day Maze-like trace) are generated once per session.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.traces import GeneratedTrace, MazeTraceGenerator, TraceParameters

RESULTS_DIR = Path(__file__).parent / "results"

#: The benchmark-scale Maze-like trace (laptop-sized stand-in for the
#: paper's 1.66M-user / 24.6M-action production log).  Matched to Maze's
#: per-user density: ~10 in-window downloads per user plus a pre-existing
#: shared library, which is what makes k=20% evaluation coverage reach the
#: paper's ~50% request coverage.
TRACE_PARAMETERS = TraceParameters(
    num_users=2000,
    num_files=2000,
    num_actions=20_000,
    trace_days=30.0,
    library_size=75,
    seed=42,
)

DAY = 24 * 3600.0


@pytest.fixture(scope="session")
def maze_trace() -> GeneratedTrace:
    """The shared 30-day synthetic Maze trace."""
    return MazeTraceGenerator(TRACE_PARAMETERS).generate()


def publish_result(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def run_once(benchmark, function, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)

"""Performance microbenchmarks for the core primitives.

Unlike the experiment benches (one pedantic round), these use
pytest-benchmark's normal timing loop so regressions in the hot paths show
up as timing changes:

* building FM from an evaluation store (the dominant cost of a refresh);
* the sparse matrix power (Eq. 8);
* EigenTrust's power iteration;
* DHT lookup routing.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import EigenTrustMechanism
from repro.core import (EvaluationStore, ReputationConfig, TrustMatrix,
                        build_file_trust_matrix)
from repro.dht import DHTNetwork, hash_key, lookup


@pytest.fixture(scope="module")
def evaluation_store():
    """300 users x 40 evaluations over a 500-file catalog."""
    config = ReputationConfig()
    rng = random.Random(1)
    store = EvaluationStore(config=config)
    files = [f"f{index:04d}" for index in range(500)]
    for user_index in range(300):
        user_id = f"u{user_index:04d}"
        for file_id in rng.sample(files, 40):
            store.record_implicit(user_id, file_id, rng.random())
    return config, store


@pytest.mark.benchmark(group="perf")
def test_perf_build_file_trust_matrix(benchmark, evaluation_store):
    config, store = evaluation_store
    matrix = benchmark(build_file_trust_matrix, store, config)
    assert matrix.entry_count() > 1000


@pytest.fixture(scope="module")
def dense_one_step():
    rng = random.Random(2)
    matrix = TrustMatrix()
    users = [f"u{index:03d}" for index in range(200)]
    for user in users:
        for target in rng.sample(users, 20):
            if target != user:
                matrix.set(user, target, rng.random())
    return matrix.row_normalized()


@pytest.mark.benchmark(group="perf")
def test_perf_matrix_power(benchmark, dense_one_step):
    result = benchmark(dense_one_step.power, 2)
    assert result.entry_count() > 0


@pytest.fixture(scope="module")
def loaded_eigentrust():
    mechanism = EigenTrustMechanism(auto_refresh=False)
    rng = random.Random(3)
    users = [f"u{index:03d}" for index in range(200)]
    for transaction in range(3000):
        downloader, uploader = rng.sample(users, 2)
        file_id = f"f{transaction}"
        mechanism.record_download(downloader, uploader, file_id, 100.0)
        mechanism.record_vote(downloader, file_id,
                              1.0 if rng.random() < 0.8 else 0.0)
    return mechanism


@pytest.mark.benchmark(group="perf")
def test_perf_eigentrust_refresh(benchmark, loaded_eigentrust):
    benchmark(loaded_eigentrust.refresh)
    assert len(loaded_eigentrust.global_scores()) == 200


@pytest.fixture(scope="module")
def dht_ring():
    network = DHTNetwork()
    for index in range(256):
        network.join(f"node-{index:04d}")
    return network


@pytest.mark.benchmark(group="perf")
def test_perf_dht_lookup(benchmark, dht_ring):
    keys = [hash_key(f"key-{index}") for index in range(64)]

    def run_lookups():
        total_hops = 0
        for key in keys:
            total_hops += lookup(dht_ring, key).hops
        return total_hops

    total = benchmark(run_lookups)
    assert total / len(keys) < 16  # O(log 256) = 8, generous bound

"""R1 — the headline result with error bars.

Single simulation runs are noisy; this bench replicates the paper's
headline comparison (fake-download fraction: no reputation vs. the
multi-dimensional system) across five seeds and reports bootstrap 95%
confidence intervals.  The assertion is the strongest form of the claim:
the *intervals do not overlap* — the pollution-defense effect is not a
seed artefact.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table, replicate, summarize_replicates
from repro.baselines import MultiDimensionalMechanism, NullMechanism
from repro.core import ReputationConfig
from repro.simulator import (FileSharingSimulation, ScenarioSpec,
                             SimulationConfig)

from .conftest import DAY, publish_result, run_once

SEEDS = [101, 202, 303, 404, 505]
DURATION = 2 * DAY


def _experiment(mechanism_name: str):
    def run(seed: int):
        config = SimulationConfig(
            scenario=ScenarioSpec(honest=24, free_riders=4, polluters=6),
            duration_seconds=DURATION, num_files=100, fake_ratio=0.3,
            request_rate=0.025, seed=seed)
        mechanism = (
            MultiDimensionalMechanism(ReputationConfig(
                retention_saturation_seconds=DURATION / 3))
            if mechanism_name == "multidimensional" else NullMechanism())
        metrics = FileSharingSimulation(config, mechanism).run()
        blocked = sum(stats.fakes_blocked
                      for stats in metrics.per_class.values())
        return {
            "fake_fraction": metrics.overall_fake_fraction,
            "fakes_blocked": float(blocked),
            "real_downloads": float(sum(
                stats.real_downloads for stats in metrics.per_class.values())),
        }
    return run


def _run():
    null_metrics = replicate(_experiment("null"), SEEDS)
    md_metrics = replicate(_experiment("multidimensional"), SEEDS)
    return (summarize_replicates(null_metrics, seed=9),
            summarize_replicates(md_metrics, seed=9))


@pytest.mark.benchmark(group="replication")
def test_replication_headline(benchmark):
    null_summaries, md_summaries = run_once(benchmark, _run)

    rows = []
    for label, summaries in (("null", null_summaries),
                             ("multidimensional", md_summaries)):
        for summary in summaries:
            rows.append([label, summary.metric, summary.mean,
                         summary.ci_low, summary.ci_high, summary.n])
    publish_result("replication_headline", render_table(
        ["mechanism", "metric", "mean", "ci low", "ci high", "seeds"], rows,
        title=(f"R1: headline fake-fraction comparison over "
               f"{len(SEEDS)} seeds (bootstrap 95% CI)")))

    null_fake = next(s for s in null_summaries
                     if s.metric == "fake_fraction")
    md_fake = next(s for s in md_summaries if s.metric == "fake_fraction")
    # Non-overlapping CIs: the paper's mechanism reliably beats no-reputation.
    assert md_fake.ci_high < null_fake.ci_low
    # And the effect size is substantial (paper's motivation: ~half of
    # popular titles fake without defenses).
    assert md_fake.mean < 0.6 * null_fake.mean
    # The mechanism still blocks a meaningful number of fakes every run.
    md_blocked = next(s for s in md_summaries if s.metric == "fakes_blocked")
    assert md_blocked.ci_low > 0

"""C5 — Section 3.1 claim: multi-dimensional trust densifies the matrix.

The paper's core argument against single-dimension predecessors (Lian's
download-volume multi-trust, Credence's votes): "use files' vote and
retention time, download volume and users' rank to construct a **denser**
one-step trust matrix".

Experiment: replay the shared Maze-like trace into the full system (votes
at 5% — realistically sparse, echoing KaZaA's "<1% of popular files are
voted on" — retention implicit at 100%, download ledger, occasional ranks),
build FM with and without implicit evaluations plus DM and UM separately
and integrated (Eq. 7), and compare edge densities and the request coverage
each matrix achieves on the same trace.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import (dimension_densities, matrix_edge_coverage,
                            render_table)
from repro.core import (DownloadLedger, EvaluationStore, ReputationConfig,
                        TrustMatrix, UserTrustStore, build_file_trust_matrix,
                        build_one_step_matrix, build_user_trust_matrix,
                        build_volume_trust_matrix)

from .conftest import DAY, publish_result, run_once

VOTE_PROBABILITY = 0.05
RANK_PROBABILITY = 0.05


def _ingest(maze_trace):
    config = ReputationConfig(
        retention_saturation_seconds=10 * DAY)
    rng = random.Random(77)
    evaluations = EvaluationStore(config=config)
    votes_only = EvaluationStore(config=config)
    ledger = DownloadLedger()
    user_trust = UserTrustStore()
    horizon = maze_trace.parameters.trace_days * DAY

    def maybe_vote(user_id, file_id, timestamp):
        if rng.random() < VOTE_PROBABILITY:
            quality = maze_trace.catalog.get(file_id).quality
            evaluations.record_vote(user_id, file_id, quality, timestamp)
            votes_only.record_vote(user_id, file_id, quality, timestamp)

    # Pre-existing library holdings: implicit evaluations from retention.
    for file_id, holder_ids in maze_trace.initial_holdings.items():
        for user_id in holder_ids:
            evaluations.record_retention(user_id, file_id, horizon, 0.0)
            maybe_vote(user_id, file_id, 0.0)

    for record in maze_trace.trace:
        ledger.record_download(record.downloader_id, record.uploader_id,
                               record.content_hash, record.size_bytes,
                               record.timestamp)
        retention = horizon - record.timestamp
        evaluations.record_retention(record.downloader_id,
                                     record.content_hash, retention,
                                     record.timestamp)
        maybe_vote(record.downloader_id, record.content_hash,
                   record.timestamp)
        if rng.random() < RANK_PROBABILITY:
            user_trust.rate(record.downloader_id, record.uploader_id, 0.9)

    return config, evaluations, votes_only, ledger, user_trust


def _run(maze_trace):
    (config, evaluations, votes_only, ledger,
     user_trust) = _ingest(maze_trace)
    fm_votes = build_file_trust_matrix(votes_only, config)
    fm = build_file_trust_matrix(evaluations, config)
    dm = build_volume_trust_matrix(ledger, evaluations, config)
    um = build_user_trust_matrix(user_trust)
    tm = build_one_step_matrix(evaluations, ledger, user_trust, config)
    densities = dimension_densities(fm, dm, um, tm,
                                    population=maze_trace.parameters.num_users)
    matrices = {
        "FM votes-only (5%)": fm_votes,
        "FM votes+retention": fm,
        "DM (volume)": dm,
        "UM (user)": um,
        "TM (integrated)": tm,
    }
    universe = maze_trace.trace.users()
    coverages = {name: matrix_edge_coverage(maze_trace.trace, matrix)
                 for name, matrix in matrices.items()}
    entries = {name: matrix.entry_count()
               for name, matrix in matrices.items()}
    per_density = {name: matrix.density(universe)
                   for name, matrix in matrices.items()}
    return densities, coverages, entries, per_density


@pytest.mark.benchmark(group="claims")
def test_claim_matrix_density(benchmark, maze_trace):
    densities, coverages, entries, per_density = run_once(
        benchmark, _run, maze_trace)

    names = ["FM votes-only (5%)", "FM votes+retention", "DM (volume)",
             "UM (user)", "TM (integrated)"]
    rows = [[name, entries[name], per_density[name], coverages[name]]
            for name in names]
    publish_result("claim_c5_matrix_density", render_table(
        ["matrix", "edges", "density", "request coverage"], rows,
        title="C5: one-step matrix density, per dimension vs integrated",
        precision=4))

    # Implicit (retention) evaluation massively densifies file trust over
    # explicit votes alone — the KaZaA "<1% vote" problem solved.
    assert (per_density["FM votes+retention"]
            > 3 * per_density["FM votes-only (5%)"])
    # Integration densifies over every single dimension.
    assert densities.integrated_density >= densities.file_density
    assert densities.integrated_density > densities.volume_density
    assert densities.integrated_density > densities.user_density
    assert densities.integration_gain() >= 1.0
    # And covers at least as many requests as any single dimension.
    best_single = max(coverages["FM votes+retention"],
                      coverages["DM (volume)"], coverages["UM (user)"])
    assert coverages["TM (integrated)"] >= best_single
    # The integrated matrix subsumes all per-dimension edges.
    assert entries["TM (integrated)"] >= max(
        entries["FM votes+retention"], entries["DM (volume)"],
        entries["UM (user)"])

"""The project-aware rule set and its registry.

Every rule is a small class: an id, a severity, a path predicate and one or
two node hooks.  The engine hands each rule a :class:`~repro.lint.context
.ModuleContext`; all import-alias resolution, literal extraction and
position plumbing lives there, which keeps a new rule at ~30 lines.

Shipped rules (the codebase's real bug classes — see docs/static-analysis.md
for the catalogue with examples):

========  ========  ==========================================================
id        severity  what it catches
========  ========  ==========================================================
DET001    error     calls to the process-global RNG (``random.*``,
                    ``numpy.random.*``) instead of a seeded instance
DET002    warning   iteration over sets / ``dict.keys()`` without ``sorted``
                    in the deterministic pipeline (core/simulator/dht/traces)
DET003    error     wall-clock / entropy APIs (``time.time``,
                    ``datetime.now``, ``os.urandom``, ``uuid4``, ...) in
                    core/simulator/dht hot paths
DET004    warning   unordered set *or dict-view* iteration inside shard
                    merge/gather/exchange functions (shard modules)
NUM001    warning   float ``==`` / ``!=`` against a non-zero float literal
                    (trust values need ``math.isclose`` + tolerance)
NUM002    error     weight tuples (eta/rho, alpha/beta/gamma) whose literal
                    components do not sum to 1 (Eq. 1 / Eq. 7 simplex)
OBS001    warning   bypassing the recorder facade (constructing ``Recorder``
                    or reaching into ``recorder.trace`` / ``.registry``)
========  ========  ==========================================================
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type

from .context import ModuleContext
from .diagnostics import Diagnostic, Severity

__all__ = ["Rule", "register", "all_rules", "rules_by_id", "RULES"]

_TOLERANCE = 1e-9


class Rule:
    """Base class: subclass, set the class attributes, implement hooks.

    Hooks a subclass may implement (all optional):

    * ``check_call(node, ctx)`` -- every ``ast.Call``;
    * ``check_compare(node, ctx)`` -- every ``ast.Compare``;
    * ``check_assign(node, ctx)`` -- every ``ast.Assign``;
    * ``check_attribute(node, ctx)`` -- every ``ast.Attribute``;
    * ``check_iteration(expr, ctx)`` -- every ``for``/comprehension
      iteration target;
    * ``check_module(ctx)`` -- once per module, for rules that need their
      own traversal (scope tracking, cross-statement analysis).

    Each hook yields :class:`~repro.lint.diagnostics.Diagnostic` objects.
    """

    rule_id: str = ""
    severity: Severity = Severity.WARNING
    summary: str = ""
    hint: str = ""

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on ``path`` (posix-normalised)."""
        return True

    def report(self, ctx: ModuleContext, node: ast.AST,
               message: str, hint: Optional[str] = None) -> Diagnostic:
        return ctx.diagnostic(node, self.rule_id, self.severity, message,
                              self.hint if hint is None else hint)


RULES: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in RULES:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULES[cls.rule_id] = cls
    return cls


def all_rules() -> List[Rule]:
    """One instance of every registered rule, ordered by id."""
    return [RULES[rule_id]() for rule_id in sorted(RULES)]


def rules_by_id(ids: Iterable[str]) -> List[Rule]:
    rules = []
    for rule_id in sorted(set(ids)):
        if rule_id not in RULES:
            raise ValueError(
                f"unknown rule {rule_id!r}; known: {', '.join(sorted(RULES))}")
        rules.append(RULES[rule_id]())
    return rules


def _in_paths(path: str, *segments: str) -> bool:
    """True when ``path`` has any of ``segments`` as a directory component."""
    return any(re.search(rf"(^|/){segment}(/|$)", path)
               for segment in segments)


# --------------------------------------------------------------------- #
# Determinism                                                           #
# --------------------------------------------------------------------- #


@register
class GlobalRandomRule(Rule):
    """DET001: the process-global RNG is unseeded shared state."""

    rule_id = "DET001"
    severity = Severity.ERROR
    summary = ("call to the process-global RNG instead of a seeded "
               "random.Random / numpy default_rng instance")
    hint = ("thread a seeded random.Random(seed) or "
            "numpy.random.default_rng(seed) through the call site")

    #: Attributes of ``random`` that do not touch the global RNG stream.
    _SAFE_RANDOM = frozenset({"Random", "SystemRandom", "getstate",
                              "setstate"})
    #: Seeded constructors on ``numpy.random``.
    _SAFE_NUMPY = frozenset({"default_rng", "Generator", "RandomState",
                             "SeedSequence", "BitGenerator", "PCG64",
                             "PCG64DXSM", "MT19937", "Philox", "SFC64"})

    def applies_to(self, path: str) -> bool:
        return not _in_paths(path, "tests", "test", "benchmarks", "examples")

    def check_call(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Diagnostic]:
        qualname = ctx.resolve_call(node)
        if qualname is None:
            return
        if qualname.startswith("random."):
            tail = qualname.split(".", 1)[1]
            if "." not in tail and tail not in self._SAFE_RANDOM:
                yield self.report(
                    ctx, node,
                    f"call to the process-global RNG `{qualname}`")
        elif qualname.startswith("numpy.random."):
            tail = qualname.split(".", 2)[2]
            if "." not in tail and tail not in self._SAFE_NUMPY:
                yield self.report(
                    ctx, node,
                    f"call to the process-global numpy RNG `{qualname}`")


@register
class UnsortedSetIterationRule(Rule):
    """DET002: set iteration order depends on PYTHONHASHSEED.

    Flags iteration directly over a set expression (literal, ``set(...)``,
    set-algebra method call) or over ``dict.keys()``, plus iteration over a
    local name that was assigned a set expression earlier in the same
    function.  Wrapping the iterable in ``sorted(...)`` fixes all of them.
    Scoped to the deterministic pipeline (core/simulator/dht/traces); the
    PR 2 hash-order bug in the trust builders is exactly this class.
    """

    rule_id = "DET002"
    severity = Severity.WARNING
    summary = ("iteration over a set / dict.keys() without sorted() in the "
               "deterministic pipeline")
    hint = "wrap the iterable in sorted(...) to pin the order"

    _SET_METHODS = frozenset({"intersection", "union", "difference",
                              "symmetric_difference"})

    def applies_to(self, path: str) -> bool:
        return _in_paths(path, "core", "simulator", "dht", "traces")

    def _is_set_expression(self, node: ast.AST, ctx: ModuleContext) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            qualname = ctx.resolve_call(node)
            if qualname in ("set", "frozenset"):
                return True
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._SET_METHODS):
                return True
        return False

    def _describe(self, node: ast.AST, ctx: ModuleContext) -> str:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            return f"`.{node.func.attr}(...)`"
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal"
        return "`set(...)`"

    def check_iteration(self, expr: ast.AST,
                        ctx: ModuleContext) -> Iterator[Diagnostic]:
        if self._is_set_expression(expr, ctx):
            yield self.report(
                ctx, expr,
                f"iterating {self._describe(expr, ctx)} without sorted(); "
                "set order depends on PYTHONHASHSEED")
        elif (isinstance(expr, ast.Call)
              and isinstance(expr.func, ast.Attribute)
              and expr.func.attr == "keys" and not expr.args):
            yield self.report(
                ctx, expr,
                "iterating `.keys()` without sorted(); insertion order "
                "propagates upstream nondeterminism",
                hint="iterate sorted(mapping) to pin the order")

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        """Function-local dataflow: names assigned a set, later iterated."""
        for function in ast.walk(ctx.tree):
            if not isinstance(function, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                continue
            set_names = self._set_assigned_names(function, ctx)
            if not set_names:
                continue
            for target in self._iteration_targets(function):
                if isinstance(target, ast.Name) and target.id in set_names:
                    yield self.report(
                        ctx, target,
                        f"iterating set `{target.id}` without sorted(); "
                        "set order depends on PYTHONHASHSEED")

    def _set_assigned_names(self, function: ast.AST,
                            ctx: ModuleContext) -> "set[str]":
        assigned: "set[str]" = set()
        for node in ast.walk(function):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            is_set = self._is_set_expression(value, ctx)
            for target in targets:
                if isinstance(target, ast.Name):
                    if is_set:
                        assigned.add(target.id)
                    else:
                        # Rebound to something non-set: stop tracking.
                        assigned.discard(target.id)
        return assigned

    @staticmethod
    def _iteration_targets(function: ast.AST) -> Iterator[ast.AST]:
        for node in ast.walk(function):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield node.iter
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                for generator in node.generators:
                    yield generator.iter


@register
class ShardMergeOrderRule(UnsortedSetIterationRule):
    """DET004: cross-shard merges must visit their inputs in canonical order.

    The sharded pipeline's bit-identity guarantee rests on merge order:
    boundary exchange walks changed pairs sorted, fragments merge in
    ascending shard order, worker patches gather in submission order.  In
    those code paths even *dict* iteration order is suspect — insertion
    order silently encodes whatever upstream nondeterminism built the dict.
    So inside any function whose name says it merges/gathers/exchanges/
    routes/combines, iteration over a set **or a dict view**
    (``.items()``/``.values()``/``.keys()``) without ``sorted(...)`` is
    flagged.  Scoped to shard modules (filename contains ``shard``), where
    DET002's set-only net is too coarse.
    """

    rule_id = "DET004"
    severity = Severity.WARNING
    summary = ("unordered set/dict iteration in a shard merge/gather "
               "function")
    hint = ("iterate sorted(...) so the cross-shard merge order is "
            "canonical; bit-identity across shard counts depends on it")

    _FUNCTION_PATTERN = re.compile(r"merge|gather|exchange|route|combine",
                                   re.IGNORECASE)
    _DICT_VIEWS = frozenset({"items", "values", "keys"})

    def applies_to(self, path: str) -> bool:
        if _in_paths(path, "tests", "test", "benchmarks", "examples"):
            return False
        return "shard" in path.rsplit("/", 1)[-1]

    def check_iteration(self, expr: ast.AST,
                        ctx: ModuleContext) -> Iterator[Diagnostic]:
        # Disabled: DET004 fires only inside merge/gather-named functions
        # (see check_module); module-level iteration stays DET002's job.
        return
        yield  # pragma: no cover

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        reported: "set[Tuple[int, int]]" = set()
        for function in ast.walk(ctx.tree):
            if not isinstance(function, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                continue
            if not self._FUNCTION_PATTERN.search(function.name):
                continue
            set_names = self._set_assigned_names(function, ctx)
            for expr in self._iteration_targets(function):
                key = (expr.lineno, expr.col_offset)
                if key in reported:
                    continue
                diagnostic = self._check_target(expr, ctx, set_names,
                                                function.name)
                if diagnostic is not None:
                    reported.add(key)
                    yield diagnostic

    def _check_target(self, expr: ast.AST, ctx: ModuleContext,
                      set_names: "set[str]",
                      function_name: str) -> Optional[Diagnostic]:
        if self._is_set_expression(expr, ctx):
            return self.report(
                ctx, expr,
                f"`{function_name}` iterates {self._describe(expr, ctx)} "
                "without sorted(); the cross-shard merge order would follow "
                "PYTHONHASHSEED")
        if (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr in self._DICT_VIEWS
                and not expr.args):
            return self.report(
                ctx, expr,
                f"`{function_name}` iterates `.{expr.func.attr}()` without "
                "sorted(); insertion order is not a canonical merge order")
        if isinstance(expr, ast.Name) and expr.id in set_names:
            return self.report(
                ctx, expr,
                f"`{function_name}` iterates set `{expr.id}` without "
                "sorted(); the cross-shard merge order would follow "
                "PYTHONHASHSEED")
        return None


@register
class WallClockEntropyRule(Rule):
    """DET003: hot paths must be driven by simulation time and seeds."""

    rule_id = "DET003"
    severity = Severity.ERROR
    summary = ("wall-clock / entropy API in a deterministic hot path "
               "(core/simulator/dht)")
    hint = ("use the engine's simulation clock / a seeded RNG; wall-clock "
            "timing belongs in repro.obs (the recorder's profiler clock is "
            "allowlisted)")

    _BANNED = frozenset({
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
        "os.urandom", "os.getrandom",
        "uuid.uuid1", "uuid.uuid4",
        "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
        "secrets.randbelow", "secrets.randbits", "secrets.choice",
    })

    #: Path fragments exempt from the ban.  The observability recorder owns
    #: the project's only legitimate wall clock (its profiler), so the
    #: whole ``obs`` package is allowlisted even when a caller asks lint to
    #: scan it directly.
    path_allowlist: Tuple[str, ...] = ("obs",)

    def applies_to(self, path: str) -> bool:
        if _in_paths(path, *self.path_allowlist):
            return False
        if _in_paths(path, "tests", "test", "benchmarks", "examples"):
            return False
        return _in_paths(path, "core", "simulator", "dht")

    def check_call(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Diagnostic]:
        qualname = ctx.resolve_call(node)
        if qualname in self._BANNED:
            yield self.report(
                ctx, node,
                f"`{qualname}` is wall-clock/entropy state; runs would "
                "not be bitwise reproducible")


# --------------------------------------------------------------------- #
# Numerics                                                              #
# --------------------------------------------------------------------- #


@register
class FloatEqualityRule(Rule):
    """NUM001: exact float comparison on trust/reputation arithmetic.

    Comparing against the exact literal ``0.0`` is exempt — the sparse
    matrix stores zero as absent, so ``value == 0.0`` is a sentinel check,
    not an arithmetic one.  Any other float literal in an ``==``/``!=``
    comparison is flagged.
    """

    rule_id = "NUM001"
    severity = Severity.WARNING
    summary = "float == / != against a non-zero float literal"
    hint = "use math.isclose(a, b, rel_tol=..., abs_tol=...) instead"

    def check_compare(self, node: ast.Compare,
                      ctx: ModuleContext) -> Iterator[Diagnostic]:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for operand in (left, right):
                literal = ctx.float_literal(operand)
                if literal is not None and literal != 0.0:
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.report(
                        ctx, node,
                        f"exact float comparison `{symbol} {literal}`; "
                        "accumulated trust values carry rounding error")
                    break


@register
class WeightSimplexRule(Rule):
    """NUM002: literal weight tuples must sit on the paper's simplexes.

    Two shapes are checked statically:

    * a call that passes a *complete* literal weight group as keywords
      (``eta``/``rho`` for Eq. 1, ``alpha``/``beta``/``gamma`` for Eq. 7)
      whose literals do not sum to 1 — this is the
      ``ReputationConfig(...)`` misconfiguration caught before runtime;
    * an assignment of a 2/3-tuple of numeric literals to a ``*weight*``
      name (or an unpacking onto the weight names themselves) that does
      not sum to 1.
    """

    rule_id = "NUM002"
    severity = Severity.ERROR
    summary = "literal weight tuple off the Eq. 1 / Eq. 7 simplex"
    hint = ("make the weights sum to 1, or pass them through "
            "repro.lint.contracts.assert_simplex if computed")

    _GROUPS: Tuple[Tuple[str, ...], ...] = (("eta", "rho"),
                                            ("alpha", "beta", "gamma"))
    _NAME_PATTERN = re.compile(r"weight", re.IGNORECASE)

    def check_call(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Diagnostic]:
        literals: Dict[str, float] = {}
        for keyword in node.keywords:
            if keyword.arg is None:
                return  # **kwargs: cannot see the full group statically.
            value = ctx.number_literal(keyword.value)
            if value is not None:
                literals[keyword.arg] = value
        for group in self._GROUPS:
            if all(name in literals for name in group):
                total = sum(literals[name] for name in group)
                if abs(total - 1.0) > _TOLERANCE:
                    yield self.report(
                        ctx, node,
                        f"{' + '.join(group)} = {total:g}, must sum to 1")
        qualname = ctx.resolve_call(node) or ""
        if (qualname.endswith("with_dimension_weights")
                and len(node.args) == 3):
            values = [ctx.number_literal(arg) for arg in node.args]
            if all(value is not None for value in values):
                total = sum(values)  # type: ignore[arg-type]
                if abs(total - 1.0) > _TOLERANCE:
                    yield self.report(
                        ctx, node,
                        f"alpha + beta + gamma = {total:g}, must sum to 1")

    def check_assign(self, node: ast.Assign,
                     ctx: ModuleContext) -> Iterator[Diagnostic]:
        for target in node.targets:
            diagnostic = self._check_one(target, node.value, ctx)
            if diagnostic is not None:
                yield diagnostic

    def _check_one(self, target: ast.expr, value: ast.expr,
                   ctx: ModuleContext) -> Optional[Diagnostic]:
        values = self._tuple_literals(value, ctx)
        if values is None or not 2 <= len(values) <= 3:
            return None
        named_weights = (isinstance(target, ast.Name)
                         and self._NAME_PATTERN.search(target.id))
        unpacked_group = (isinstance(target, (ast.Tuple, ast.List))
                          and tuple(element.id
                                    for element in target.elts
                                    if isinstance(element, ast.Name))
                          in self._GROUPS)
        if not named_weights and not unpacked_group:
            return None
        total = sum(values)
        if abs(total - 1.0) <= _TOLERANCE:
            return None
        label = (target.id if isinstance(target, ast.Name)
                 else "unpacked weights")
        return self.report(
            ctx, value,
            f"weight tuple `{label}` sums to {total:g}, must sum to 1")

    @staticmethod
    def _tuple_literals(node: ast.expr,
                        ctx: ModuleContext) -> Optional[List[float]]:
        if not isinstance(node, (ast.Tuple, ast.List)):
            return None
        values = [ctx.number_literal(element) for element in node.elts]
        if any(value is None for value in values):
            return None
        return values  # type: ignore[return-value]


# --------------------------------------------------------------------- #
# Observability facade                                                  #
# --------------------------------------------------------------------- #


@register
class RecorderFacadeRule(Rule):
    """OBS001: instrumented code holds a facade, never a concrete Recorder.

    The zero-overhead guarantee (see repro.obs) rests on call sites taking
    a recorder argument defaulting to ``NULL_RECORDER`` and using only the
    facade methods.  Constructing ``Recorder`` inside the library, type-
    switching on it, or reaching into ``recorder.trace`` / ``.registry`` /
    ``.profiler`` re-couples hot paths to the live implementation.
    ``repro.cli`` (the composition root) and ``repro.obs`` itself are the
    only places allowed to do those things.
    """

    rule_id = "OBS001"
    severity = Severity.WARNING
    summary = "bypassing the NULL_RECORDER facade"
    hint = ("accept `recorder: NullRecorder = NULL_RECORDER` and use the "
            "facade methods (event/inc/gauge/observe/profile)")

    _RECORDER_PATTERN = re.compile(r"(^|\.)obs(\.recorder)?\.Recorder$")
    _INTERNALS = frozenset({"trace", "registry", "profiler"})

    def applies_to(self, path: str) -> bool:
        if _in_paths(path, "obs", "lint", "tests", "test", "benchmarks",
                     "examples"):
            return False
        if path.endswith(("cli.py", "__main__.py")):
            return False
        return _in_paths(path, "repro") or _in_paths(
            path, "core", "simulator", "dht", "traces", "analysis",
            "baselines")

    def _is_recorder(self, node: ast.AST, ctx: ModuleContext) -> bool:
        qualname = ctx.resolve(node)
        return (qualname is not None
                and self._RECORDER_PATTERN.search(qualname) is not None)

    def check_call(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Diagnostic]:
        if self._is_recorder(node.func, ctx):
            yield self.report(
                ctx, node,
                "constructing a live Recorder inside the library; only "
                "the composition root (cli) wires one in")
        qualname = ctx.resolve_call(node)
        if (qualname == "isinstance" and len(node.args) == 2
                and self._is_recorder(node.args[1], ctx)):
            yield self.report(
                ctx, node,
                "type-switching on Recorder; gate on "
                "`recorder.enabled` instead")

    def check_attribute(self, node: ast.Attribute,
                        ctx: ModuleContext) -> Iterator[Diagnostic]:
        if node.attr not in self._INTERNALS:
            return
        if (isinstance(node.value, ast.Name)
                and (node.value.id == "recorder"
                     or node.value.id.endswith("_recorder"))):
            yield self.report(
                ctx, node,
                f"reaching into `{node.value.id}.{node.attr}` bypasses "
                "the facade; NULL_RECORDER has no such attribute")

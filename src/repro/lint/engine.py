"""The lint engine: walk files, run rules, gate on severity.

The engine is deliberately small: parse once per module, build one
:class:`~repro.lint.context.ModuleContext`, dispatch each AST node to the
hooks the active rules implement, then subtract the
``# repro: allow[RULE-ID]`` suppressions.  Everything is deterministic —
files are visited in sorted order and diagnostics are sorted by position —
so two runs over the same tree produce byte-identical output.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Union

from .context import ModuleContext
from .diagnostics import Diagnostic, Severity, count_by_severity
from .rules import Rule, all_rules
from .suppressions import collect_suppressions, split_suppressed

__all__ = ["LintResult", "lint_source", "lint_paths", "iter_python_files",
           "should_fail", "result_to_dict", "PARSE_RULE_ID",
           "JSON_SCHEMA_VERSION"]

#: Rule id attached to files that do not parse at all.
PARSE_RULE_ID = "PARSE001"

#: Version of the JSON document produced by :func:`result_to_dict`.
JSON_SCHEMA_VERSION = 1


@dataclass
class LintResult:
    """Outcome of one lint run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    suppressed: List[Diagnostic] = field(default_factory=list)
    files_checked: int = 0

    def extend(self, other: "LintResult") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.suppressed.extend(other.suppressed)
        self.files_checked += other.files_checked

    def sorted_diagnostics(self) -> List[Diagnostic]:
        return sorted(self.diagnostics, key=Diagnostic.sort_key)

    def counts(self) -> Dict[str, int]:
        return count_by_severity(self.diagnostics)


def _normalize(path: str) -> str:
    return path.replace(os.sep, "/")


def _dispatch(rule: Rule, ctx: ModuleContext) -> Iterator[Diagnostic]:
    """Run every hook ``rule`` implements over the module."""
    check_call = getattr(rule, "check_call", None)
    check_compare = getattr(rule, "check_compare", None)
    check_assign = getattr(rule, "check_assign", None)
    check_attribute = getattr(rule, "check_attribute", None)
    check_iteration = getattr(rule, "check_iteration", None)
    check_module = getattr(rule, "check_module", None)

    if check_call or check_compare or check_assign or check_attribute:
        for node in ast.walk(ctx.tree):
            if check_call and isinstance(node, ast.Call):
                yield from check_call(node, ctx)
            elif check_compare and isinstance(node, ast.Compare):
                yield from check_compare(node, ctx)
            elif check_assign and isinstance(node, ast.Assign):
                yield from check_assign(node, ctx)
            elif check_attribute and isinstance(node, ast.Attribute):
                yield from check_attribute(node, ctx)
    if check_iteration:
        for expr in ctx.iteration_targets():
            yield from check_iteration(expr, ctx)
    if check_module:
        yield from check_module(ctx)


def lint_source(source: str, path: str,
                rules: Optional[Sequence[Rule]] = None) -> LintResult:
    """Lint one module given as text.

    ``path`` is used both for reporting and for the rules' path predicates,
    so tests can lint a snippet *as if* it lived at
    ``src/repro/core/example.py``.
    """
    path = _normalize(path)
    active_rules = [rule for rule in (all_rules() if rules is None else rules)
                    if rule.applies_to(path)]
    result = LintResult(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        result.diagnostics.append(Diagnostic(
            path=path, line=error.lineno or 1, col=(error.offset or 0) or 1,
            rule_id=PARSE_RULE_ID, severity=Severity.ERROR,
            message=f"file does not parse: {error.msg}",
            hint="fix the syntax error; no other rules ran on this file"))
        return result

    ctx = ModuleContext(path, source, tree)
    found: List[Diagnostic] = []
    for rule in active_rules:
        found.extend(_dispatch(rule, ctx))

    suppressions = collect_suppressions(source)
    active, suppressed = split_suppressed(found, suppressions)
    result.diagnostics = sorted(active, key=Diagnostic.sort_key)
    result.suppressed = sorted(suppressed, key=Diagnostic.sort_key)
    return result


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    seen = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    name for name in dirnames
                    if not name.startswith(".") and name != "__pycache__")
                seen.extend(os.path.join(dirpath, name)
                            for name in filenames if name.endswith(".py"))
        else:
            seen.append(path)
    yield from sorted(dict.fromkeys(_normalize(path) for path in seen))


def lint_paths(paths: Sequence[str],
               rules: Optional[Sequence[Rule]] = None) -> LintResult:
    """Lint every Python file under ``paths``."""
    result = LintResult()
    for filepath in iter_python_files(paths):
        with open(filepath, "r", encoding="utf-8") as handle:
            source = handle.read()
        result.extend(lint_source(source, filepath, rules))
    result.diagnostics.sort(key=Diagnostic.sort_key)
    result.suppressed.sort(key=Diagnostic.sort_key)
    return result


def should_fail(result: LintResult,
                fail_on: Union[Severity, str, None]) -> bool:
    """Whether diagnostics at/above ``fail_on`` exist (None: never fail)."""
    if fail_on is None:
        return False
    threshold = (Severity.parse(fail_on) if isinstance(fail_on, str)
                 else fail_on)
    return any(diagnostic.severity >= threshold
               for diagnostic in result.diagnostics)


def result_to_dict(result: LintResult) -> Dict[str, object]:
    """The stable JSON document ``repro lint --format json`` prints."""
    return {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "counts": result.counts(),
        "suppressed": len(result.suppressed),
        "diagnostics": [diagnostic.to_dict()
                        for diagnostic in result.sorted_diagnostics()],
    }

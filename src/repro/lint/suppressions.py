"""Inline suppression comments: ``# repro: allow[RULE-ID]``.

A suppression silences diagnostics *on its own line* (the usual trailing
comment) for the listed rule ids, or for every rule with ``allow[*]``.
Multiple ids are comma-separated: ``# repro: allow[DET001,NUM001]``.

Comments are found with :mod:`tokenize` rather than string search, so a
suppression inside a string literal is (correctly) not a suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Sequence

from .diagnostics import Diagnostic

__all__ = ["SUPPRESS_PATTERN", "collect_suppressions", "is_suppressed",
           "split_suppressed"]

#: The accepted comment grammar. Whitespace is tolerated everywhere a human
#: would plausibly put it.
SUPPRESS_PATTERN = re.compile(
    r"#\s*repro:\s*allow\[\s*(?P<ids>[A-Z0-9*]+(?:\s*,\s*[A-Z0-9*]+)*)\s*\]")


def collect_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> rule ids allowed on that line.

    Unreadable/untokenizable source yields no suppressions; the engine
    reports the parse failure separately.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = SUPPRESS_PATTERN.search(token.string)
            if match is None:
                continue
            ids = frozenset(part.strip()
                            for part in match.group("ids").split(","))
            line = token.start[0]
            suppressions[line] = suppressions.get(line, frozenset()) | ids
    except tokenize.TokenError:
        return {}
    return suppressions


def is_suppressed(diagnostic: Diagnostic,
                  suppressions: Dict[int, FrozenSet[str]]) -> bool:
    allowed = suppressions.get(diagnostic.line)
    if not allowed:
        return False
    return "*" in allowed or diagnostic.rule_id in allowed


def split_suppressed(diagnostics: Sequence[Diagnostic],
                     suppressions: Dict[int, FrozenSet[str]]
                     ) -> "tuple[list[Diagnostic], list[Diagnostic]]":
    """``(active, suppressed)`` partition of ``diagnostics``."""
    active = []
    suppressed = []
    for diagnostic in diagnostics:
        if is_suppressed(diagnostic, suppressions):
            suppressed.append(diagnostic)
        else:
            active.append(diagnostic)
    return active, suppressed

"""repro.lint — project-aware static analysis plus runtime contracts.

The reproduction's correctness rests on invariants the paper states but
Python cannot enforce by itself: eta + rho = 1 (Eq. 1),
alpha + beta + gamma = 1 (Eq. 7), row-stochastic FM/DM/UM/TM
(Eqs. 3/5/6/7) and bitwise-deterministic seeded runs.  This package checks
them twice:

* **statically** — an AST engine (:mod:`~repro.lint.engine`) with a rule
  registry (:mod:`~repro.lint.rules`), per-rule diagnostics, inline
  ``# repro: allow[RULE-ID]`` suppressions and a ``repro lint`` CLI
  subcommand with text/JSON output and ``--fail-on`` severity gating;
* **at runtime** — :mod:`~repro.lint.contracts` exposes
  ``assert_row_stochastic`` / ``assert_simplex``, which core and tuning
  call behind the ``REPRO_CHECK_INVARIANTS`` debug flag.

See docs/static-analysis.md for the rule catalogue and how to add a rule.
"""

from .contracts import (ContractViolation, assert_row_stochastic,
                        assert_simplex, check_row_stochastic, check_simplex,
                        checking_invariants, contracts_enabled,
                        set_contracts_enabled)
from .diagnostics import Diagnostic, Severity
from .engine import (JSON_SCHEMA_VERSION, PARSE_RULE_ID, LintResult,
                     iter_python_files, lint_paths, lint_source,
                     result_to_dict, should_fail)
from .rules import RULES, Rule, all_rules, register, rules_by_id

__all__ = [
    "ContractViolation",
    "assert_row_stochastic",
    "assert_simplex",
    "check_row_stochastic",
    "check_simplex",
    "checking_invariants",
    "contracts_enabled",
    "set_contracts_enabled",
    "Diagnostic",
    "Severity",
    "JSON_SCHEMA_VERSION",
    "PARSE_RULE_ID",
    "LintResult",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "result_to_dict",
    "should_fail",
    "RULES",
    "Rule",
    "all_rules",
    "register",
    "rules_by_id",
]

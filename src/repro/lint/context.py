"""Per-module analysis context shared by every rule.

The context owns the parsed tree, the module's *import alias map* and the
qualified-name resolver rules use to recognise calls like
``np.random.rand(...)`` as ``numpy.random.rand`` regardless of how the
module was imported.  Rules stay ~30 lines because all name plumbing lives
here.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from .diagnostics import Diagnostic, Severity

__all__ = ["ModuleContext"]


def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted origin, from every import statement.

    ``import numpy as np``              -> ``np: numpy``
    ``from numpy import random as r``   -> ``r: numpy.random``
    ``from random import shuffle``      -> ``shuffle: random.shuffle``
    ``from .obs import Recorder``       -> ``Recorder: .obs.Recorder``

    Relative imports keep their leading dots so rules can match on the
    trailing path (``.obs.Recorder`` matches ``(^|.)obs.Recorder$``).
    Scoping is ignored: lint resolves names module-wide, which is the
    right fidelity for a project-specific checker.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname if name.asname else name.name.split(".")[0]
                origin = name.name if name.asname else name.name.split(".")[0]
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom):
            prefix = "." * node.level + (node.module or "")
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname if name.asname else name.name
                aliases[local] = (f"{prefix}.{name.name}"
                                  if prefix else name.name)
    return aliases


class ModuleContext:
    """Everything a rule needs to analyse one module."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.aliases = _collect_aliases(tree)

    # ------------------------------------------------------------------ #
    # Name resolution                                                    #
    # ------------------------------------------------------------------ #

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """The literal dotted form of a Name/Attribute chain, else None."""
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        return ".".join(reversed(parts))

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully-qualified dotted name with import aliases expanded.

        ``np.random.rand`` resolves to ``numpy.random.rand`` under
        ``import numpy as np``; unresolvable expressions (calls on
        arbitrary objects) return ``None``.
        """
        dotted = self.dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        origin = self.aliases.get(head, head)
        return f"{origin}.{rest}" if rest else origin

    def resolve_call(self, node: ast.Call) -> Optional[str]:
        return self.resolve(node.func)

    # ------------------------------------------------------------------ #
    # Reporting                                                          #
    # ------------------------------------------------------------------ #

    def diagnostic(self, node: ast.AST, rule_id: str, severity: Severity,
                   message: str, hint: str = "") -> Diagnostic:
        return Diagnostic(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            severity=severity,
            message=message,
            hint=hint,
        )

    # ------------------------------------------------------------------ #
    # Shared structural helpers                                          #
    # ------------------------------------------------------------------ #

    def iteration_targets(self) -> Iterator[ast.AST]:
        """Every expression the module directly iterates over.

        Covers ``for`` statements (sync and async) and all four
        comprehension forms; each yielded node is the raw ``iter``
        expression before any rule-specific classification.
        """
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield node.iter
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                for generator in node.generators:
                    yield generator.iter

    @staticmethod
    def float_literal(node: ast.AST) -> Optional[float]:
        """The value of a float constant (including ``-0.5``), else None."""
        if (isinstance(node, ast.UnaryOp)
                and isinstance(node.op, (ast.USub, ast.UAdd))):
            inner = ModuleContext.float_literal(node.operand)
            if inner is None:
                return None
            return -inner if isinstance(node.op, ast.USub) else inner
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return node.value
        return None

    @staticmethod
    def number_literal(node: ast.AST) -> Optional[float]:
        """Like :meth:`float_literal` but also accepts int constants."""
        value = ModuleContext.float_literal(node)
        if value is not None:
            return value
        if (isinstance(node, ast.Constant)
                and isinstance(node.value, int)
                and not isinstance(node.value, bool)):
            return float(node.value)
        if (isinstance(node, ast.UnaryOp)
                and isinstance(node.op, (ast.USub, ast.UAdd))):
            inner = ModuleContext.number_literal(node.operand)
            if inner is None:
                return None
            return -inner if isinstance(node.op, ast.USub) else inner
        return None

"""Runtime counterparts of the static invariants.

The lint rules check what is visible in the source; these contracts check
the same paper invariants on live values — row-stochastic trust matrices
(Eqs. 3/5/6/7) and weight simplexes (Eqs. 1/7) — at the pipeline's choke
points.  They are **off by default** and enabled either with the
``REPRO_CHECK_INVARIANTS=1`` environment variable or programmatically via
:func:`set_contracts_enabled` / :func:`checking_invariants`, so the hot
path pays a single boolean check when disabled.

Static rule and runtime check live in one subsystem on purpose: NUM002
tells you a *literal* weight tuple is off the simplex at lint time;
:func:`assert_simplex` tells you a *computed* one is off at run time.
"""

from __future__ import annotations

import contextlib
import math
import os
from typing import Iterable, Iterator, Mapping, Optional, Tuple, Union

__all__ = [
    "ContractViolation",
    "contracts_enabled",
    "set_contracts_enabled",
    "checking_invariants",
    "assert_simplex",
    "assert_row_stochastic",
    "assert_matrices_equal",
    "check_simplex",
    "check_row_stochastic",
    "check_matrices_equal",
]

_ENV_FLAG = "REPRO_CHECK_INVARIANTS"
_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Tristate programmatic override; ``None`` defers to the environment.
_override: Optional[bool] = None


class ContractViolation(AssertionError):
    """A paper invariant failed on live values."""


def contracts_enabled() -> bool:
    """Whether the runtime contracts are active."""
    if _override is not None:
        return _override
    return os.environ.get(_ENV_FLAG, "").strip().lower() in _TRUTHY


def set_contracts_enabled(enabled: Optional[bool]) -> None:
    """Force contracts on/off; ``None`` restores the environment default."""
    global _override
    _override = enabled


@contextlib.contextmanager
def checking_invariants(enabled: bool = True) -> Iterator[None]:
    """Scoped enable/disable — ``with checking_invariants(): ...``."""
    global _override
    previous = _override
    _override = enabled
    try:
        yield
    finally:
        _override = previous


# --------------------------------------------------------------------- #
# Unconditional assertions                                              #
# --------------------------------------------------------------------- #

RowSource = Union[
    Mapping[str, Mapping[str, float]],
    Iterable[Tuple[str, Mapping[str, float]]],
]


def assert_simplex(weights: Iterable[float], *, name: str = "weights",
                   tol: float = 1e-9) -> None:
    """Require every weight in [0, 1] and the sum to equal 1 (± ``tol``).

    Raises :class:`ContractViolation` otherwise.  Covers the Eq. 1
    (eta, rho) and Eq. 7 (alpha, beta, gamma) constraints — and any future
    extension dimension set.
    """
    values = list(weights)
    if not values:
        raise ContractViolation(f"{name}: empty weight tuple")
    for position, value in enumerate(values):
        if not 0.0 - tol <= value <= 1.0 + tol:
            raise ContractViolation(
                f"{name}[{position}] = {value!r} outside [0, 1]")
    total = math.fsum(values)
    if abs(total - 1.0) > tol:
        raise ContractViolation(
            f"{name} sum to {total!r}, must sum to 1 (simplex)")


def _iter_rows(matrix: RowSource) -> Iterable[Tuple[str, Mapping[str, float]]]:
    rows = getattr(matrix, "rows", None)
    if callable(rows):  # duck-typed TrustMatrix
        return rows()
    if isinstance(matrix, Mapping):
        return matrix.items()
    return matrix


def assert_row_stochastic(matrix: RowSource, *, name: str = "matrix",
                          tol: float = 1e-9, strict: bool = True) -> None:
    """Require each non-empty row to sum to 1 (``strict``) or at most 1.

    Accepts a :class:`~repro.core.matrix.TrustMatrix` (anything with a
    ``rows()`` iterator), a mapping-of-mappings, or an iterable of
    ``(row_id, row)`` pairs.  The integrated TM is checked with
    ``strict=False`` because rows are deliberately *sub*-stochastic when a
    dimension's store is absent (see ``build_one_step_matrix``); the
    per-dimension FM/DM/UM matrices are checked strictly.
    """
    for row_id, row in _iter_rows(matrix):
        if not row:
            continue
        total = math.fsum(row.values())
        negative = [value for value in row.values() if value < -tol]
        if negative:
            raise ContractViolation(
                f"{name}[{row_id!r}] has negative entries: {negative[:3]}")
        if strict:
            if abs(total - 1.0) > tol:
                raise ContractViolation(
                    f"{name}[{row_id!r}] sums to {total!r}, must sum to 1 "
                    "(row-stochastic, Eqs. 3/5/6)")
        elif total > 1.0 + tol:
            raise ContractViolation(
                f"{name}[{row_id!r}] sums to {total!r} > 1 "
                "(must be sub-stochastic, Eq. 7)")


def assert_matrices_equal(actual: object, expected: object, *,
                          name: str = "matrix") -> None:
    """Require two trust matrices to be *exactly* equal (``==``, no tol).

    The incremental pipeline's hard bar: a patched matrix must be
    bit-identical to a full rebuild.  On mismatch the error names up to
    three differing entries so the divergent row is findable.
    """
    if actual == expected:
        return
    details = ""
    actual_rows = getattr(actual, "row_view", None)
    expected_iter = getattr(expected, "iter_row_views", None)
    if callable(actual_rows) and callable(expected_iter):
        differing = []
        for i, row in expected.iter_row_views():  # type: ignore[attr-defined]
            other = actual.row_view(i)  # type: ignore[attr-defined]
            for j, value in row.items():
                if other.get(j) != value:
                    differing.append((i, j, other.get(j), value))
        for i, row in actual.iter_row_views():  # type: ignore[attr-defined]
            other = expected.row_view(i)  # type: ignore[attr-defined]
            for j, value in row.items():
                if j not in other:
                    differing.append((i, j, value, None))
        samples = ", ".join(
            f"({i!r},{j!r}): got {got!r}, want {want!r}"
            for i, j, got, want in differing[:3])
        details = f" — {len(differing)} differing entries, e.g. {samples}"
    raise ContractViolation(
        f"{name}: incremental result differs from full rebuild{details}")


# --------------------------------------------------------------------- #
# Flag-guarded wrappers (what instrumented call sites use)              #
# --------------------------------------------------------------------- #


def check_simplex(weights: Iterable[float], *, name: str = "weights",
                  tol: float = 1e-9) -> None:
    """:func:`assert_simplex`, but a no-op unless contracts are enabled."""
    if contracts_enabled():
        assert_simplex(weights, name=name, tol=tol)


def check_row_stochastic(matrix: RowSource, *, name: str = "matrix",
                         tol: float = 1e-9, strict: bool = True) -> None:
    """:func:`assert_row_stochastic`, gated on :func:`contracts_enabled`."""
    if contracts_enabled():
        assert_row_stochastic(matrix, name=name, tol=tol, strict=strict)


def check_matrices_equal(actual: object, expected: object, *,
                         name: str = "matrix") -> None:
    """:func:`assert_matrices_equal`, gated on :func:`contracts_enabled`."""
    if contracts_enabled():
        assert_matrices_equal(actual, expected, name=name)

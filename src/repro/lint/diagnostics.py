"""Diagnostics: what a lint rule reports and how it is rendered.

A :class:`Diagnostic` pins one finding to ``file:line:col`` with a rule id,
a :class:`Severity`, a human message and a fix hint.  Severities are totally
ordered (``note < warning < error``) so the CLI's ``--fail-on`` gate is a
simple comparison.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

__all__ = ["Severity", "Diagnostic", "count_by_severity", "format_text"]


class Severity(enum.IntEnum):
    """Ordered severity levels; the integer order drives ``--fail-on``."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {name!r}; expected one of "
                f"{', '.join(level.name.lower() for level in cls)}") from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding: where, which rule, how bad, what to do about it."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str
    hint: str = ""

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-schema form (see docs/static-analysis.md)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        text = (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} {self.severity}: {self.message}")
        if self.hint:
            text += f" [hint: {self.hint}]"
        return text


def count_by_severity(diagnostics: Sequence[Diagnostic]) -> Dict[str, int]:
    """``{"error": n, "warning": n, "note": n}`` (all keys always present)."""
    counts = {str(level): 0 for level in sorted(Severity, reverse=True)}
    for diagnostic in diagnostics:
        counts[str(diagnostic.severity)] += 1
    return counts


def format_text(diagnostics: Sequence[Diagnostic]) -> List[str]:
    """One rendered line per diagnostic, in (path, line, col) order."""
    return [diagnostic.render()
            for diagnostic in sorted(diagnostics, key=Diagnostic.sort_key)]

"""Export a simulation's download history as a :class:`DownloadTrace`.

Bridges the simulator and the trace toolchain: any simulated run can be
persisted in the Maze log schema and fed through the coverage replay,
trace statistics or the CLI — e.g. to ask "what request coverage would the
file-trust dimension have achieved on *this* simulated workload?".

The collector subscribes by wrapping the mechanism passed to the
simulation, so it sees exactly the downloads the mechanism saw.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..baselines.base import ReputationMechanism
from ..traces.records import DownloadRecord, DownloadTrace

__all__ = ["TraceRecorder"]


class TraceRecorder(ReputationMechanism):
    """A mechanism wrapper that records every download into a trace.

    All signals and queries pass through to the ``inner`` mechanism
    untouched; the recorder only observes.  Ground-truth fake flags are
    filled in lazily via :meth:`annotate_fakes` (the recorder itself never
    peeks at the registry, mirroring what a log server can see).
    """

    name = "trace-recorder"

    def __init__(self, inner: ReputationMechanism):
        self.inner = inner
        self.trace = DownloadTrace()

    # ------------------------------------------------------------------ #
    # Observed signals (forwarded)                                       #
    # ------------------------------------------------------------------ #

    def record_download(self, downloader: str, uploader: str, file_id: str,
                        size_bytes: float, timestamp: float = 0.0) -> None:
        self.trace.append(DownloadRecord(
            uploader_id=uploader, downloader_id=downloader,
            timestamp=timestamp, content_hash=file_id,
            filename=file_id, size_bytes=size_bytes))
        self.inner.record_download(downloader, uploader, file_id,
                                   size_bytes, timestamp)

    def record_vote(self, voter: str, file_id: str, vote: float,
                    timestamp: float = 0.0) -> None:
        self.inner.record_vote(voter, file_id, vote, timestamp)

    def record_retention(self, user: str, file_id: str,
                         retention_seconds: float,
                         timestamp: float = 0.0) -> None:
        self.inner.record_retention(user, file_id, retention_seconds,
                                    timestamp)

    def record_rank(self, rater: str, ratee: str, rating: float) -> None:
        self.inner.record_rank(rater, ratee, rating)

    def record_blacklist(self, user: str, target: str) -> None:
        self.inner.record_blacklist(user, target)

    def record_deletion(self, user: str, file_id: str,
                        timestamp: float = 0.0) -> None:
        self.inner.record_deletion(user, file_id, timestamp)

    def record_upload_outcome(self, uploader: str, positive: bool,
                              timestamp: float = 0.0) -> None:
        self.inner.record_upload_outcome(uploader, positive, timestamp)

    # ------------------------------------------------------------------ #
    # Queries (forwarded)                                                #
    # ------------------------------------------------------------------ #

    def refresh(self) -> None:
        self.inner.refresh()

    def reputation(self, observer: str, target: str) -> float:
        return self.inner.reputation(observer, target)

    def is_distrusted(self, observer: str, target: str) -> bool:
        return self.inner.is_distrusted(observer, target)

    def file_score(self, observer: str, file_id: str) -> Optional[float]:
        return self.inner.file_score(observer, file_id)

    def global_scores(self) -> Dict[str, float]:
        return self.inner.global_scores()

    # ------------------------------------------------------------------ #
    # Export                                                             #
    # ------------------------------------------------------------------ #

    def annotate_fakes(self, fake_flags: Dict[str, bool]) -> DownloadTrace:
        """Return a copy of the trace with ground-truth fake flags set."""
        annotated = DownloadTrace()
        for record in self.trace:
            annotated.append(DownloadRecord(
                uploader_id=record.uploader_id,
                downloader_id=record.downloader_id,
                timestamp=record.timestamp,
                content_hash=record.content_hash,
                filename=record.filename,
                size_bytes=record.size_bytes,
                is_fake=fake_flags.get(record.content_hash, False)))
        return annotated

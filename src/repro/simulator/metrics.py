"""Metric collection for simulation runs.

Collectors accumulate per-behaviour-class outcomes so benchmarks can compare
classes (honest vs. free-rider vs. polluter) and mechanisms (the paper's
system vs. baselines) on:

* download outcomes: real/fake completions, fakes *blocked* pre-download;
* service quality: queue wait times and allocated bandwidth per class;
* pollution cleanup: latency from a fake copy's creation to its deletion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs.recorder import NullRecorder
from ..obs.stats import mean, percentiles

__all__ = ["ClassStats", "SimulationMetrics"]


@dataclass
class ClassStats:
    """Outcome accumulators for one behaviour class."""

    real_downloads: int = 0
    fake_downloads: int = 0
    fakes_blocked: int = 0
    requests_rejected: int = 0
    wait_times: List[float] = field(default_factory=list)
    bandwidths: List[float] = field(default_factory=list)
    bytes_received: float = 0.0
    bytes_served: float = 0.0

    @property
    def total_downloads(self) -> int:
        return self.real_downloads + self.fake_downloads

    @property
    def fake_fraction(self) -> float:
        total = self.total_downloads
        return self.fake_downloads / total if total else 0.0

    @property
    def mean_wait(self) -> float:
        return mean(self.wait_times)

    @property
    def mean_bandwidth(self) -> float:
        return mean(self.bandwidths)

    def wait_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 of this class's queue wait times."""
        return percentiles(self.wait_times)


@dataclass
class SimulationMetrics:
    """All metrics of one simulation run."""

    per_class: Dict[str, ClassStats] = field(default_factory=dict)
    #: (file_id, peer_id) -> creation time of a fake copy (for latency).
    _fake_copy_created: Dict[Tuple[str, str], float] = field(default_factory=dict)
    fake_removal_latencies: List[float] = field(default_factory=list)
    total_requests: int = 0
    blind_judgements: int = 0
    informed_judgements: int = 0
    #: DHT retrieval availability: attempts vs reads that met their quorum.
    retrieval_attempts: int = 0
    retrievals_complete: int = 0
    #: Lookup hop counts observed (for O(log n) checks under faults).
    lookup_hops: List[int] = field(default_factory=list)

    def stats_for(self, label: str) -> ClassStats:
        return self.per_class.setdefault(label, ClassStats())

    # ------------------------------------------------------------------ #
    # Recording                                                          #
    # ------------------------------------------------------------------ #

    def record_request(self) -> None:
        self.total_requests += 1

    def record_judgement(self, blind: bool) -> None:
        if blind:
            self.blind_judgements += 1
        else:
            self.informed_judgements += 1

    def record_download(self, label: str, is_fake: bool, size_bytes: float,
                        wait_time: float, bandwidth: float) -> None:
        stats = self.stats_for(label)
        if is_fake:
            stats.fake_downloads += 1
        else:
            stats.real_downloads += 1
        stats.bytes_received += size_bytes
        stats.wait_times.append(wait_time)
        stats.bandwidths.append(bandwidth)

    def record_blocked_fake(self, label: str) -> None:
        self.stats_for(label).fakes_blocked += 1

    def record_rejected_request(self, label: str) -> None:
        self.stats_for(label).requests_rejected += 1

    def record_bytes_served(self, label: str, size_bytes: float) -> None:
        self.stats_for(label).bytes_served += size_bytes

    def record_fake_copy(self, file_id: str, peer_id: str, now: float) -> None:
        self._fake_copy_created[(file_id, peer_id)] = now

    def record_fake_removal(self, file_id: str, peer_id: str,
                            now: float) -> Optional[float]:
        """Returns the creation-to-removal latency when the copy was known."""
        created = self._fake_copy_created.pop((file_id, peer_id), None)
        if created is None:
            return None
        latency = max(now - created, 0.0)
        self.fake_removal_latencies.append(latency)
        return latency

    def record_retrieval(self, complete: bool,
                         lookup_hops: Optional[int] = None) -> None:
        """One DHT retrieval attempt; ``complete`` = met its read quorum."""
        self.retrieval_attempts += 1
        if complete:
            self.retrievals_complete += 1
        if lookup_hops is not None:
            self.lookup_hops.append(lookup_hops)

    # ------------------------------------------------------------------ #
    # Aggregates                                                         #
    # ------------------------------------------------------------------ #

    @property
    def overall_fake_fraction(self) -> float:
        fake = sum(stats.fake_downloads for stats in self.per_class.values())
        total = sum(stats.total_downloads for stats in self.per_class.values())
        return fake / total if total else 0.0

    @property
    def mean_fake_removal_latency(self) -> float:
        return mean(self.fake_removal_latencies)

    @property
    def availability(self) -> float:
        """Fraction of DHT retrievals that met quorum (1.0 when untracked)."""
        if self.retrieval_attempts == 0:
            return 1.0
        return self.retrievals_complete / self.retrieval_attempts

    @property
    def retrievals_incomplete(self) -> int:
        """DHT retrievals that missed their read quorum (the availability
        complement that used to be invisible)."""
        return self.retrieval_attempts - self.retrievals_complete

    @property
    def mean_lookup_hops(self) -> float:
        return mean(float(h) for h in self.lookup_hops)

    def lookup_hop_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 of observed DHT lookup hop counts."""
        return percentiles(float(h) for h in self.lookup_hops)

    @property
    def outstanding_fake_copies(self) -> int:
        """Fake copies created during the run and never removed."""
        return len(self._fake_copy_created)

    def class_labels(self) -> List[str]:
        return sorted(self.per_class)

    # ------------------------------------------------------------------ #
    # Observability export                                               #
    # ------------------------------------------------------------------ #

    def export(self, recorder: NullRecorder) -> None:
        """Feed the run's accumulators into a recorder's metric registry.

        Called once at the end of a run; a ``NULL_RECORDER`` makes this a
        no-op, so the uninstrumented path pays nothing.
        """
        if not recorder.enabled:
            return
        recorder.inc("sim.requests.total", self.total_requests)
        recorder.inc("sim.judgements.blind", self.blind_judgements)
        recorder.inc("sim.judgements.informed", self.informed_judgements)
        recorder.gauge("sim.fake_fraction.overall",
                       self.overall_fake_fraction)
        recorder.gauge("sim.fakes.outstanding_copies",
                       self.outstanding_fake_copies)
        for label in self.class_labels():
            stats = self.per_class[label]
            recorder.inc("sim.downloads.real", stats.real_downloads,
                         cls=label)
            recorder.inc("sim.downloads.fake", stats.fake_downloads,
                         cls=label)
            recorder.inc("sim.fakes.blocked", stats.fakes_blocked, cls=label)
            recorder.inc("sim.requests.rejected", stats.requests_rejected,
                         cls=label)
            for wait in stats.wait_times:
                recorder.observe("sim.wait_seconds", wait, cls=label)
            for bandwidth in stats.bandwidths:
                recorder.observe("sim.bandwidth_bytes", bandwidth, cls=label)
        for latency in self.fake_removal_latencies:
            recorder.observe("sim.fake_removal_latency", latency)
        recorder.inc("dht.retrievals.attempted", self.retrieval_attempts)
        recorder.inc("dht.retrievals.complete", self.retrievals_complete)
        recorder.inc("dht.retrievals.incomplete", self.retrievals_incomplete)
        for hops in self.lookup_hops:
            recorder.observe("dht.lookup.hops", float(hops))

"""Chaos harness: the DHT evaluation overlay under loss × churn sweeps.

Section 4.3 claims the evaluation framework survives churn.  The regular
churn benchmarks model churn as clean membership changes on a perfect
network; this harness makes the network itself hostile — seeded message
loss, crash-mid-RPC, latency — while peers churn, and measures what the
resilience toolkit (retries, replica quorum reads, repair sweeps) actually
delivers:

* **availability** — fraction of retrievals that met their read quorum;
* **hop inflation** — mean lookup hops vs the fault-free run (routing must
  stay O(log n) even while routing around dead or silent nodes);
* **ranking stability** — Kendall tau between the peer-quality ranking
  recovered from DHT-served evaluations under faults and the same ranking
  from the fault-free run.  Reputation is only as good as the data the
  overlay can still serve.

Everything is deterministic: the fault plan owns one seeded RNG, the
harness another; no global ``random`` state is touched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.ranking import kendall_tau
from ..dht.crypto import KeyAuthority
from ..dht.faults import FaultPlan
from ..dht.overlay_service import EvaluationOverlay
from ..dht.retry import RetryPolicy
from ..dht.ring import DHTNetwork
from ..obs.recorder import NULL_RECORDER, NullRecorder
from .metrics import SimulationMetrics

__all__ = ["ChaosConfig", "ChaosResult", "run_chaos_point",
           "run_chaos_sweep"]


@dataclass(frozen=True)
class ChaosConfig:
    """One cell of the loss × churn grid."""

    peers: int = 24
    files: int = 40
    rounds: int = 30
    loss_rate: float = 0.0
    #: Per-round probability that one random alive peer crashes (and one
    #: previously-crashed peer rejoins).
    churn_rate: float = 0.0
    crash_rate: float = 0.0
    replication: int = 3
    repair_every: int = 3
    record_ttl: float = 10_000.0
    seed: int = 11

    def __post_init__(self) -> None:
        if self.peers < 4:
            raise ValueError("need at least 4 peers")
        if self.files < 1:
            raise ValueError("need at least 1 file")
        if self.rounds < 1:
            raise ValueError("need at least 1 round")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if not 0.0 <= self.churn_rate <= 1.0:
            raise ValueError("churn_rate must be in [0, 1]")


@dataclass
class ChaosResult:
    """Measured outcome of one chaos cell."""

    loss_rate: float
    churn_rate: float
    availability: float
    mean_hops: float
    retrievals: int
    #: Retrievals that missed their read quorum (availability complement).
    retrievals_incomplete: int
    failed_lookups: int
    drops: int
    retries: int
    repairs: int
    #: Per-peer score ranking recovered from DHT-served evaluations.
    scores: Dict[str, float] = field(default_factory=dict)
    #: Filled by :func:`run_chaos_sweep` against the fault-free cell.
    kendall_tau_vs_baseline: Optional[float] = None
    hop_ratio_vs_baseline: Optional[float] = None
    metrics: SimulationMetrics = field(default_factory=SimulationMetrics)


def _peer_quality(index: int, peers: int) -> float:
    """Deterministic ground-truth quality, spread over (0.05, 0.95)."""
    return 0.05 + 0.9 * (index + 0.5) / peers


def run_chaos_point(config: ChaosConfig,
                    recorder: NullRecorder = NULL_RECORDER) -> ChaosResult:
    """Run one deterministic chaos cell and measure resilience."""
    faults = FaultPlan(drop_probability=config.loss_rate,
                       crash_probability=config.crash_rate,
                       seed=config.seed + 1)
    policy = RetryPolicy()
    overlay = EvaluationOverlay(DHTNetwork(), KeyAuthority(),
                                replication=config.replication,
                                record_ttl=config.record_ttl,
                                faults=faults, retry_policy=policy,
                                recorder=recorder)
    rng = random.Random(config.seed)
    metrics = SimulationMetrics()
    #: Simulation clock for the recorder: the current round's timestamp.
    clock = [0.0]
    recorder.bind_clock(lambda: clock[0])
    recorder.event("chaos_cell_start", loss=config.loss_rate,
                   churn=config.churn_rate, peers=config.peers,
                   files=config.files, rounds=config.rounds)

    peer_ids = [f"peer-{index:03d}" for index in range(config.peers)]
    quality = {pid: _peer_quality(index, config.peers)
               for index, pid in enumerate(peer_ids)}
    file_ids = [f"file-{index:03d}" for index in range(config.files)]
    for pid in peer_ids:
        overlay.register_user(pid)
    offline: List[str] = []
    failed_lookups = 0
    now = 0.0

    for round_number in range(config.rounds):
        now = float(round_number * 100)
        clock[0] = now
        # Each round is one trace: publishes, churn, reads, and repair all
        # hang off a ``chaos.round`` span, so the critical path of a bad
        # round points at the overlay operation that actually paid for it.
        with recorder.request_span("chaos.round", round=round_number):
            online = [pid for pid in peer_ids if pid not in offline]

            # Publication: each online peer refreshes evaluations for a few
            # files; the published value is its quality plus seeded noise,
            # so the per-peer mean recovers the quality ranking.
            for pid in online:
                for file_id in rng.sample(file_ids, min(3, len(file_ids))):
                    value = min(max(
                        quality[pid] + rng.uniform(-0.04, 0.04), 0.0), 1.0)
                    overlay.publish(pid, file_id, value, now)

            # Churn: crash one peer, resurrect one, per the churn rate.
            if config.churn_rate > 0.0 and rng.random() < config.churn_rate:
                online_now = [pid for pid in peer_ids if pid not in offline]
                if len(online_now) > config.replication + 1:
                    victim = rng.choice(online_now)
                    if overlay.network.has_node(victim):
                        overlay.network.fail(victim)
                    offline.append(victim)
                    if recorder.enabled:
                        recorder.event("churn_crash", t=now, peer=victim)
                        recorder.inc("chaos.crashes")
            if offline and rng.random() < config.churn_rate:
                returning = offline.pop(0)
                overlay.register_user(returning)
                overlay.republish_all(returning, now)
                if recorder.enabled:
                    recorder.event("churn_rejoin", t=now, peer=returning)
                    recorder.inc("chaos.rejoins")

            # Retrieval: online peers read random files through the overlay.
            online = [pid for pid in peer_ids if pid not in offline]
            for pid in rng.sample(online, min(4, len(online))):
                file_id = rng.choice(file_ids)
                retrieved = overlay.retrieve(pid, file_id, now)
                metrics.record_retrieval(retrieved.complete,
                                         retrieved.lookup_hops)
                if retrieved.replicas_contacted == 0:
                    failed_lookups += 1

            # Repair sweep: re-replicate what crashes took down.
            if config.repair_every > 0 \
                    and round_number % config.repair_every == 0:
                overlay.repair_replicas(now)

    scores = _recover_scores(overlay, peer_ids, file_ids, now, metrics,
                             recorder)
    result = ChaosResult(
        loss_rate=config.loss_rate,
        churn_rate=config.churn_rate,
        availability=metrics.availability,
        mean_hops=metrics.mean_lookup_hops,
        retrievals=metrics.retrieval_attempts,
        retrievals_incomplete=metrics.retrievals_incomplete,
        failed_lookups=failed_lookups,
        drops=overlay.tally.drops,
        retries=overlay.tally.retries,
        repairs=overlay.tally.repairs,
        scores=scores,
        metrics=metrics)
    recorder.event("chaos_cell_end", t=now, loss=config.loss_rate,
                   churn=config.churn_rate,
                   availability=result.availability,
                   incomplete=result.retrievals_incomplete,
                   mean_hops=result.mean_hops, drops=result.drops,
                   retries=result.retries, repairs=result.repairs)
    return result


def _recover_scores(overlay: EvaluationOverlay, peer_ids: List[str],
                    file_ids: List[str], now: float,
                    metrics: SimulationMetrics,
                    recorder: NullRecorder = NULL_RECORDER
                    ) -> Dict[str, float]:
    """Per-peer mean evaluation as served by the DHT right now.

    Runs under a ``mechanism.refresh`` span: the full-catalog read that
    rebuilds reputation from DHT-served state is the mechanism-level
    operation whose children (``dht.retrieve`` → ``dht.lookup``, retries
    and all) a span trace should attribute end to end.
    """
    sums: Dict[str, float] = {pid: 0.0 for pid in peer_ids}
    counts: Dict[str, int] = {pid: 0 for pid in peer_ids}
    observer = next(pid for pid in peer_ids
                    if overlay.network.has_node(pid))
    with recorder.request_span("mechanism.refresh") as span:
        span.count("files", len(file_ids))
        for file_id in file_ids:
            retrieved = overlay.retrieve(observer, file_id, now)
            metrics.record_retrieval(retrieved.complete,
                                     retrieved.lookup_hops)
            for owner, value in retrieved.evaluations.items():
                if owner in sums:
                    sums[owner] += value
                    counts[owner] += 1
    return {pid: (sums[pid] / counts[pid]) if counts[pid] else 0.0
            for pid in peer_ids}


def run_chaos_sweep(loss_rates: List[float], churn_rates: List[float],
                    peers: int = 24, files: int = 40, rounds: int = 30,
                    seed: int = 11, replication: int = 3,
                    recorder: NullRecorder = NULL_RECORDER
                    ) -> List[ChaosResult]:
    """Sweep loss × churn; annotate each cell against the fault-free cell.

    The (0, 0) cell is always run first (injected if absent) and serves as
    the baseline for Kendall tau and hop-ratio comparisons.
    """
    losses = sorted(set(loss_rates) | {0.0})
    churns = sorted(set(churn_rates) | {0.0})
    results: List[ChaosResult] = []
    baseline: Optional[ChaosResult] = None
    for churn_rate in churns:
        for loss_rate in losses:
            result = run_chaos_point(ChaosConfig(
                peers=peers, files=files, rounds=rounds,
                loss_rate=loss_rate, churn_rate=churn_rate,
                replication=replication, seed=seed), recorder=recorder)
            if baseline is None:
                baseline = result
            result.kendall_tau_vs_baseline = kendall_tau(
                result.scores, baseline.scores)
            result.hop_ratio_vs_baseline = (
                result.mean_hops / baseline.mean_hops
                if baseline.mean_hops > 0 else 1.0)
            results.append(result)
    return results

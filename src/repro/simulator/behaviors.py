"""Peer behaviour strategies.

The paper's mechanisms exist because peers are strategic: free-riders take
without giving, polluters push fake files, colluders inflate each other,
forgers copy a reputable user's evaluations, whitewashers shed bad history
by re-joining.  Each strategy is a :class:`PeerBehavior` subclass; the
simulation calls its hooks at the relevant lifecycle points.

All randomness flows through the simulation's seeded RNG, so behaviour mixes
are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .peers import Peer
    from .simulation import FileSharingSimulation

__all__ = [
    "PeerBehavior",
    "HonestBehavior",
    "LazyVoterBehavior",
    "FreeRiderBehavior",
    "PolluterBehavior",
    "ColluderBehavior",
    "ForgerBehavior",
    "WhitewasherBehavior",
]


def _clamp(value: float, low: float = 0.0, high: float = 1.0) -> float:
    return max(low, min(high, value))


@dataclass
class PeerBehavior:
    """Base behaviour: hooks default to fully honest, fully passive."""

    #: Probability of casting an explicit vote after judging a file.
    vote_probability: float = 0.3
    #: Probability of recognising a fake file after consuming it.
    detection_probability: float = 0.9
    #: Probability of blacklisting the uploader of a detected fake.
    blacklist_probability: float = 0.5
    #: Probability of ranking an uploader positively after a good download.
    rank_probability: float = 0.1
    #: Gaussian noise added to honest votes.
    vote_noise: float = 0.1

    #: Class label used in benchmark tables.
    label: str = "honest"

    # ------------------------------------------------------------------ #
    # Hooks                                                              #
    # ------------------------------------------------------------------ #

    def shares(self) -> bool:
        """Does this peer serve upload requests at all?"""
        return True

    def wants_fake_copy(self) -> bool:
        """Would this peer knowingly keep/serve fakes (polluters do)?"""
        return False

    def honest_vote(self, quality: float, rng: random.Random) -> float:
        """A noisy honest vote around the file's true quality."""
        return _clamp(quality + rng.gauss(0.0, self.vote_noise))

    def vote_value(self, quality: float, is_fake: bool,
                   rng: random.Random) -> float:
        """The vote this behaviour casts (honest by default)."""
        return self.honest_vote(quality, rng)

    def on_download_complete(self, simulation: "FileSharingSimulation",
                             peer: "Peer", file_id: str,
                             uploader_id: str) -> None:
        """Judge the downloaded file: keep/delete, vote, rank, blacklist."""
        rng = simulation.rng
        is_fake = simulation.registry.is_fake(file_id)
        quality = simulation.registry.quality(file_id)
        detected_fake = is_fake and rng.random() < self.detection_probability

        if detected_fake:
            simulation.peer_deletes_file(peer, file_id, fake_detected=True)
            if rng.random() < self.vote_probability:
                simulation.peer_votes(peer, file_id,
                                      self.vote_value(quality, True, rng))
            if rng.random() < self.blacklist_probability:
                simulation.peer_blacklists(peer, uploader_id)
            return

        # Kept (real, or an undetected fake).
        if rng.random() < self.vote_probability:
            simulation.peer_votes(peer, file_id,
                                  self.vote_value(quality, is_fake, rng))
        if rng.random() < self.rank_probability:
            simulation.peer_ranks(peer, uploader_id, rating=0.9)

    def on_periodic(self, simulation: "FileSharingSimulation",
                    peer: "Peer") -> None:
        """Called at every maintenance tick; default no-op."""


@dataclass
class HonestBehavior(PeerBehavior):
    """Shares, detects fakes reliably, votes honestly at the configured rate."""

    label: str = "honest"


@dataclass
class LazyVoterBehavior(PeerBehavior):
    """Honest in every respect except never voting or ranking.

    Isolates the explicit-evaluation coverage problem: with only lazy voters
    the system must rely on implicit (retention) evaluations.
    """

    vote_probability: float = 0.0
    rank_probability: float = 0.0
    label: str = "lazy-voter"


@dataclass
class FreeRiderBehavior(PeerBehavior):
    """Downloads but never uploads; votes rarely."""

    vote_probability: float = 0.05
    rank_probability: float = 0.0
    label: str = "free-rider"

    def shares(self) -> bool:
        return False


@dataclass
class PolluterBehavior(PeerBehavior):
    """Injects and serves fake files; praises fakes to prop them up.

    Polluters keep fakes (never delete), vote 1.0 on fakes and — to poison
    the evaluation space — vote dishonestly low on real files.
    """

    vote_probability: float = 0.6
    label: str = "polluter"

    def wants_fake_copy(self) -> bool:
        return True

    def vote_value(self, quality: float, is_fake: bool,
                   rng: random.Random) -> float:
        if is_fake:
            return 1.0
        return _clamp(rng.uniform(0.0, 0.2))

    def on_download_complete(self, simulation: "FileSharingSimulation",
                             peer: "Peer", file_id: str,
                             uploader_id: str) -> None:
        rng = simulation.rng
        is_fake = simulation.registry.is_fake(file_id)
        quality = simulation.registry.quality(file_id)
        # Polluters keep everything and vote strategically.
        if rng.random() < self.vote_probability:
            simulation.peer_votes(peer, file_id,
                                  self.vote_value(quality, is_fake, rng))


@dataclass
class CamouflagedPolluterBehavior(PolluterBehavior):
    """A polluter that votes *honestly on real files* to earn file trust.

    The strongest strategy against Eq. 2 similarity: agreeing with honest
    users everywhere except on its own fakes buys the attacker real
    reputation weight, which Eq. 9 then multiplies into its fake-praising
    votes.  The C8 benchmark sweeps this population share to find where the
    mechanism's fake identification breaks down.
    """

    label: str = "camouflaged"
    vote_probability: float = 0.6

    def vote_value(self, quality: float, is_fake: bool,
                   rng: random.Random) -> float:
        if is_fake:
            return 1.0
        return self.honest_vote(quality, rng)


@dataclass
class ColluderBehavior(PolluterBehavior):
    """A polluter that also boosts its clique with mutual top ratings."""

    label: str = "colluder"
    #: Peers in the same collusion clique (set by the scenario builder).
    clique: Optional[List[str]] = None

    def on_periodic(self, simulation: "FileSharingSimulation",
                    peer: "Peer") -> None:
        if not self.clique:
            return
        for member in self.clique:
            if member != peer.peer_id and simulation.is_online(member):
                simulation.peer_ranks(peer, member, rating=1.0)


@dataclass
class ForgerBehavior(PeerBehavior):
    """Copies a victim's votes to steal their trust (Section 4.2, attack 3).

    Whenever the victim has voted on a file the forger holds, the forger
    repeats that vote verbatim; otherwise it stays silent.  The proactive
    examination defence catches the inconsistency between such mirrored
    evaluations and the forger's actual behaviour.
    """

    label: str = "forger"
    victim_id: Optional[str] = None

    def on_download_complete(self, simulation: "FileSharingSimulation",
                             peer: "Peer", file_id: str,
                             uploader_id: str) -> None:
        if self.victim_id is None:
            return
        victim_vote = simulation.known_vote(self.victim_id, file_id)
        if victim_vote is not None:
            simulation.peer_votes(peer, file_id, victim_vote)

    def on_periodic(self, simulation: "FileSharingSimulation",
                    peer: "Peer") -> None:
        """Mirror any victim votes on files the forger holds."""
        if self.victim_id is None:
            return
        for file_id in simulation.registry.files_of(peer.peer_id):
            victim_vote = simulation.known_vote(self.victim_id, file_id)
            if victim_vote is not None:
                simulation.peer_votes(peer, file_id, victim_vote)


@dataclass
class WhitewasherBehavior(PolluterBehavior):
    """A polluter that re-joins under a fresh identity when caught.

    ``rejoin_threshold`` is the number of blacklistings the peer tolerates
    before shedding the identity; the simulation assigns the new id.
    """

    label: str = "whitewasher"
    rejoin_threshold: int = 3

    def on_periodic(self, simulation: "FileSharingSimulation",
                    peer: "Peer") -> None:
        if simulation.blacklist_count(peer.peer_id) >= self.rejoin_threshold:
            simulation.whitewash(peer)

"""Named simulation scenarios from the paper's motivating settings.

Each factory returns a ready :class:`SimulationConfig` (seeded, laptop
sized) modelling one of the situations the paper argues about:

* ``kazaa_pollution``   — heavy pollution of popular titles ("nearly half
  of the files of some popular titles are fake"), sparse voting ("less
  than 1% of the popular files on KaZaA are voted on");
* ``maze_incentive``    — a mostly honest community with a free-rider
  problem, the regime incentive mechanisms target;
* ``collusion_stress``  — organised colluder cliques boosting each other
  (the Lian et al. study the paper builds on);
* ``churn_heavy``       — short sessions and long offline gaps stressing
  evaluation availability (Section 4.3);
* ``chaos_storm``       — churn_heavy turned hostile: very short sessions,
  a polluter-heavy population, the regime the fault-injection benchmarks
  (``repro chaos``, the C7 chaos extension) put the DHT deployment under;
* ``balanced_mix``      — a bit of everything, the default demo world.

Use :func:`get_scenario` / ``SCENARIOS`` for CLI-style lookup by name.
"""

from __future__ import annotations

from typing import Callable, Dict

from .churn import ChurnModel
from .simulation import ScenarioSpec, SimulationConfig

__all__ = ["SCENARIOS", "get_scenario", "kazaa_pollution", "maze_incentive",
           "collusion_stress", "churn_heavy", "chaos_storm", "balanced_mix"]

_DAY = 24 * 3600.0


def kazaa_pollution(seed: int = 42) -> SimulationConfig:
    """Popular titles heavily polluted, users barely vote."""
    return SimulationConfig(
        scenario=ScenarioSpec(honest=30, free_riders=5, polluters=10,
                              honest_vote_probability=0.05),
        duration_seconds=3 * _DAY,
        num_files=150,
        fake_ratio=0.45,
        request_rate=0.03,
        seed=seed,
    )


def maze_incentive(seed: int = 42) -> SimulationConfig:
    """Mostly honest community with a substantial free-rider population."""
    return SimulationConfig(
        scenario=ScenarioSpec(honest=30, lazy_voters=10, free_riders=20,
                              polluters=2, honest_vote_probability=0.4),
        duration_seconds=3 * _DAY,
        num_files=120,
        fake_ratio=0.1,
        request_rate=0.03,
        seed=seed,
    )


def collusion_stress(seed: int = 42) -> SimulationConfig:
    """Two organised colluder cliques against an honest majority."""
    return SimulationConfig(
        scenario=ScenarioSpec(honest=30, colluders=10, clique_size=5,
                              forgers=2, whitewashers=2,
                              honest_vote_probability=0.4),
        duration_seconds=3 * _DAY,
        num_files=120,
        fake_ratio=0.3,
        request_rate=0.03,
        seed=seed,
    )


def churn_heavy(seed: int = 42) -> SimulationConfig:
    """Short sessions, long offline gaps: availability under stress."""
    return SimulationConfig(
        scenario=ScenarioSpec(honest=30, polluters=5,
                              honest_vote_probability=0.4),
        duration_seconds=2 * _DAY,
        num_files=100,
        fake_ratio=0.25,
        request_rate=0.03,
        seed=seed,
        churn=ChurnModel(mean_session_seconds=2 * 3600.0,
                         mean_offline_seconds=10 * 3600.0,
                         seed=seed + 1),
    )


def chaos_storm(seed: int = 42) -> SimulationConfig:
    """Hostile churn: sessions measured in minutes, not hours.

    ``churn_heavy`` scaled 4x faster via :meth:`ChurnModel.scaled`; pair it
    with a :class:`~repro.dht.faults.FaultPlan` on a DHT-backed mechanism
    for the full chaos treatment (``repro chaos`` sweeps that grid).
    """
    return SimulationConfig(
        scenario=ScenarioSpec(honest=24, polluters=8, free_riders=4,
                              honest_vote_probability=0.4),
        duration_seconds=1 * _DAY,
        num_files=80,
        fake_ratio=0.3,
        request_rate=0.03,
        seed=seed,
        maintenance_interval_seconds=2 * 3600.0,
        churn=ChurnModel(mean_session_seconds=2 * 3600.0,
                         mean_offline_seconds=10 * 3600.0,
                         seed=seed + 1).scaled(4.0),
    )


def balanced_mix(seed: int = 42) -> SimulationConfig:
    """A bit of every behaviour; the default demo world."""
    return SimulationConfig(
        scenario=ScenarioSpec(honest=24, lazy_voters=6, free_riders=6,
                              polluters=4, colluders=4, forgers=2,
                              whitewashers=2, honest_vote_probability=0.35),
        duration_seconds=2 * _DAY,
        num_files=120,
        fake_ratio=0.25,
        request_rate=0.03,
        seed=seed,
    )


SCENARIOS: Dict[str, Callable[[int], SimulationConfig]] = {
    "kazaa-pollution": kazaa_pollution,
    "maze-incentive": maze_incentive,
    "collusion-stress": collusion_stress,
    "churn-heavy": churn_heavy,
    "chaos-storm": chaos_storm,
    "balanced-mix": balanced_mix,
}


def get_scenario(name: str, seed: int = 42) -> SimulationConfig:
    """Look a scenario up by name (raises ``KeyError`` with suggestions)."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(sorted(SCENARIOS))}") from None
    return factory(seed)

"""Peer state inside the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .behaviors import PeerBehavior

__all__ = ["Peer", "UploadRequest"]


@dataclass
class UploadRequest:
    """A pending request queued at an uploader."""

    requester_id: str
    file_id: str
    arrival_time: float
    #: Arrival adjusted by the reputation queue offset (Section 3.4).
    effective_time: float


@dataclass
class Peer:
    """One participant: identity, behaviour, connectivity and capacity."""

    peer_id: str
    behavior: PeerBehavior
    #: Upload capacity in bytes/second, shared across concurrent uploads.
    upload_capacity: float = 256 * 1024.0
    #: Maximum concurrent uploads served.
    upload_slots: int = 2
    online: bool = False
    joined_at: float = 0.0
    #: Requests waiting for a free slot.
    queue: List[UploadRequest] = field(default_factory=list)
    #: Number of uploads currently in flight.
    active_uploads: int = 0
    #: Chain of identities for whitewashers (oldest first).
    previous_identities: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.upload_capacity <= 0:
            raise ValueError("upload_capacity must be positive")
        if self.upload_slots < 1:
            raise ValueError("upload_slots must be >= 1")

    @property
    def has_free_slot(self) -> bool:
        return self.active_uploads < self.upload_slots

    @property
    def label(self) -> str:
        """Behaviour-class label for metrics."""
        return self.behavior.label

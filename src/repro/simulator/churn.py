"""Peer churn: session and offline durations.

"In a real P2P network, users may join and leave the system frequently and
churn may affect data's availability" (Section 4.3).  Sessions and offline
gaps are exponentially distributed, the standard first-order churn model;
the simulation schedules leave/rejoin events from these draws.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["ChurnModel"]


@dataclass
class ChurnModel:
    """Exponential session/offline churn; ``enabled=False`` disables churn."""

    enabled: bool = True
    mean_session_seconds: float = 6 * 3600.0
    mean_offline_seconds: float = 18 * 3600.0
    #: Peers join staggered over this initial window.
    join_spread_seconds: float = 3600.0
    seed: int = 23

    def __post_init__(self) -> None:
        if self.mean_session_seconds <= 0:
            raise ValueError("mean_session_seconds must be positive")
        if self.mean_offline_seconds <= 0:
            raise ValueError("mean_offline_seconds must be positive")
        if self.join_spread_seconds < 0:
            raise ValueError("join_spread_seconds must be >= 0")
        self._rng = random.Random(self.seed)

    def initial_join_delay(self) -> float:
        """Delay before a peer's first join."""
        if self.join_spread_seconds == 0:
            return 0.0
        return self._rng.uniform(0.0, self.join_spread_seconds)

    def session_duration(self) -> float:
        """How long the peer stays online this session."""
        return self._rng.expovariate(1.0 / self.mean_session_seconds)

    def offline_duration(self) -> float:
        """How long the peer stays offline before rejoining."""
        return self._rng.expovariate(1.0 / self.mean_offline_seconds)

    def scaled(self, factor: float) -> "ChurnModel":
        """A copy churning ``factor`` times as fast (sweep helper).

        Session and offline means shrink by ``factor`` so the ratio of
        online to offline time is preserved; the RNG seed carries over so a
        sweep cell differs from its neighbours only in rate.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        return ChurnModel(
            enabled=self.enabled,
            mean_session_seconds=self.mean_session_seconds / factor,
            mean_offline_seconds=self.mean_offline_seconds / factor,
            join_spread_seconds=self.join_spread_seconds,
            seed=self.seed)

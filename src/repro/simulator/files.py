"""Shared-file state inside the simulator.

:class:`FileRegistry` tracks, for every catalog file, which peers currently
hold a copy (and since when), who injected fakes, and deletion history.  The
registry is ground truth the *simulator* sees; mechanisms only observe the
behavioural signals the simulation forwards to them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..traces.catalog import FileCatalog

__all__ = ["Holding", "FileRegistry"]


@dataclass
class Holding:
    """One peer's copy of one file."""

    peer_id: str
    file_id: str
    acquired_at: float
    #: None while held; set when the peer deletes the copy.
    deleted_at: Optional[float] = None

    def retention(self, now: float) -> float:
        """Seconds the copy has been (or was) held."""
        end = self.deleted_at if self.deleted_at is not None else now
        return max(end - self.acquired_at, 0.0)

    @property
    def held(self) -> bool:
        return self.deleted_at is None


class FileRegistry:
    """Who holds what, built over a :class:`FileCatalog`."""

    def __init__(self, catalog: FileCatalog):
        self.catalog = catalog
        self._holdings: Dict[Tuple[str, str], Holding] = {}
        self._holders: Dict[str, Set[str]] = {}
        self._peer_files: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------ #
    # Mutation                                                           #
    # ------------------------------------------------------------------ #

    def add_copy(self, peer_id: str, file_id: str, now: float) -> Holding:
        """Record that ``peer_id`` acquired ``file_id`` at time ``now``.

        Re-acquiring a previously deleted copy resets the holding.
        """
        self.catalog.get(file_id)  # KeyError for unknown files
        holding = Holding(peer_id=peer_id, file_id=file_id, acquired_at=now)
        self._holdings[(peer_id, file_id)] = holding
        self._holders.setdefault(file_id, set()).add(peer_id)
        self._peer_files.setdefault(peer_id, set()).add(file_id)
        return holding

    def delete_copy(self, peer_id: str, file_id: str, now: float) -> Holding:
        """Record that ``peer_id`` deleted its copy at time ``now``."""
        holding = self._holdings.get((peer_id, file_id))
        if holding is None or not holding.held:
            raise KeyError(f"{peer_id} does not hold {file_id}")
        holding.deleted_at = now
        self._holders[file_id].discard(peer_id)
        self._peer_files[peer_id].discard(file_id)
        return holding

    def drop_peer(self, peer_id: str, now: float) -> List[str]:
        """Peer left the system: all held copies become unavailable."""
        file_ids = list(self._peer_files.get(peer_id, ()))
        for file_id in file_ids:
            self.delete_copy(peer_id, file_id, now)
        return file_ids

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #

    def holders(self, file_id: str) -> Set[str]:
        """Peers currently holding a copy of ``file_id``."""
        return set(self._holders.get(file_id, ()))

    def files_of(self, peer_id: str) -> Set[str]:
        """Files ``peer_id`` currently holds."""
        return set(self._peer_files.get(peer_id, ()))

    def holding(self, peer_id: str, file_id: str) -> Optional[Holding]:
        return self._holdings.get((peer_id, file_id))

    def holds(self, peer_id: str, file_id: str) -> bool:
        holding = self._holdings.get((peer_id, file_id))
        return holding is not None and holding.held

    def retention(self, peer_id: str, file_id: str, now: float) -> Optional[float]:
        holding = self._holdings.get((peer_id, file_id))
        if holding is None:
            return None
        return holding.retention(now)

    def current_holdings(self) -> Iterable[Holding]:
        """All live holdings (peer still has the copy)."""
        return (holding for holding in self._holdings.values() if holding.held)

    def is_fake(self, file_id: str) -> bool:
        return self.catalog.get(file_id).is_fake

    def quality(self, file_id: str) -> float:
        return self.catalog.get(file_id).quality

    def size(self, file_id: str) -> float:
        return self.catalog.get(file_id).size_bytes

"""Deterministic discrete-event simulation engine.

A minimal heap-based scheduler: events are ``(time, sequence, callback,
span_ref)`` tuples; the sequence number makes simultaneous events fire in
scheduling order, so runs are fully deterministic for a fixed seed.
Callbacks receive the engine, may schedule further events, and may stop
the run.

The fourth element is causal-span propagation (see
:mod:`repro.obs.spans`): when span tracing is on, scheduling captures the
active span reference and the loop resumes it around the callback, so a
span opened inside the callback joins the trace of the work that scheduled
it.  With spans off (the default) the reference is always ``None`` and the
loop takes the bare-call path.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..obs.spans import SpanRef

from ..core.durability.faults import SimulatedCrash
from ..obs.recorder import NULL_RECORDER, NullRecorder

__all__ = ["EventEngine", "ScheduledEvent"]

Callback = Callable[["EventEngine"], None]


@dataclass(frozen=True)
class ScheduledEvent:
    """Handle returned by :meth:`EventEngine.schedule`; supports cancel."""

    time: float
    sequence: int

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)


class EventEngine:
    """Heap-based event loop with a monotonically advancing clock."""

    def __init__(self, start_time: float = 0.0,
                 recorder: NullRecorder = NULL_RECORDER):
        self._now = start_time
        self._sequence = itertools.count()
        self._heap: List[Tuple[float, int, Callback, Optional[SpanRef]]] = []
        self._cancelled: set = set()
        self._stopped = False
        self._events_processed = 0
        #: Observability sink; NULL_RECORDER keeps the loop unmetered.
        self._recorder = recorder

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------------ #
    # Scheduling                                                         #
    # ------------------------------------------------------------------ #

    def schedule(self, delay: float, callback: Callback) -> ScheduledEvent:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callback) -> ScheduledEvent:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self._now}")
        sequence = next(self._sequence)
        link = (self._recorder.active_span_ref()
                if self._recorder.enabled else None)
        heapq.heappush(self._heap, (time, sequence, callback, link))
        return ScheduledEvent(time=time, sequence=sequence)

    def cancel(self, event: ScheduledEvent) -> None:
        """Cancel a scheduled event (lazy deletion; safe to double-cancel)."""
        self._cancelled.add(event.sequence)

    def stop(self) -> None:
        """Stop the run after the current callback returns."""
        self._stopped = True

    def schedule_crash(self, at_time: float,
                       reason: str = "scheduled crash") -> ScheduledEvent:
        """Kill the run at ``at_time`` by raising :class:`SimulatedCrash`.

        The exception propagates out of :meth:`run` exactly like a process
        death would cut the call stack: no later events fire, no cleanup
        hooks run, and whatever a journalled system had persisted by then
        is all recovery gets — which is precisely what the crash-recovery
        tests need to stage deterministically.
        """
        def _crash(engine: "EventEngine") -> None:
            raise SimulatedCrash(f"{reason} at t={engine.now:.0f}s")
        return self.schedule_at(at_time, _crash)

    # ------------------------------------------------------------------ #
    # Running                                                            #
    # ------------------------------------------------------------------ #

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Process events until the horizon/count/queue is exhausted.

        Returns the number of events processed by this call.  The clock
        advances to ``until`` (if given) even when the queue drains early,
        so repeated ``run`` calls compose predictably.
        """
        processed = 0
        with self._recorder.profile("engine.run"):
            while self._heap and not self._stopped:
                if max_events is not None and processed >= max_events:
                    break
                time, sequence, callback, link = self._heap[0]
                if until is not None and time > until:
                    break
                heapq.heappop(self._heap)
                if sequence in self._cancelled:
                    self._cancelled.discard(sequence)
                    continue
                self._now = time
                if link is not None:
                    with self._recorder.resume_scope(link):
                        callback(self)
                else:
                    callback(self)
                processed += 1
                self._events_processed += 1
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        if processed and self._recorder.enabled:
            self._recorder.inc("engine.events_processed", processed)
            self._recorder.profile_count("engine.run", "events", processed)
        return processed

"""Request workload: who asks for which file, when.

A global Poisson arrival process; each arrival picks an online requester
(activity-weighted, heavy-tailed as in Maze) and a file the requester does
not already hold (popularity-weighted among files alive at that time).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from .files import FileRegistry

__all__ = ["WorkloadModel"]


@dataclass
class WorkloadModel:
    """Poisson request generator over a peer population and catalog."""

    #: Mean requests per simulated second across the whole system.
    request_rate: float = 0.05
    #: Log-normal sigma of per-peer activity weights.
    activity_sigma: float = 1.0
    seed: int = 11

    def __post_init__(self) -> None:
        if self.request_rate <= 0:
            raise ValueError("request_rate must be positive")
        self._rng = random.Random(self.seed)
        self._activity: Dict[str, float] = {}

    def register_peer(self, peer_id: str) -> None:
        """Draw (once) the peer's activity weight."""
        if peer_id not in self._activity:
            self._activity[peer_id] = self._rng.lognormvariate(
                0.0, self.activity_sigma)

    def next_interarrival(self) -> float:
        """Seconds until the next request arrival."""
        return self._rng.expovariate(self.request_rate)

    def pick_request(self, online_peers: Sequence[str],
                     registry: FileRegistry,
                     now: float) -> Optional[Tuple[str, str]]:
        """Pick ``(requester, file_id)`` or None when nothing is feasible.

        Retries a few samples to find a (requester, file) pair where the
        requester does not already hold the file and at least one other peer
        could serve it.
        """
        if not online_peers:
            return None
        weights = [self._activity.get(peer_id, 1.0) for peer_id in online_peers]
        for _ in range(8):
            requester = self._rng.choices(online_peers, weights=weights, k=1)[0]
            sampled = registry.catalog.sample(self._rng, timestamp=now, k=1)
            if not sampled:
                return None
            file_id = sampled[0].file_id
            if registry.holds(requester, file_id):
                continue
            return requester, file_id
        return None

"""Discrete-event P2P file-sharing simulator."""

from .behaviors import (CamouflagedPolluterBehavior, ColluderBehavior,
                        ForgerBehavior, FreeRiderBehavior, HonestBehavior,
                        LazyVoterBehavior, PeerBehavior, PolluterBehavior,
                        WhitewasherBehavior)
from .chaos import (ChaosConfig, ChaosResult, run_chaos_point,
                    run_chaos_sweep)
from .churn import ChurnModel
from .engine import EventEngine, ScheduledEvent
from .files import FileRegistry, Holding
from .metrics import ClassStats, SimulationMetrics
from .peers import Peer, UploadRequest
from .scenarios import (SCENARIOS, balanced_mix, chaos_storm, churn_heavy,
                        collusion_stress, get_scenario, kazaa_pollution,
                        maze_incentive)
from .simulation import FileSharingSimulation, ScenarioSpec, SimulationConfig
from .trace_export import TraceRecorder
from .workload import WorkloadModel

__all__ = [
    "CamouflagedPolluterBehavior",
    "ColluderBehavior",
    "ForgerBehavior",
    "FreeRiderBehavior",
    "HonestBehavior",
    "LazyVoterBehavior",
    "PeerBehavior",
    "PolluterBehavior",
    "WhitewasherBehavior",
    "ChurnModel",
    "EventEngine",
    "ScheduledEvent",
    "FileRegistry",
    "Holding",
    "ClassStats",
    "SimulationMetrics",
    "Peer",
    "UploadRequest",
    "FileSharingSimulation",
    "ScenarioSpec",
    "SimulationConfig",
    "TraceRecorder",
    "WorkloadModel",
    "ChaosConfig",
    "ChaosResult",
    "run_chaos_point",
    "run_chaos_sweep",
    "SCENARIOS",
    "balanced_mix",
    "chaos_storm",
    "churn_heavy",
    "collusion_stress",
    "get_scenario",
    "kazaa_pollution",
    "maze_incentive",
]

"""The file-sharing simulation: peers + workload + mechanism + incentives.

:class:`FileSharingSimulation` wires the substrates together:

* a :class:`~repro.simulator.engine.EventEngine` drives time;
* a :class:`~repro.simulator.workload.WorkloadModel` emits download requests;
* peers with :mod:`~repro.simulator.behaviors` strategies react to
  completed downloads (keep/delete/vote/rank/blacklist);
* a pluggable :class:`~repro.baselines.base.ReputationMechanism` observes
  every signal and, when enabled, steers the system through the paper's two
  levers — **file filtering** (Eq. 9 judgement before download) and
  **service differentiation** (queue offsets + bandwidth quotas, §3.4);
* a :class:`~repro.simulator.metrics.SimulationMetrics` records outcomes.

The simulation is fully deterministic for a fixed configuration.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..baselines.base import ReputationMechanism
from ..baselines.null import NullMechanism
from ..core.durability.journal import DurabilityManager
from ..obs.recorder import NULL_RECORDER, NullRecorder
from ..traces.catalog import FileCatalog
from .behaviors import (CamouflagedPolluterBehavior, ColluderBehavior,
                        ForgerBehavior, FreeRiderBehavior, HonestBehavior,
                        LazyVoterBehavior, PeerBehavior, PolluterBehavior,
                        WhitewasherBehavior)
from .churn import ChurnModel
from .engine import EventEngine
from .files import FileRegistry
from .metrics import SimulationMetrics
from .peers import Peer, UploadRequest
from .workload import WorkloadModel

__all__ = ["SimulationConfig", "ScenarioSpec", "FileSharingSimulation"]

_DAY_SECONDS = 24 * 3600.0


@dataclass(frozen=True)
class ScenarioSpec:
    """Behaviour mix of the peer population."""

    honest: int = 50
    lazy_voters: int = 0
    free_riders: int = 0
    polluters: int = 0
    camouflaged_polluters: int = 0
    colluders: int = 0
    forgers: int = 0
    whitewashers: int = 0
    #: Colluders are split into cliques of this size.
    clique_size: int = 5
    #: Vote probability of honest peers (incentive experiments sweep this).
    honest_vote_probability: float = 0.3

    def total(self) -> int:
        return (self.honest + self.lazy_voters + self.free_riders
                + self.polluters + self.camouflaged_polluters
                + self.colluders + self.forgers + self.whitewashers)


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to run one simulation."""

    scenario: ScenarioSpec = field(default_factory=ScenarioSpec)
    duration_seconds: float = 3 * _DAY_SECONDS
    num_files: int = 300
    fake_ratio: float = 0.25
    request_rate: float = 0.05
    seed: int = 42
    #: Apply Eq. 9-style filtering before downloads.
    use_file_filtering: bool = True
    #: Reject threshold on the mechanism's file score.
    file_score_threshold: float = 0.5
    #: Apply queue offsets and bandwidth quotas (Section 3.4).
    use_service_differentiation: bool = True
    max_queue_offset_seconds: float = 120.0
    min_bandwidth_quota: float = 16 * 1024.0
    #: Mean delay between finishing a download and judging the file (the
    #: user has to actually watch/listen before recognising a fake).
    mean_consumption_delay_seconds: float = 2 * 3600.0
    #: Maintenance tick: retention refresh + mechanism refresh + periodic
    #: behaviours.
    maintenance_interval_seconds: float = 6 * 3600.0
    churn: Optional[ChurnModel] = None
    #: Copies of each file seeded before the run starts.
    initial_replicas: int = 3

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        if self.scenario.total() < 2:
            raise ValueError("need at least two peers")
        if self.maintenance_interval_seconds <= 0:
            raise ValueError("maintenance_interval_seconds must be positive")
        if not 0.0 <= self.file_score_threshold <= 1.0:
            raise ValueError("file_score_threshold must be in [0,1]")
        if self.mean_consumption_delay_seconds < 0:
            raise ValueError("mean_consumption_delay_seconds must be >= 0")


class FileSharingSimulation:
    """A complete, deterministic P2P file-sharing simulation run."""

    def __init__(self, config: SimulationConfig,
                 mechanism: Optional[ReputationMechanism] = None,
                 recorder: NullRecorder = NULL_RECORDER,
                 durability: Optional[DurabilityManager] = None):
        self.config = config
        #: Optional crash safety: when set, :meth:`run` attaches the
        #: journal before the first event and every maintenance tick is a
        #: durability safe point (WAL fsync + possible snapshot).  The
        #: *owner* of the manager closes it — the simulation never does,
        #: so a SimulatedCrash propagating out of ``run`` leaves the
        #: directory exactly as a killed process would.
        self.durability = durability
        self.mechanism = mechanism if mechanism is not None else NullMechanism()
        self.rng = random.Random(config.seed)
        #: Observability sink; events are keyed by ``engine.now`` and the
        #: default NULL_RECORDER leaves the run byte-identical to seed.
        self.recorder = recorder
        self.engine = EventEngine(recorder=recorder)
        recorder.bind_clock(lambda: self.engine.now)
        self.mechanism.bind_recorder(recorder)
        self.metrics = SimulationMetrics()
        self.workload = WorkloadModel(request_rate=config.request_rate,
                                      seed=config.seed + 1)
        self.catalog = FileCatalog.generate(
            config.num_files, random.Random(config.seed + 2),
            fake_ratio=config.fake_ratio,
            trace_days=config.duration_seconds / _DAY_SECONDS)
        self.registry = FileRegistry(self.catalog)
        self.peers: Dict[str, Peer] = {}
        self._votes: Dict[Tuple[str, str], float] = {}
        self._blacklist_counts: Dict[str, int] = {}
        self._download_sources: Dict[Tuple[str, str], str] = {}
        #: Per-peer [bytes_up, bytes_down, fakes_served], maintained only
        #: under a live recorder (feeds the refresh-time timeline events).
        self._peer_flows: Dict[str, List[float]] = {}
        self._whitewash_counter = itertools.count(1)
        self._build_population()
        self._seed_initial_copies()

    # ------------------------------------------------------------------ #
    # Population setup                                                   #
    # ------------------------------------------------------------------ #

    def _build_population(self) -> None:
        spec = self.config.scenario
        builders: List[Tuple[str, int, Callable[[], PeerBehavior]]] = [
            ("honest", spec.honest,
             lambda: HonestBehavior(
                 vote_probability=spec.honest_vote_probability)),
            ("lazy", spec.lazy_voters, LazyVoterBehavior),
            ("freerider", spec.free_riders, FreeRiderBehavior),
            ("polluter", spec.polluters, PolluterBehavior),
            ("camouflaged", spec.camouflaged_polluters,
             CamouflagedPolluterBehavior),
            ("colluder", spec.colluders, ColluderBehavior),
            ("forger", spec.forgers, ForgerBehavior),
            ("whitewasher", spec.whitewashers, WhitewasherBehavior),
        ]
        for prefix, count, factory in builders:
            for index in range(count):
                peer_id = f"{prefix}-{index:04d}"
                self._add_peer(peer_id, factory())

        self._form_cliques(spec)
        self._assign_forgery_victims()

    def _add_peer(self, peer_id: str, behavior: PeerBehavior) -> Peer:
        peer = Peer(
            peer_id=peer_id,
            behavior=behavior,
            upload_capacity=self.rng.uniform(128, 512) * 1024.0,
            upload_slots=self.rng.randint(2, 4),
        )
        self.peers[peer_id] = peer
        self.workload.register_peer(peer_id)
        return peer

    def _form_cliques(self, spec: ScenarioSpec) -> None:
        colluder_ids = [pid for pid, peer in self.peers.items()
                        if isinstance(peer.behavior, ColluderBehavior)
                        and not isinstance(peer.behavior, WhitewasherBehavior)]
        size = max(spec.clique_size, 2)
        for start in range(0, len(colluder_ids), size):
            clique = colluder_ids[start:start + size]
            for peer_id in clique:
                behavior = self.peers[peer_id].behavior
                assert isinstance(behavior, ColluderBehavior)
                behavior.clique = list(clique)

    def _assign_forgery_victims(self) -> None:
        honest_ids = [pid for pid, peer in self.peers.items()
                      if isinstance(peer.behavior, HonestBehavior)]
        forger_ids = [pid for pid, peer in self.peers.items()
                      if isinstance(peer.behavior, ForgerBehavior)]
        if not honest_ids:
            return
        for forger_id in forger_ids:
            behavior = self.peers[forger_id].behavior
            assert isinstance(behavior, ForgerBehavior)
            behavior.victim_id = self.rng.choice(honest_ids)

    def _seed_initial_copies(self) -> None:
        """Seed each file with initial replicas; fakes prefer bad actors."""
        sharers = [pid for pid, peer in self.peers.items()
                   if peer.behavior.shares()]
        fake_friendly = [pid for pid, peer in self.peers.items()
                         if peer.behavior.wants_fake_copy()]
        for catalog_file in self.catalog:
            pool = (fake_friendly if catalog_file.is_fake and fake_friendly
                    else sharers or list(self.peers))
            k = min(self.config.initial_replicas, len(pool))
            for holder in self.rng.sample(pool, k):
                self.registry.add_copy(holder, catalog_file.file_id, 0.0)
                if catalog_file.is_fake:
                    self.metrics.record_fake_copy(catalog_file.file_id,
                                                  holder, 0.0)

    # ------------------------------------------------------------------ #
    # Run                                                                #
    # ------------------------------------------------------------------ #

    def run(self) -> SimulationMetrics:
        """Execute the configured run and return the collected metrics."""
        if self.durability is not None:
            self.durability.attach()
        self._schedule_joins()
        self.engine.schedule(self.workload.next_interarrival(),
                             self._on_request_arrival)
        self.engine.schedule(self.config.maintenance_interval_seconds,
                             self._on_maintenance)
        self.engine.run(until=self.config.duration_seconds)
        self._final_retention_flush()
        self.metrics.export(self.recorder)
        return self.metrics

    def _schedule_joins(self) -> None:
        churn = self.config.churn
        for peer in self.peers.values():
            if churn is not None and churn.enabled:
                delay = churn.initial_join_delay()
                self.engine.schedule(delay, self._join_callback(peer.peer_id))
            else:
                peer.online = True
                peer.joined_at = 0.0
                self.mechanism.on_peer_online(peer.peer_id, 0.0)
                if self.recorder.enabled:
                    self.recorder.event("peer_join", t=0.0,
                                        peer=peer.peer_id, cls=peer.label)

    def _join_callback(self, peer_id: str):
        def _join(engine: EventEngine) -> None:
            peer = self.peers.get(peer_id)
            if peer is None:
                return
            peer.online = True
            peer.joined_at = engine.now
            self.mechanism.on_peer_online(peer_id, engine.now)
            if self.recorder.enabled:
                self.recorder.event("peer_join", peer=peer_id,
                                    cls=peer.label)
            churn = self.config.churn
            if churn is not None and churn.enabled:
                engine.schedule(churn.session_duration(),
                                self._leave_callback(peer_id))
        return _join

    def _leave_callback(self, peer_id: str):
        def _leave(engine: EventEngine) -> None:
            peer = self.peers.get(peer_id)
            if peer is None or not peer.online:
                return
            peer.online = False
            peer.queue.clear()
            self.mechanism.on_peer_offline(peer_id, engine.now)
            if self.recorder.enabled:
                self.recorder.event("peer_leave", peer=peer_id,
                                    cls=peer.label)
            churn = self.config.churn
            if churn is not None and churn.enabled:
                engine.schedule(churn.offline_duration(),
                                self._join_callback(peer_id))
        return _leave

    # ------------------------------------------------------------------ #
    # Request pipeline                                                   #
    # ------------------------------------------------------------------ #

    def _on_request_arrival(self, engine: EventEngine) -> None:
        # Schedule the next arrival *before* opening the span, so successive
        # requests start fresh traces instead of chaining to each other.
        engine.schedule(self.workload.next_interarrival(),
                        self._on_request_arrival)
        with self.recorder.request_span("sim.request"):
            self._handle_request_arrival(engine)

    def _handle_request_arrival(self, engine: EventEngine) -> None:
        online = sorted(pid for pid, peer in self.peers.items() if peer.online)
        picked = self.workload.pick_request(online, self.registry, engine.now)
        if picked is None:
            return
        requester_id, file_id = picked
        self.metrics.record_request()
        requester = self.peers[requester_id]
        if self.recorder.enabled:
            self.recorder.event("request", requester=requester_id,
                                file=file_id, cls=requester.label)

        if self.config.use_file_filtering and self._rejected_by_filter(
                requester_id, file_id):
            if self.registry.is_fake(file_id):
                self.metrics.record_blocked_fake(requester.label)
                if self.recorder.enabled:
                    self.recorder.event("blocked_fake",
                                        requester=requester_id,
                                        file=file_id, cls=requester.label)
            else:
                self.metrics.record_rejected_request(requester.label)
                if self.recorder.enabled:
                    self.recorder.event("request_rejected",
                                        requester=requester_id, file=file_id,
                                        cls=requester.label,
                                        reason="filtered")
            return

        uploader_id = self._choose_uploader(requester_id, file_id)
        if uploader_id is None:
            self.metrics.record_rejected_request(requester.label)
            if self.recorder.enabled:
                self.recorder.event("request_rejected",
                                    requester=requester_id, file=file_id,
                                    cls=requester.label,
                                    reason="no_uploader")
            return
        self._submit_request(uploader_id, requester_id, file_id)

    def _rejected_by_filter(self, requester_id: str, file_id: str) -> bool:
        score = self.mechanism.file_score(requester_id, file_id)
        self.metrics.record_judgement(blind=score is None)
        if score is None:
            return False  # optimistic when blind
        return score < self.config.file_score_threshold

    def _choose_uploader(self, requester_id: str,
                         file_id: str) -> Optional[str]:
        """Pick a serving holder, preferring higher-reputation uploaders."""
        candidates = [
            holder for holder in sorted(self.registry.holders(file_id))
            if holder != requester_id
            and self.peers[holder].online
            and (self.peers[holder].behavior.shares()
                 or self.peers[holder].behavior.wants_fake_copy())
        ]
        if not candidates:
            return None
        scored = [
            (-1.0 if self.mechanism.is_distrusted(requester_id, holder)
             else self.mechanism.reputation(requester_id, holder), holder)
            for holder in candidates
        ]
        best = max(score for score, _ in scored)
        top = [holder for score, holder in scored if score >= best - 1e-12]
        return self.rng.choice(top)

    def _submit_request(self, uploader_id: str, requester_id: str,
                        file_id: str) -> None:
        uploader = self.peers[uploader_id]
        arrival = self.engine.now
        effective = arrival - self._queue_offset(uploader_id, requester_id)
        request = UploadRequest(requester_id=requester_id, file_id=file_id,
                                arrival_time=arrival, effective_time=effective)
        if uploader.has_free_slot:
            self._start_transfer(uploader, request)
        else:
            uploader.queue.append(request)
            uploader.queue.sort(key=lambda r: (r.effective_time, r.arrival_time,
                                               r.requester_id))

    #: Normalised reputation assumed for requesters the uploader has no
    #: information about (newcomers are neither rewarded nor floored).
    NEWCOMER_FACTOR = 0.5

    def _queue_offset(self, uploader_id: str, requester_id: str) -> float:
        if not self.config.use_service_differentiation:
            return 0.0
        normalized, known = self._service_factor(uploader_id, requester_id)
        if not known:
            return 0.0
        return normalized * self.config.max_queue_offset_seconds

    def _service_factor(self, observer_id: str,
                        target_id: str) -> Tuple[float, bool]:
        """(normalised reputation, observer-has-any-information).

        The target's reputation is scaled by the best reputation the
        observer assigns anyone.  When the observer trusts nobody at all the
        mechanism has nothing to differentiate on and ``known`` is False;
        an unknown target under an informed observer gets
        :data:`NEWCOMER_FACTOR`; an explicitly distrusted (blacklisted)
        target gets zero — the paper's "assigned with zero".
        """
        if self.mechanism.is_distrusted(observer_id, target_id):
            return 0.0, True
        best = max((self.mechanism.reputation(observer_id, pid)
                    for pid in self.peers if pid != observer_id),
                   default=0.0)
        if best <= 0:
            return 0.0, False
        value = self.mechanism.reputation(observer_id, target_id)
        if value <= 0:
            return self.NEWCOMER_FACTOR, True
        return min(value / best, 1.0), True

    def _start_transfer(self, uploader: Peer, request: UploadRequest) -> None:
        requester = self.peers.get(request.requester_id)
        if requester is None or not requester.online:
            self._pump_queue(uploader)
            return
        if not self.registry.holds(uploader.peer_id, request.file_id):
            self._pump_queue(uploader)
            return
        uploader.active_uploads += 1
        size = self.registry.size(request.file_id)
        base_bandwidth = uploader.upload_capacity / uploader.upload_slots
        bandwidth = base_bandwidth
        if self.config.use_service_differentiation:
            normalized, known = self._service_factor(uploader.peer_id,
                                                     request.requester_id)
            if known:
                quota = (self.config.min_bandwidth_quota
                         + normalized * (base_bandwidth
                                         - self.config.min_bandwidth_quota))
                bandwidth = min(base_bandwidth,
                                max(quota, self.config.min_bandwidth_quota))
        duration = size / bandwidth
        wait = self.engine.now - request.arrival_time
        self.engine.schedule(duration, self._complete_callback(
            uploader.peer_id, request, wait, bandwidth))

    def _complete_callback(self, uploader_id: str, request: UploadRequest,
                           wait: float, bandwidth: float):
        def _complete(engine: EventEngine) -> None:
            self._on_transfer_complete(uploader_id, request, wait, bandwidth)
        return _complete

    def _on_transfer_complete(self, uploader_id: str, request: UploadRequest,
                              wait: float, bandwidth: float) -> None:
        with self.recorder.request_span("sim.transfer") as span:
            self._handle_transfer_complete(uploader_id, request, wait,
                                           bandwidth, span)

    def _handle_transfer_complete(self, uploader_id: str,
                                  request: UploadRequest, wait: float,
                                  bandwidth: float, span) -> None:
        uploader = self.peers.get(uploader_id)
        if uploader is not None:
            uploader.active_uploads = max(uploader.active_uploads - 1, 0)
            self._pump_queue(uploader)
        requester = self.peers.get(request.requester_id)
        if requester is None:
            return

        file_id = request.file_id
        now = self.engine.now
        size = self.registry.size(file_id)
        is_fake = self.registry.is_fake(file_id)
        # End-to-end request latency (queue wait + transfer) in sim time.
        span.add_cost(now - request.arrival_time)
        span.count("bytes", int(size))

        self.registry.add_copy(request.requester_id, file_id, now)
        if is_fake:
            self.metrics.record_fake_copy(file_id, request.requester_id, now)
        self.metrics.record_download(requester.label, is_fake, size, wait,
                                     bandwidth)
        if self.recorder.enabled:
            self.recorder.event("download", requester=request.requester_id,
                                uploader=uploader_id, file=file_id,
                                cls=requester.label, fake=is_fake,
                                wait=wait, bandwidth=bandwidth, size=size)
            up = self._peer_flows.setdefault(uploader_id, [0.0, 0.0, 0])
            up[0] += size
            if is_fake:
                up[2] += 1
            down = self._peer_flows.setdefault(request.requester_id,
                                               [0.0, 0.0, 0])
            down[1] += size
        if uploader is not None:
            self.metrics.record_bytes_served(uploader.label, size)

        self._download_sources[(request.requester_id, file_id)] = uploader_id
        self.mechanism.record_download(request.requester_id, uploader_id,
                                       file_id, size, now)

        # The requester judges the file only after consuming it.
        delay = self.rng.expovariate(
            1.0 / self.config.mean_consumption_delay_seconds) \
            if self.config.mean_consumption_delay_seconds > 0 else 0.0
        requester_id = request.requester_id

        def _judge(engine: EventEngine) -> None:
            with self.recorder.request_span("sim.judge"):
                peer = self.peers.get(requester_id)
                if peer is not None and self.registry.holds(requester_id,
                                                            file_id):
                    peer.behavior.on_download_complete(self, peer, file_id,
                                                       uploader_id)

        self.engine.schedule(delay, _judge)

    def _pump_queue(self, uploader: Peer) -> None:
        while uploader.has_free_slot and uploader.queue and uploader.online:
            request = uploader.queue.pop(0)
            self._start_transfer(uploader, request)

    # ------------------------------------------------------------------ #
    # Behaviour helpers (called by PeerBehavior hooks)                   #
    # ------------------------------------------------------------------ #

    def peer_votes(self, peer: Peer, file_id: str, vote: float) -> None:
        self._votes[(peer.peer_id, file_id)] = vote
        self.mechanism.record_vote(peer.peer_id, file_id, vote,
                                   self.engine.now)
        source = self._download_sources.get((peer.peer_id, file_id))
        if source is not None:
            self.mechanism.record_upload_outcome(source, vote >= 0.5,
                                                 self.engine.now)

    def peer_ranks(self, peer: Peer, target_id: str, rating: float) -> None:
        if target_id != peer.peer_id and target_id in self.peers:
            self.mechanism.record_rank(peer.peer_id, target_id, rating)

    def peer_blacklists(self, peer: Peer, target_id: str) -> None:
        if target_id == peer.peer_id or target_id not in self.peers:
            return
        self._blacklist_counts[target_id] = (
            self._blacklist_counts.get(target_id, 0) + 1)
        self.mechanism.record_blacklist(peer.peer_id, target_id)

    def peer_deletes_file(self, peer: Peer, file_id: str,
                          fake_detected: bool = False) -> None:
        if not self.registry.holds(peer.peer_id, file_id):
            return
        now = self.engine.now
        self.registry.delete_copy(peer.peer_id, file_id, now)
        self.mechanism.record_deletion(peer.peer_id, file_id, now)
        if self.registry.is_fake(file_id):
            latency = self.metrics.record_fake_removal(file_id, peer.peer_id,
                                                       now)
            if self.recorder.enabled:
                self.recorder.event("fake_removal", peer=peer.peer_id,
                                    file=file_id, latency=latency)

    def known_vote(self, user_id: str, file_id: str) -> Optional[float]:
        """Vote ``user_id`` is known to have cast on ``file_id``, if any."""
        return self._votes.get((user_id, file_id))

    def blacklist_count(self, peer_id: str) -> int:
        return self._blacklist_counts.get(peer_id, 0)

    def is_online(self, peer_id: str) -> bool:
        peer = self.peers.get(peer_id)
        return peer is not None and peer.online

    def whitewash(self, peer: Peer) -> Peer:
        """Retire ``peer``'s identity and rejoin under a fresh one."""
        now = self.engine.now
        peer.online = False
        self.mechanism.on_peer_offline(peer.peer_id, now)
        self.registry.drop_peer(peer.peer_id, now)
        fresh_id = f"{peer.peer_id}-w{next(self._whitewash_counter)}"
        fresh = self._add_peer(fresh_id, type(peer.behavior)())
        fresh.previous_identities = peer.previous_identities + [peer.peer_id]
        fresh.online = True
        fresh.joined_at = now
        self.mechanism.on_peer_online(fresh_id, now)
        self._blacklist_counts.pop(fresh_id, None)
        if self.recorder.enabled:
            self.recorder.event("whitewash", retired=peer.peer_id,
                                fresh=fresh_id)
        return fresh

    # ------------------------------------------------------------------ #
    # Maintenance                                                        #
    # ------------------------------------------------------------------ #

    def _on_maintenance(self, engine: EventEngine) -> None:
        if self.recorder.enabled:
            self.recorder.event(
                "maintenance",
                online=sum(1 for p in self.peers.values() if p.online))
        with self.recorder.span("sim.maintenance"):
            self._flush_retention(engine.now)
            for peer_id in sorted(self.peers):
                peer = self.peers[peer_id]
                if peer.online:
                    peer.behavior.on_periodic(self, peer)
            self.mechanism.refresh()
            if self.recorder.enabled:
                self._emit_refresh_snapshot()
            if self.durability is not None:
                # Safe point: every journalled record's mutation has
                # applied, so a snapshot's last_seq is truthful here.
                self.durability.sync()
                self.durability.maybe_snapshot()
        engine.schedule(self.config.maintenance_interval_seconds,
                        self._on_maintenance)

    #: Normalised-reputation thresholds for the incentive service classes
    #: sampled into ``reputation_snapshot`` events (0 = starved .. 3 = full
    #: service); mirrors the Section 3.4 bandwidth-quota interpolation.
    SERVICE_CLASS_THRESHOLDS = (0.05, 0.25, 0.5)

    @classmethod
    def service_class(cls, normalized_reputation: float) -> int:
        """Map a [0, 1] normalised reputation to a service class 0..3."""
        level = 0
        for threshold in cls.SERVICE_CLASS_THRESHOLDS:
            if normalized_reputation >= threshold:
                level += 1
        return level

    def _emit_refresh_snapshot(self) -> None:
        """Per-peer timeline samples + strongest trust edges, one refresh.

        Emitted only under a live recorder, after :meth:`ReputationMechanism
        .refresh`, reading matrices through the mechanism's zero-copy view
        (:meth:`~repro.core.reputation_system.RefreshView`); the fault-free
        NULL_RECORDER path never gets here.
        """
        scores = self.mechanism.global_scores()
        max_score = max(scores.values()) if scores else 0.0
        for peer_id in sorted(self.peers):
            peer = self.peers[peer_id]
            score = scores.get(peer_id, 0.0)
            norm = score / max_score if max_score > 0 else 0.0
            flows = self._peer_flows.get(peer_id, (0.0, 0.0, 0))
            self.recorder.event(
                "reputation_snapshot", peer=peer_id, cls=peer.label,
                online=peer.online, score=score, norm=norm,
                service_class=self.service_class(norm),
                bytes_up=flows[0], bytes_down=flows[1],
                fakes_served=int(flows[2]))
        for src, dst, value in self.mechanism.trust_edges():
            self.recorder.event("trust_edge", src=src, dst=dst, value=value)

    def _flush_retention(self, now: float) -> None:
        for holding in self.registry.current_holdings():
            self.mechanism.record_retention(
                holding.peer_id, holding.file_id, holding.retention(now), now)

    def _final_retention_flush(self) -> None:
        self._flush_retention(self.engine.now)
        self.mechanism.refresh()

"""Rank-comparison utilities for reputation vectors.

Benchmarks compare mechanisms by how they *order* users (who gets served
first) rather than by raw scores, so Kendall's tau and top-k overlap are the
right tools.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..obs.stats import mean

__all__ = ["kendall_tau", "top_k_overlap", "rank_of", "separation",
           "jain_fairness"]


def kendall_tau(scores_a: Dict[str, float],
                scores_b: Dict[str, float]) -> float:
    """Kendall tau-a over the keys present in both score maps.

    +1 = identical ordering, -1 = reversed; ties count as discordant-free
    (tau-a).  Requires at least two common keys.
    """
    common = sorted(set(scores_a) & set(scores_b))
    if len(common) < 2:
        raise ValueError("need at least two common keys for Kendall tau")
    concordant = discordant = 0
    for index, key_i in enumerate(common):
        for key_j in common[index + 1:]:
            delta_a = scores_a[key_i] - scores_a[key_j]
            delta_b = scores_b[key_i] - scores_b[key_j]
            product = delta_a * delta_b
            if product > 0:
                concordant += 1
            elif product < 0:
                discordant += 1
    pairs = len(common) * (len(common) - 1) / 2
    return (concordant - discordant) / pairs


def top_k_overlap(scores_a: Dict[str, float], scores_b: Dict[str, float],
                  k: int) -> float:
    """|top-k(a) ∩ top-k(b)| / k (ties broken by key for determinism)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    top_a = {key for key, _ in sorted(scores_a.items(),
                                      key=lambda kv: (-kv[1], kv[0]))[:k]}
    top_b = {key for key, _ in sorted(scores_b.items(),
                                      key=lambda kv: (-kv[1], kv[0]))[:k]}
    return len(top_a & top_b) / k


def rank_of(scores: Dict[str, float], target: str) -> int:
    """1-based rank of ``target`` (1 = highest score)."""
    if target not in scores:
        raise KeyError(target)
    ordered = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
    for position, (key, _) in enumerate(ordered, start=1):
        if key == target:
            return position
    raise AssertionError("unreachable")


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index: (Σx)² / (n·Σx²), in (0, 1].

    1 = perfectly equal allocation; 1/n = one user gets everything.  Used
    to quantify how *unequal* service differentiation makes the bandwidth
    allocation (by design it should lower fairness across behaviour
    classes while staying fair within the honest class).
    """
    data = [v for v in values]
    if not data:
        raise ValueError("values must be non-empty")
    if any(v < 0 for v in data):
        raise ValueError("values must be non-negative")
    total = sum(data)
    if total == 0:
        return 1.0  # nobody gets anything: trivially equal
    squares = sum(v * v for v in data)
    return (total * total) / (len(data) * squares)


def separation(scores: Dict[str, float], good: Sequence[str],
               bad: Sequence[str]) -> float:
    """Mean score of ``good`` minus mean score of ``bad`` members.

    Positive separation means the mechanism ranks the good population above
    the bad one on average; benchmarks assert its sign and magnitude.
    """
    good_scores = [scores.get(user, 0.0) for user in good]
    bad_scores = [scores.get(user, 0.0) for user in bad]
    if not good_scores or not bad_scores:
        raise ValueError("both populations must be non-empty")
    return mean(good_scores) - mean(bad_scores)

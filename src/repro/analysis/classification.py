"""Binary-classification scoring for fake-file detection.

Benchmarks score a mechanism's file judgements against the catalog's ground
truth.  Convention: the *positive* class is "fake" (the thing we detect), so
precision = flagged files that were actually fake, recall = fakes caught.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["ConfusionMatrix", "score_judgements", "roc_points", "auc"]


@dataclass(frozen=True)
class ConfusionMatrix:
    """Counts for fake-detection (positive class = fake)."""

    true_positives: int = 0
    false_positives: int = 0
    true_negatives: int = 0
    false_negatives: int = 0

    @property
    def total(self) -> int:
        return (self.true_positives + self.false_positives
                + self.true_negatives + self.false_negatives)

    @property
    def precision(self) -> float:
        flagged = self.true_positives + self.false_positives
        return self.true_positives / flagged if flagged else 0.0

    @property
    def recall(self) -> float:
        fakes = self.true_positives + self.false_negatives
        return self.true_positives / fakes if fakes else 0.0

    @property
    def false_positive_rate(self) -> float:
        reals = self.false_positives + self.true_negatives
        return self.false_positives / reals if reals else 0.0

    @property
    def accuracy(self) -> float:
        return ((self.true_positives + self.true_negatives) / self.total
                if self.total else 0.0)

    @property
    def f1(self) -> float:
        denominator = self.precision + self.recall
        if denominator == 0:
            return 0.0
        return 2.0 * self.precision * self.recall / denominator


def score_judgements(flagged_fake: Dict[str, bool],
                     ground_truth: Dict[str, bool]) -> ConfusionMatrix:
    """Score per-file fake flags against ground truth.

    ``flagged_fake[file] = True`` means the mechanism called the file fake;
    ``ground_truth[file] = True`` means it really is.  Files missing from
    ``flagged_fake`` are treated as "called real" (the optimistic default).
    """
    tp = fp = tn = fn = 0
    for file_id, is_fake in ground_truth.items():
        called_fake = flagged_fake.get(file_id, False)
        if is_fake and called_fake:
            tp += 1
        elif is_fake and not called_fake:
            fn += 1
        elif not is_fake and called_fake:
            fp += 1
        else:
            tn += 1
    return ConfusionMatrix(true_positives=tp, false_positives=fp,
                           true_negatives=tn, false_negatives=fn)


def roc_points(scores: Dict[str, float],
               ground_truth: Dict[str, bool]) -> List[Tuple[float, float]]:
    """(FPR, TPR) pairs sweeping the decision threshold over all scores.

    ``scores`` maps file -> mechanism score where *lower* means *more
    likely fake* (a file is flagged when its score falls below the
    threshold).  Files without a score are skipped.
    """
    scored = [(scores[f], ground_truth[f]) for f in scores
              if f in ground_truth]
    if not scored:
        return []
    thresholds = sorted({score for score, _ in scored})
    points: List[Tuple[float, float]] = [(0.0, 0.0)]
    positives = sum(1 for _, is_fake in scored if is_fake)
    negatives = len(scored) - positives
    for threshold in thresholds:
        tp = sum(1 for score, is_fake in scored
                 if is_fake and score <= threshold)
        fp = sum(1 for score, is_fake in scored
                 if not is_fake and score <= threshold)
        tpr = tp / positives if positives else 0.0
        fpr = fp / negatives if negatives else 0.0
        points.append((fpr, tpr))
    points.append((1.0, 1.0))
    return sorted(set(points))


def auc(points: Sequence[Tuple[float, float]]) -> float:
    """Trapezoidal area under a sorted (FPR, TPR) curve."""
    if len(points) < 2:
        return 0.0
    area = 0.0
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        area += (x1 - x0) * (y0 + y1) / 2.0
    return area

"""Analysis: coverage, classification, ranking and report rendering."""

from .classification import ConfusionMatrix, auc, roc_points, score_judgements
from .convergence import (ordering_convergence, reach_by_step,
                          steps_to_converge)
from .coverage import (DimensionDensities, dimension_densities,
                       matrix_edge_coverage, tit_for_tat_coverage)
from .ranking import (jain_fairness, kendall_tau, rank_of, separation,
                      top_k_overlap)
from .reporting import (format_value, render_ascii_chart,
                        render_series, render_table)
from .statistics import (ReplicateSummary, bootstrap_mean_ci, replicate,
                         summarize_replicates)

__all__ = [
    "ConfusionMatrix",
    "auc",
    "roc_points",
    "score_judgements",
    "ordering_convergence",
    "reach_by_step",
    "steps_to_converge",
    "DimensionDensities",
    "dimension_densities",
    "matrix_edge_coverage",
    "tit_for_tat_coverage",
    "jain_fairness",
    "kendall_tau",
    "rank_of",
    "separation",
    "top_k_overlap",
    "format_value",
    "render_ascii_chart",
    "render_series",
    "render_table",
    "ReplicateSummary",
    "bootstrap_mean_ci",
    "replicate",
    "summarize_replicates",
]

"""Convergence analysis for multi-trust propagation.

How many steps n does ``RM = TM^n`` need before more propagation stops
changing anything that matters?  Two lenses:

* :func:`reach_by_step` — the coverage lens: fraction of ordered pairs with
  a non-zero entry at each power (the quantity the A2 ablation sweeps);
* :func:`ordering_convergence` — the ranking lens: Kendall tau between the
  global reputation orderings induced by successive powers, with
  :func:`steps_to_converge` finding the first step whose ordering is
  already (nearly) final.

Both are deterministic given the matrix.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.matrix import TrustMatrix
from ..core.multitrust import global_reputation_vector

__all__ = ["reach_by_step", "ordering_convergence", "steps_to_converge"]

#: Score differences below this are ties (absorbs float noise from the
#: repeated matrix products).
_TIE_EPSILON = 1e-9


def _ordering_agreement(scores_a: Dict[str, float],
                        scores_b: Dict[str, float]) -> float:
    """Tie-aware pairwise ordering agreement in [-1, 1].

    A pair agrees when both vectors order it the same way *or* both tie it;
    it disagrees when the strict orders oppose, and half-disagrees when one
    vector ties what the other separates.  Unlike Kendall tau-a, two fully
    tied vectors score 1.0 — the right semantics for "did another
    propagation step change the ordering?".
    """
    keys = sorted(set(scores_a) & set(scores_b))
    if len(keys) < 2:
        raise ValueError("need at least two common keys")
    total = agreement = 0.0
    for index, key_i in enumerate(keys):
        for key_j in keys[index + 1:]:
            total += 1
            delta_a = scores_a[key_i] - scores_a[key_j]
            delta_b = scores_b[key_i] - scores_b[key_j]
            tied_a = abs(delta_a) < _TIE_EPSILON
            tied_b = abs(delta_b) < _TIE_EPSILON
            if tied_a and tied_b:
                agreement += 1
            elif tied_a or tied_b:
                agreement += 0.5
            elif delta_a * delta_b > 0:
                agreement += 1
    return 2.0 * (agreement / total) - 1.0


def _powers(one_step: TrustMatrix, max_steps: int) -> List[TrustMatrix]:
    if max_steps < 1:
        raise ValueError(f"max_steps must be >= 1, got {max_steps}")
    powers = [one_step]
    for _ in range(1, max_steps):
        powers.append(powers[-1].matmul(one_step))
    return powers


def reach_by_step(one_step: TrustMatrix, max_steps: int = 4,
                  observers: Optional[Sequence[str]] = None
                  ) -> List[float]:
    """Fraction of ordered (observer, target) pairs reachable at each power.

    ``observers`` fixes the pair universe (default: all node ids of the
    one-step matrix).  Entry ``i`` of the result corresponds to ``n=i+1``.
    """
    ids = list(observers) if observers is not None else one_step.node_ids()
    if len(ids) < 2:
        raise ValueError("need at least two nodes")
    total_pairs = len(ids) * (len(ids) - 1)
    fractions = []
    for matrix in _powers(one_step, max_steps):
        reached = sum(
            1
            for observer in ids
            for target, value in matrix.row(observer).items()
            if target != observer and target in set(ids) and value > 0.0
        )
        fractions.append(reached / total_pairs)
    return fractions


def ordering_convergence(one_step: TrustMatrix, max_steps: int = 5
                         ) -> List[float]:
    """Kendall tau between global orderings of successive powers.

    Element ``i`` compares the orderings induced by ``TM^(i+1)`` and
    ``TM^(i+2)``; values near 1.0 mean further propagation no longer
    reorders anyone.  Requires at least two steps.
    """
    if max_steps < 2:
        raise ValueError(f"max_steps must be >= 2, got {max_steps}")
    powers = _powers(one_step, max_steps)
    ids = one_step.node_ids()
    vectors = []
    for matrix in powers:
        scores = global_reputation_vector(matrix, observers=ids)
        # Fill missing targets with zero so orderings share a key set.
        vectors.append({node_id: scores.get(node_id, 0.0)
                        for node_id in ids})
    taus = []
    for earlier, later in zip(vectors, vectors[1:]):
        taus.append(_ordering_agreement(earlier, later))
    return taus


def steps_to_converge(one_step: TrustMatrix, max_steps: int = 6,
                      tolerance: float = 0.99) -> Optional[int]:
    """Smallest n whose ordering already agrees with n+1 at >= tolerance.

    Returns None when no step within ``max_steps`` reaches the tolerance.
    """
    if not 0.0 < tolerance <= 1.0:
        raise ValueError(f"tolerance must be in (0,1], got {tolerance}")
    taus = ordering_convergence(one_step, max_steps)
    for step, tau in enumerate(taus, start=1):
        if tau >= tolerance:
            return step
    return None

"""Request-coverage analysis over traces (the paper's central metric).

Coverage of a mechanism = the fraction of download requests for which the
mechanism has *any* direct-trust information linking uploader and
downloader.  Figure 1 measures this for the file dimension; benchmark C1
measures the Tit-for-Tat variant (prior private history between the exact
pair); C5 compares per-dimension and integrated matrix densities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from ..core.matrix import TrustMatrix
from ..traces.records import DownloadTrace

__all__ = ["tit_for_tat_coverage", "matrix_edge_coverage",
           "dimension_densities"]


def tit_for_tat_coverage(trace: DownloadTrace) -> float:
    """Fraction of uploads where the uploader had prior private history.

    Replays chronologically: a request is covered iff the uploader has
    previously *downloaded* from the requester (so Tit-for-Tat reciprocity
    has something to act on).  This reproduces the Section 2 claim that a
    month of history covers only ~2% of uploads.
    """
    if not len(trace) :
        return 0.0
    downloaded_from: Dict[str, Set[str]] = {}
    covered = 0
    for record in trace:
        # The uploader is deciding about the downloader: covered iff the
        # uploader previously downloaded from this requester.
        if record.downloader_id in downloaded_from.get(record.uploader_id, ()):
            covered += 1
        downloaded_from.setdefault(record.downloader_id, set()).add(
            record.uploader_id)
    return covered / len(trace)


def matrix_edge_coverage(trace: DownloadTrace, matrix: TrustMatrix) -> float:
    """Fraction of trace requests with a matrix edge uploader -> downloader."""
    if not len(trace):
        return 0.0
    covered = sum(1 for record in trace
                  if matrix.has_edge(record.uploader_id, record.downloader_id))
    return covered / len(trace)


@dataclass(frozen=True)
class DimensionDensities:
    """Edge densities of the per-dimension and integrated matrices (C5)."""

    file_density: float
    volume_density: float
    user_density: float
    integrated_density: float

    def integration_gain(self) -> float:
        """Integrated density over the best single dimension (>= 1)."""
        best = max(self.file_density, self.volume_density, self.user_density)
        if best == 0:
            return float("inf") if self.integrated_density > 0 else 1.0
        return self.integrated_density / best


def dimension_densities(file_matrix: TrustMatrix, volume_matrix: TrustMatrix,
                        user_matrix: TrustMatrix,
                        integrated: TrustMatrix,
                        population: Optional[int] = None
                        ) -> DimensionDensities:
    """Compute :class:`DimensionDensities` over a fixed universe.

    ``population`` fixes the node universe size; by default the union of
    ids across all four matrices is used so densities are comparable.
    """
    universe = sorted(set(file_matrix.node_ids())
                      | set(volume_matrix.node_ids())
                      | set(user_matrix.node_ids())
                      | set(integrated.node_ids()))
    if population is not None and population > len(universe):
        universe = universe + [f"__pad-{i}" for i in
                               range(population - len(universe))]
    return DimensionDensities(
        file_density=file_matrix.density(universe),
        volume_density=volume_matrix.density(universe),
        user_density=user_matrix.density(universe),
        integrated_density=integrated.density(universe),
    )

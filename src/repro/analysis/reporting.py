"""Fixed-width table and ASCII-series rendering for benchmark output.

Every benchmark prints the rows/series the paper reports through these
helpers, so ``pytest benchmarks/ --benchmark-only -s`` regenerates the
evaluation as readable text.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

__all__ = ["render_table", "render_series", "render_ascii_chart",
           "format_value"]

Cell = Union[str, float, int, None]


def format_value(value: Cell, precision: int = 3) -> str:
    """Human-friendly cell formatting (floats rounded, None as '-')."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]],
                 title: Optional[str] = None, precision: int = 3) -> str:
    """Render a fixed-width text table."""
    formatted = [[format_value(cell, precision) for cell in row]
                 for row in rows]
    widths = [len(header) for header in headers]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width)
                         for cell, width in zip(cells, widths))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in formatted)
    return "\n".join(parts)


def render_series(series: Dict[str, Sequence[float]],
                  x_labels: Optional[Sequence[Cell]] = None,
                  title: Optional[str] = None,
                  x_header: str = "x", precision: int = 3) -> str:
    """Render several named series against a shared x axis as a table.

    ``series`` maps series name -> y values; all series must share a
    length, which must match ``x_labels`` when given.
    """
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series have differing lengths: {sorted(lengths)}")
    (length,) = lengths
    if x_labels is None:
        x_labels = list(range(length))
    if len(x_labels) != length:
        raise ValueError("x_labels length does not match the series")

    headers = [x_header] + list(series)
    rows = [[x_labels[index]] + [series[name][index] for name in series]
            for index in range(length)]
    return render_table(headers, rows, title=title, precision=precision)


_CHART_MARKS = "ox*+#@%&"


def render_ascii_chart(series: Dict[str, Sequence[float]],
                       height: int = 12,
                       y_min: Optional[float] = None,
                       y_max: Optional[float] = None,
                       title: Optional[str] = None) -> str:
    """Render named series as a terminal line chart (one column per point).

    Each series gets a mark character; overlapping points show the later
    series' mark.  The y axis is labelled at top/bottom; the legend maps
    marks to names.  Useful for eyeballing the Figure 1 curves in a
    terminal-only environment.
    """
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series have differing lengths: {sorted(lengths)}")
    (length,) = lengths
    if length == 0:
        raise ValueError("series must be non-empty")
    if height < 2:
        raise ValueError("height must be >= 2")
    if len(series) > len(_CHART_MARKS):
        raise ValueError(f"at most {len(_CHART_MARKS)} series supported")

    all_values = [v for values in series.values() for v in values]
    low = y_min if y_min is not None else min(all_values)
    high = y_max if y_max is not None else max(all_values)
    if high <= low:
        high = low + 1.0

    grid = [[" "] * length for _ in range(height)]
    marks = {}
    for mark, (name, values) in zip(_CHART_MARKS, series.items()):
        marks[name] = mark
        for column, value in enumerate(values):
            clamped = min(max(value, low), high)
            row = round((clamped - low) / (high - low) * (height - 1))
            grid[height - 1 - row][column] = mark

    label_width = max(len(f"{high:.2f}"), len(f"{low:.2f}"))
    lines: List[str] = []
    if title:
        lines.append(title)
    for index, row in enumerate(grid):
        if index == 0:
            label = f"{high:.2f}".rjust(label_width)
        elif index == height - 1:
            label = f"{low:.2f}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}|")
    legend = "  ".join(f"{mark}={name}" for name, mark in marks.items())
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)

"""Replication statistics: bootstrap confidence intervals and multi-seed
experiment runs.

Single simulation runs are noisy; claims like "fake fraction drops from 52%
to 20%" deserve error bars.  :func:`replicate` runs a seeded experiment
across several seeds, and :func:`bootstrap_mean_ci` turns the replicate
values into a confidence interval without distributional assumptions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..obs.stats import mean as _mean

__all__ = ["bootstrap_mean_ci", "replicate", "ReplicateSummary",
           "summarize_replicates"]


def bootstrap_mean_ci(values: Sequence[float], confidence: float = 0.95,
                      resamples: int = 2000, seed: int = 0
                      ) -> Tuple[float, float, float]:
    """(mean, low, high): percentile-bootstrap CI for the mean.

    Deterministic for a fixed seed.  With a single value the interval
    collapses to the point.
    """
    if not values:
        raise ValueError("values must be non-empty")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    if resamples < 1:
        raise ValueError("resamples must be >= 1")
    data = list(values)
    mean = _mean(data)
    if len(data) == 1:
        return mean, mean, mean
    rng = random.Random(seed)
    means = []
    for _ in range(resamples):
        sample = [data[rng.randrange(len(data))] for _ in data]
        means.append(_mean(sample))
    means.sort()
    alpha = (1.0 - confidence) / 2.0
    low_index = int(alpha * resamples)
    high_index = min(int((1.0 - alpha) * resamples), resamples - 1)
    return mean, means[low_index], means[high_index]


def replicate(experiment: Callable[[int], Dict[str, float]],
              seeds: Sequence[int]) -> Dict[str, List[float]]:
    """Run ``experiment(seed)`` for every seed; collect metric lists.

    ``experiment`` returns named scalar metrics; the result maps each
    metric name to its per-seed values (in seed order).  All runs must
    report the same metric names.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    collected: Dict[str, List[float]] = {}
    expected_keys = None
    for seed in seeds:
        metrics = experiment(seed)
        if expected_keys is None:
            expected_keys = set(metrics)
        elif set(metrics) != expected_keys:
            raise ValueError(
                f"seed {seed} reported metrics {sorted(metrics)}, "
                f"expected {sorted(expected_keys)}")
        for name, value in metrics.items():
            collected.setdefault(name, []).append(float(value))
    return collected


@dataclass(frozen=True)
class ReplicateSummary:
    """Mean and bootstrap CI of one metric across replicates."""

    metric: str
    mean: float
    ci_low: float
    ci_high: float
    n: int

    def row(self) -> List[object]:
        return [self.metric, self.mean, self.ci_low, self.ci_high, self.n]


def summarize_replicates(collected: Dict[str, List[float]],
                         confidence: float = 0.95,
                         seed: int = 0) -> List[ReplicateSummary]:
    """Bootstrap-summarise every metric from :func:`replicate`."""
    summaries = []
    for metric in sorted(collected):
        values = collected[metric]
        mean, low, high = bootstrap_mean_ci(values, confidence=confidence,
                                            seed=seed)
        summaries.append(ReplicateSummary(metric=metric, mean=mean,
                                          ci_low=low, ci_high=high,
                                          n=len(values)))
    return summaries

"""repro: reproduction of "A Multi-dimensional Reputation System Combined
with Trust and Incentive Mechanisms in P2P File Sharing Systems"
(Yang, Feng, Dai, Zhang — ICDCS 2007).

Subpackages
-----------
``repro.core``
    The paper's contribution: multi-dimensional direct trust (file /
    download-volume / user), multi-trust reputation (RM = TM^n), Eq. 9
    file-reputation fake detection, and the trust-based incentive mechanism.
``repro.traces``
    Maze-like synthetic download traces and the Figure 1 coverage replay.
``repro.simulator``
    Discrete-event P2P file-sharing simulator with behaviour-typed peers
    (honest, free-rider, polluter, colluder, forger, whitewasher).
``repro.dht``
    Chord-style DHT substrate implementing the Section 4 deployment:
    evaluation publication, retrieval, signatures and proactive examination.
``repro.baselines``
    Tit-for-Tat, EigenTrust, Lian et al.'s hybrid multi-trust, LIP and
    Credence baselines behind a common interface.
``repro.analysis``
    Coverage, classification and ranking analysis plus report rendering.
"""

__version__ = "1.0.0"

__all__ = ["core", "traces", "simulator", "dht", "baselines", "analysis",
           "__version__"]

"""Command-line interface: ``python -m repro <command>``.

Five commands cover the workflows a downstream user actually runs:

* ``gen-trace``   — generate a synthetic Maze-like download trace to a file;
* ``trace-stats`` — summarise a trace file (Zipf fit, Gini, fake fraction);
* ``coverage``    — regenerate the Figure 1 sweep for chosen k values;
* ``simulate``    — run the file-sharing simulator under any mechanism and
  print the per-class outcome table;
* ``chaos``       — sweep message-loss × churn over the DHT evaluation
  overlay and report availability, hop inflation and ranking stability
  (the Section 4.3 resilience claim under an actually hostile network).

All commands are seeded and print fixed-width tables to stdout.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import render_table
from .baselines import ALL_MECHANISMS, MultiDimensionalMechanism
from .core import ReputationConfig
from .simulator import (SCENARIOS, FileSharingSimulation, ScenarioSpec,
                        SimulationConfig, get_scenario, run_chaos_sweep)
from .traces import (CoverageReplayer, MazeTraceGenerator, TraceParameters,
                     compute_statistics, read_csv, read_jsonl, write_csv,
                     write_jsonl)

__all__ = ["main", "build_parser"]

_DAY = 24 * 3600.0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-dimensional P2P reputation system (ICDCS 2007 "
                    "reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    gen = commands.add_parser("gen-trace",
                              help="generate a synthetic Maze-like trace")
    gen.add_argument("output", help="output path (.jsonl or .csv)")
    gen.add_argument("--users", type=int, default=500)
    gen.add_argument("--files", type=int, default=600)
    gen.add_argument("--actions", type=int, default=5000)
    gen.add_argument("--days", type=float, default=30.0)
    gen.add_argument("--library", type=int, default=20,
                     help="pre-existing files per user")
    gen.add_argument("--fake-ratio", type=float, default=0.2)
    gen.add_argument("--seed", type=int, default=7)

    stats = commands.add_parser("trace-stats",
                                help="summarise a trace file")
    stats.add_argument("trace", help="trace path (.jsonl or .csv)")

    coverage = commands.add_parser(
        "coverage", help="Figure 1: request coverage vs evaluation coverage")
    coverage.add_argument("--users", type=int, default=500)
    coverage.add_argument("--files", type=int, default=600)
    coverage.add_argument("--actions", type=int, default=5000)
    coverage.add_argument("--days", type=float, default=30.0)
    coverage.add_argument("--library", type=int, default=20)
    coverage.add_argument("--seed", type=int, default=7)
    coverage.add_argument("--k", type=float, nargs="+",
                          default=[0.05, 0.2, 1.0],
                          help="evaluation-coverage levels (fractions)")

    simulate = commands.add_parser(
        "simulate", help="run the file-sharing simulator")
    simulate.add_argument("--mechanism", choices=sorted(ALL_MECHANISMS),
                          default="multidimensional")
    simulate.add_argument("--scenario", choices=sorted(SCENARIOS),
                          default=None,
                          help="use a named preset scenario (overrides the "
                               "population/catalog flags)")
    simulate.add_argument("--honest", type=int, default=30)
    simulate.add_argument("--free-riders", type=int, default=5)
    simulate.add_argument("--polluters", type=int, default=5)
    simulate.add_argument("--colluders", type=int, default=0)
    simulate.add_argument("--catalog", type=int, default=120,
                          help="number of files")
    simulate.add_argument("--fake-ratio", type=float, default=0.25)
    simulate.add_argument("--days", type=float, default=2.0)
    simulate.add_argument("--request-rate", type=float, default=0.02)
    simulate.add_argument("--seed", type=int, default=42)
    simulate.add_argument("--no-filtering", action="store_true",
                          help="disable Eq. 9 pre-download filtering")
    simulate.add_argument("--no-differentiation", action="store_true",
                          help="disable Section 3.4 service differentiation")

    chaos = commands.add_parser(
        "chaos", help="fault-injection sweep: message loss x churn over "
                      "the DHT evaluation overlay")
    chaos.add_argument("--loss", type=float, nargs="+",
                       default=[0.0, 0.05, 0.1],
                       help="message-loss probabilities to sweep")
    chaos.add_argument("--churn", type=float, nargs="+",
                       default=[0.0, 0.3],
                       help="per-round churn probabilities to sweep")
    chaos.add_argument("--peers", type=int, default=24)
    chaos.add_argument("--files", type=int, default=40)
    chaos.add_argument("--rounds", type=int, default=30)
    chaos.add_argument("--replication", type=int, default=3)
    chaos.add_argument("--seed", type=int, default=11)
    return parser


def _read_trace(path: str):
    if path.endswith(".csv"):
        return read_csv(path)
    return read_jsonl(path)


def _cmd_gen_trace(args: argparse.Namespace) -> int:
    parameters = TraceParameters(
        num_users=args.users, num_files=args.files,
        num_actions=args.actions, trace_days=args.days,
        library_size=args.library, fake_ratio=args.fake_ratio,
        seed=args.seed)
    generated = MazeTraceGenerator(parameters).generate()
    if args.output.endswith(".csv"):
        write_csv(generated.trace, args.output)
    else:
        write_jsonl(generated.trace, args.output)
    print(f"wrote {len(generated.trace)} download records to {args.output}")
    return 0


def _cmd_trace_stats(args: argparse.Namespace) -> int:
    trace = _read_trace(args.trace)
    if not len(trace):
        print("trace is empty", file=sys.stderr)
        return 1
    statistics = compute_statistics(trace)
    rows = [
        ["records", statistics.num_records],
        ["users", statistics.num_users],
        ["files", statistics.num_files],
        ["duration (days)", round(statistics.duration_days, 1)],
        ["popularity Zipf exponent",
         round(statistics.popularity_zipf_exponent, 3)],
        ["downloader activity Gini",
         round(statistics.downloader_activity_gini, 3)],
        ["uploader activity Gini",
         round(statistics.uploader_activity_gini, 3)],
        ["fake download fraction",
         round(statistics.fake_download_fraction, 3)],
        ["median file distinct days", statistics.median_file_distinct_days],
    ]
    print(render_table(["statistic", "value"], rows,
                       title=f"Trace statistics: {args.trace}"))
    return 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    for k in args.k:
        if not 0.0 <= k <= 1.0:
            print(f"coverage level {k} outside [0, 1]", file=sys.stderr)
            return 1
    parameters = TraceParameters(
        num_users=args.users, num_files=args.files,
        num_actions=args.actions, trace_days=args.days,
        library_size=args.library, seed=args.seed)
    generated = MazeTraceGenerator(parameters).generate()
    rows = []
    for k in args.k:
        series = CoverageReplayer(generated, k, seed=args.seed + 1).run()
        rows.append([f"{k:.0%}", series.overall, series.steady_state()])
    print(render_table(
        ["evaluation coverage", "request coverage", "steady-state"], rows,
        title=(f"Figure 1 sweep: {len(generated.trace)} downloads, "
               f"{args.users} users, {args.days:.0f} days")))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.scenario is not None:
        preset = get_scenario(args.scenario, seed=args.seed)
        config = SimulationConfig(
            scenario=preset.scenario,
            duration_seconds=preset.duration_seconds,
            num_files=preset.num_files,
            fake_ratio=preset.fake_ratio,
            request_rate=preset.request_rate,
            seed=preset.seed,
            churn=preset.churn,
            use_file_filtering=not args.no_filtering,
            use_service_differentiation=not args.no_differentiation,
        )
        duration = preset.duration_seconds
    else:
        duration = args.days * _DAY
        config = SimulationConfig(
            scenario=ScenarioSpec(honest=args.honest,
                                  free_riders=args.free_riders,
                                  polluters=args.polluters,
                                  colluders=args.colluders),
            duration_seconds=duration,
            num_files=args.catalog,
            fake_ratio=args.fake_ratio,
            request_rate=args.request_rate,
            seed=args.seed,
            use_file_filtering=not args.no_filtering,
            use_service_differentiation=not args.no_differentiation,
        )
    if args.mechanism == "multidimensional":
        mechanism = MultiDimensionalMechanism(ReputationConfig(
            retention_saturation_seconds=duration / 3))
    else:
        mechanism = ALL_MECHANISMS[args.mechanism]()
    metrics = FileSharingSimulation(config, mechanism).run()

    rows = []
    for label in metrics.class_labels():
        stats = metrics.stats_for(label)
        rows.append([label, stats.total_downloads,
                     stats.fake_fraction, stats.fakes_blocked,
                     stats.mean_wait, stats.mean_bandwidth / 1024.0])
    scenario_note = (f"scenario={args.scenario}, "
                     if args.scenario is not None else "")
    print(render_table(
        ["class", "downloads", "fake fraction", "fakes blocked",
         "mean wait (s)", "bandwidth (KB/s)"], rows,
        title=(f"Simulation: {scenario_note}mechanism={args.mechanism}, "
               f"{duration / _DAY:.1f} days, seed={args.seed}")))
    print(f"\noverall fake fraction: {metrics.overall_fake_fraction:.3f}")
    print(f"requests: {metrics.total_requests}, blind judgements: "
          f"{metrics.blind_judgements}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    for rate in args.loss:
        if not 0.0 <= rate < 1.0:
            print(f"loss rate {rate} outside [0, 1)", file=sys.stderr)
            return 1
    for rate in args.churn:
        if not 0.0 <= rate <= 1.0:
            print(f"churn rate {rate} outside [0, 1]", file=sys.stderr)
            return 1
    results = run_chaos_sweep(
        list(args.loss), list(args.churn), peers=args.peers,
        files=args.files, rounds=args.rounds, seed=args.seed,
        replication=args.replication)
    rows = []
    for result in results:
        rows.append([
            f"{result.loss_rate:.0%}",
            f"{result.churn_rate:.0%}",
            round(result.availability, 3),
            round(result.mean_hops, 2),
            round(result.hop_ratio_vs_baseline, 2),
            round(result.kendall_tau_vs_baseline, 3),
            result.drops,
            result.retries,
            result.repairs,
        ])
    print(render_table(
        ["loss", "churn", "availability", "mean hops", "hop ratio",
         "kendall tau", "drops", "retries", "repairs"], rows,
        title=(f"Chaos sweep: {args.peers} peers, {args.files} files, "
               f"{args.rounds} rounds, r={args.replication}, "
               f"seed={args.seed}")))
    worst = min(result.availability for result in results)
    print(f"\nworst-cell availability: {worst:.3f}")
    return 0


_COMMANDS = {
    "gen-trace": _cmd_gen_trace,
    "trace-stats": _cmd_trace_stats,
    "coverage": _cmd_coverage,
    "simulate": _cmd_simulate,
    "chaos": _cmd_chaos,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

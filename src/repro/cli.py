"""Command-line interface: ``python -m repro <command>``.

Eighteen commands cover the workflows a downstream user actually runs:

* ``gen-trace``   — generate a synthetic Maze-like download trace to a file;
* ``trace-stats`` — summarise a trace file (Zipf fit, Gini, fake fraction);
* ``coverage``    — regenerate the Figure 1 sweep for chosen k values;
* ``simulate``    — run the file-sharing simulator under any mechanism and
  print the per-class outcome table;
* ``chaos``       — sweep message-loss × churn over the DHT evaluation
  overlay and report availability, hop inflation and ranking stability
  (the Section 4.3 resilience claim under an actually hostile network);
* ``report``      — summarise an observability trace: per-class wait
  percentiles, multitrust convergence residuals, DHT hop/retry
  distributions (``--json`` for the machine-readable schema, ``--profile``
  to fold a ``--profile-out`` capture into it);
* ``monitor``     — replay a trace through the streaming anomaly detectors
  and alert rules; verifies any recorded live alerts are reproduced;
* ``dashboard``   — render a trace into one self-contained HTML file;
* ``diff-trace``  — compare two traces and flag outcome regressions;
* ``trace``       — work with trace files directly: ``inspect`` (header /
  chunk / kind bookkeeping, corruption-tolerant), ``convert`` (binary <->
  JSONL, canonical bytes), ``query`` (kind/time filters + column
  projection as JSONL; ``--since``/``--until`` skip whole binary chunks
  via per-chunk time bounds), ``compact`` (rechunk a trace) and ``spans``
  (reconstruct causal span trees: per-operation duration percentiles and
  exemplar critical paths);
* ``flame``       — render a span-bearing trace as a self-contained
  flamegraph SVG (folded stacks over simulated busy time; ``--folded``
  also writes collapsed-stack lines);
* ``bench-trace`` — emit a stamped ``BENCH_trace.json`` snapshot of trace
  write/scan throughput, binary vs JSONL (``--min-throughput`` and
  ``--min-scan-ratio`` gate);
* ``bench-obs``   — emit a stamped ``BENCH_obs.json`` perf snapshot
  (``--history`` appends to a JSONL trajectory, ``--max-overhead`` gates);
* ``bench-pipeline`` — emit a stamped ``BENCH_pipeline.json`` snapshot of
  the incremental trust pipeline: full-rebuild vs single-event refresh
  latency per population size, sparse vs dense vs csr matmul, and —
  with ``--scale-sizes`` — sharded vs monolithic replay of one event
  stream (``--min-speedup`` / ``--min-sharded-speedup`` /
  ``--min-csr-speedup`` gate; the scaling gate also requires
  bit-identical checksums);
* ``recover``     — rebuild trust state from a durability directory
  (latest good snapshot + WAL-tail replay); ``--repair`` truncates a torn
  tail, ``--out`` writes the recovered state as a v2 JSON document;
* ``wal-inspect`` — decode a write-ahead log: record counts by kind,
  valid-prefix length, truncation reason (``--records`` lists frames);
* ``bench-wal``   — emit a stamped ``BENCH_wal.json`` snapshot of ingest
  throughput with the journal off / buffered / batch-fsync / fsync-always
  (``--max-overhead`` gates the buffered slowdown);
* ``lint``        — project-aware static analysis: determinism,
  stochastic-matrix and weight-simplex invariants (``--format json`` for
  the machine-readable schema, ``--fail-on`` for severity gating,
  ``--list-rules`` for the catalogue).

``simulate`` and ``chaos`` accept ``--trace-out PATH`` (``.bin``/``.trc``
selects the binary columnar format, anything else canonical JSONL; either
way events *stream* to disk instead of buffering the run),
``--metrics-out metrics.json``, ``--alerts-out alerts.jsonl`` (which also
attaches the live monitor, so alerts interleave into the trace) and
``--profile-out profile.json`` (wall-clock phase timings — the one
artefact that is *not* deterministic).  ``--spans`` additionally records
causal request spans into the trace (``--span-sample N`` head-samples,
keeping every Nth trace); span ids derive from the seed and simulation
time, so span-bearing traces stay byte-identical across runs.  Trace
artefacts are keyed by simulation time only, so two runs at the same seed
produce byte-identical files; every trace consumer accepts JSONL and
binary interchangeably (the format is sniffed from the first bytes, not
the extension).

All commands are seeded and print fixed-width tables to stdout.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from .analysis import render_table
from .baselines import ALL_MECHANISMS, MultiDimensionalMechanism
from .core import ReputationConfig
from .core.durability import (WAL_FILENAME, DurabilityManager,
                              SimulatedCrash, read_wal, recover)
from .core.persistence import save_system
from .lint import (all_rules, lint_paths, result_to_dict, rules_by_id,
                   should_fail)
from .obs import (NULL_RECORDER, FoldedStacks, Monitor, Recorder,
                  SpanAnalyzer, SpanTreeBuilder, diff_summaries,
                  monitor_events, render_dashboard, render_flamegraph,
                  summarize_trace, summary_to_dict)
from .obs.bench import (append_history, collect_snapshot, overhead_ratio,
                        span_overhead_ratio, span_sampled_overhead_ratio,
                        write_snapshot)
from .obs.bench_pipeline import (collect_pipeline_snapshot, csr_speedup,
                                 dense_speedup, incremental_speedup,
                                 scaling_identical, sharded_speedup)
from .obs.bench_trace import (collect_trace_snapshot, scan_ratio,
                              scan_throughput, write_throughput)
from .obs.traceio import (DEFAULT_CHUNK_EVENTS, TraceWriter, canonical_line,
                          iter_trace_events, open_trace_sink, trace_info)
from .simulator import (SCENARIOS, FileSharingSimulation, ScenarioSpec,
                        SimulationConfig, get_scenario, run_chaos_sweep)
from .traces import (CoverageReplayer, MazeTraceGenerator, TraceParameters,
                     compute_statistics, read_csv, read_jsonl, write_csv,
                     write_jsonl)

__all__ = ["main", "build_parser"]

_DAY = 24 * 3600.0


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="stream a structured event trace here "
                             "(.bin/.trc = binary columnar, otherwise "
                             "canonical JSONL)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write a metrics-registry JSON snapshot here")
    parser.add_argument("--alerts-out", default=None, metavar="PATH",
                        help="attach the live monitor and write its alert "
                             "stream (JSONL) here; alerts also interleave "
                             "into --trace-out")
    parser.add_argument("--profile-out", default=None, metavar="PATH",
                        help="write the wall-clock profiler snapshot "
                             "(JSON) here; feed it to 'repro report "
                             "--profile'")
    parser.add_argument("--spans", action="store_true",
                        help="record causal request spans into the trace "
                             "(deterministic ids; analyse with 'repro "
                             "trace spans' / 'repro flame')")
    parser.add_argument("--span-sample", type=int, default=None,
                        metavar="N",
                        help="head-sample spans: keep every Nth trace "
                             "(implies --spans; 1 = keep all)")


def _make_recorder(args: argparse.Namespace):
    """A live recorder (plus monitor) when observability was requested.

    Returns ``(recorder, monitor_or_None)``; the monitor is attached only
    when ``--alerts-out`` asked for live alerting.  A ``--trace-out`` path
    becomes a *streaming* sink the recorder spills into (binary for
    ``.bin``/``.trc``, canonical JSONL otherwise), so the trace never
    buffers in memory.
    """
    span_sample = getattr(args, "span_sample", None)
    if span_sample is not None and span_sample < 1:
        print(f"--span-sample must be >= 1, got {span_sample}",
              file=sys.stderr)
        raise SystemExit(2)
    if span_sample is None and getattr(args, "spans", False):
        span_sample = 1
    if (args.trace_out is None and args.metrics_out is None
            and args.alerts_out is None and args.profile_out is None
            and span_sample is None):
        return NULL_RECORDER, None
    sink = (open_trace_sink(args.trace_out)
            if args.trace_out is not None else None)
    recorder = Recorder(trace_sink=sink,
                        span_seed=getattr(args, "seed", 0),
                        span_sample=span_sample or 0)
    monitor = None
    if args.alerts_out is not None:
        monitor = Monitor.default().attach(recorder)
    return recorder, monitor


def _write_alerts(path: str, alerts) -> None:
    """One canonical JSON line per alert — deterministic, like the trace."""
    with open(path, "w", encoding="utf-8") as handle:
        for alert in alerts:
            handle.write(json.dumps(
                {"t": alert.t, **alert.to_fields()},
                sort_keys=True, separators=(",", ":")) + "\n")


def _write_observability(recorder, args: argparse.Namespace,
                         monitor=None) -> None:
    if not recorder.enabled:
        return
    if monitor is not None:
        # Flush end-of-stream detector state so the final alerts land in
        # the trace before the sink is closed.
        monitor.finish()
    if args.trace_out is not None:
        sink = recorder.trace_sink
        sink.close()
        print(f"wrote {sink.events_written} events to {args.trace_out}")
    if args.metrics_out is not None:
        recorder.write_metrics(args.metrics_out)
        print(f"wrote {len(recorder.registry)} metrics to "
              f"{args.metrics_out}")
    if monitor is not None and args.alerts_out is not None:
        _write_alerts(args.alerts_out, monitor.alerts)
        print(f"wrote {len(monitor.alerts)} alerts to {args.alerts_out}")
    if args.profile_out is not None:
        with open(args.profile_out, "w", encoding="utf-8") as handle:
            json.dump(recorder.profiler.snapshot(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote {len(recorder.profiler)} profiled phases to "
              f"{args.profile_out}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-dimensional P2P reputation system (ICDCS 2007 "
                    "reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    gen = commands.add_parser("gen-trace",
                              help="generate a synthetic Maze-like trace")
    gen.add_argument("output", help="output path (.jsonl or .csv)")
    gen.add_argument("--users", type=int, default=500)
    gen.add_argument("--files", type=int, default=600)
    gen.add_argument("--actions", type=int, default=5000)
    gen.add_argument("--days", type=float, default=30.0)
    gen.add_argument("--library", type=int, default=20,
                     help="pre-existing files per user")
    gen.add_argument("--fake-ratio", type=float, default=0.2)
    gen.add_argument("--seed", type=int, default=7)

    stats = commands.add_parser("trace-stats",
                                help="summarise a trace file")
    stats.add_argument("trace", help="trace path (.jsonl or .csv)")

    coverage = commands.add_parser(
        "coverage", help="Figure 1: request coverage vs evaluation coverage")
    coverage.add_argument("--users", type=int, default=500)
    coverage.add_argument("--files", type=int, default=600)
    coverage.add_argument("--actions", type=int, default=5000)
    coverage.add_argument("--days", type=float, default=30.0)
    coverage.add_argument("--library", type=int, default=20)
    coverage.add_argument("--seed", type=int, default=7)
    coverage.add_argument("--k", type=float, nargs="+",
                          default=[0.05, 0.2, 1.0],
                          help="evaluation-coverage levels (fractions)")

    simulate = commands.add_parser(
        "simulate", help="run the file-sharing simulator")
    simulate.add_argument("--mechanism", choices=sorted(ALL_MECHANISMS),
                          default="multidimensional")
    simulate.add_argument("--scenario", choices=sorted(SCENARIOS),
                          default=None,
                          help="use a named preset scenario (overrides the "
                               "population/catalog flags)")
    simulate.add_argument("--honest", type=int, default=30)
    simulate.add_argument("--free-riders", type=int, default=5)
    simulate.add_argument("--polluters", type=int, default=5)
    simulate.add_argument("--colluders", type=int, default=0)
    simulate.add_argument("--catalog", type=int, default=120,
                          help="number of files")
    simulate.add_argument("--fake-ratio", type=float, default=0.25)
    simulate.add_argument("--days", type=float, default=2.0)
    simulate.add_argument("--request-rate", type=float, default=0.02)
    simulate.add_argument("--seed", type=int, default=42)
    simulate.add_argument("--no-filtering", action="store_true",
                          help="disable Eq. 9 pre-download filtering")
    simulate.add_argument("--no-differentiation", action="store_true",
                          help="disable Section 3.4 service differentiation")
    simulate.add_argument("--multitrust-steps", type=int, default=None,
                          help="the n in RM = TM^n (Eq. 8); n >= 2 emits "
                               "per-iteration convergence residuals into "
                               "the trace (multidimensional only)")
    simulate.add_argument("--matmul-backend",
                          choices=("auto", "sparse", "dense", "csr"),
                          default=None,
                          help="matrix-product backend for RM = TM^n: "
                               "sparse dict-of-dicts, dense numpy, "
                               "compressed-sparse-row, or auto-select by "
                               "density x size (multidimensional only)")
    simulate.add_argument("--shards", type=int, default=None,
                          help="partition the trust domain over this many "
                               "shards (>1 selects the sharded pipeline; "
                               "multidimensional only)")
    simulate.add_argument("--shard-workers", type=int, default=None,
                          help="row-patching worker processes for the "
                               "sharded pipeline (1 = serial, byte-"
                               "identical either way)")
    simulate.add_argument("--wal-out", default=None, metavar="DIR",
                          help="journal every trust-state mutation to a "
                               "write-ahead log + snapshots in this "
                               "directory (multidimensional only); "
                               "recover later with 'repro recover DIR'")
    simulate.add_argument("--snapshot-every", type=int, default=500,
                          metavar="N",
                          help="cut a snapshot generation after N journal "
                               "records, checked at each maintenance tick "
                               "(0 = baseline generation only)")
    simulate.add_argument("--wal-fsync", choices=("none", "batch", "always"),
                          default="batch",
                          help="WAL durability policy: never fsync, fsync "
                               "per maintenance tick, or fsync per record")
    simulate.add_argument("--crash-at", type=float, default=None,
                          metavar="SECONDS",
                          help="inject a simulated process death at this "
                               "simulation time (exit code 3; the WAL "
                               "directory is left exactly as a kill "
                               "would leave it)")
    _add_observability_flags(simulate)

    chaos = commands.add_parser(
        "chaos", help="fault-injection sweep: message loss x churn over "
                      "the DHT evaluation overlay")
    chaos.add_argument("--loss", type=float, nargs="+",
                       default=[0.0, 0.05, 0.1],
                       help="message-loss probabilities to sweep")
    chaos.add_argument("--churn", type=float, nargs="+",
                       default=[0.0, 0.3],
                       help="per-round churn probabilities to sweep")
    chaos.add_argument("--peers", type=int, default=24)
    chaos.add_argument("--files", type=int, default=40)
    chaos.add_argument("--rounds", type=int, default=30)
    chaos.add_argument("--replication", type=int, default=3)
    chaos.add_argument("--seed", type=int, default=11)
    _add_observability_flags(chaos)

    report = commands.add_parser(
        "report", help="summarise an observability trace (JSONL or binary)")
    report.add_argument("trace", help="trace written by --trace-out")
    report.add_argument("--json", action="store_true",
                        help="emit the machine-readable summary schema "
                             "instead of tables")
    report.add_argument("--profile", default=None, metavar="PATH",
                        help="fold a --profile-out capture (wall-clock "
                             "phase percentiles) into the report")

    monitor = commands.add_parser(
        "monitor", help="replay a trace through the streaming anomaly "
                        "detectors and alert rules")
    monitor.add_argument("trace", help="trace written by --trace-out")
    monitor.add_argument("--alerts-out", default=None, metavar="PATH",
                         help="also write the alert stream (JSONL) here")

    dashboard = commands.add_parser(
        "dashboard", help="render a trace into one self-contained HTML "
                          "dashboard (no network dependencies)")
    dashboard.add_argument("trace", help="trace written by --trace-out")
    dashboard.add_argument("-o", "--out", default="dash.html",
                           help="HTML output path")

    diff = commands.add_parser(
        "diff-trace", help="compare two traces and flag outcome "
                           "regressions (B relative to A)")
    diff.add_argument("trace_a", help="baseline trace (A)")
    diff.add_argument("trace_b", help="candidate trace (B)")
    diff.add_argument("--label-a", default="A")
    diff.add_argument("--label-b", default="B")
    diff.add_argument("--json", action="store_true",
                      help="emit the full diff document as JSON")
    diff.add_argument("--fail-on-regression", action="store_true",
                      help="exit 1 when any regression is flagged")

    trace = commands.add_parser(
        "trace", help="inspect, convert, query or compact trace files "
                      "(JSONL or binary columnar)")
    trace_commands = trace.add_subparsers(dest="trace_command",
                                          required=True)

    trace_inspect = trace_commands.add_parser(
        "inspect", help="header, chunk and event-kind bookkeeping; "
                        "reports the longest valid prefix of a corrupt "
                        "file instead of failing")
    trace_inspect.add_argument("trace", help="trace path")
    trace_inspect.add_argument("--json", action="store_true",
                               help="emit the inspection as JSON")

    trace_convert = trace_commands.add_parser(
        "convert", help="convert between binary and canonical JSONL; "
                        "binary -> JSONL is byte-identical to the direct "
                        "JSONL export of the same run")
    trace_convert.add_argument("source", help="input trace (format "
                                              "sniffed from its bytes)")
    trace_convert.add_argument("dest", help="output path (.bin/.trc = "
                                            "binary, otherwise JSONL)")
    trace_convert.add_argument("--chunk-events", type=int,
                               default=DEFAULT_CHUNK_EVENTS,
                               help="events per chunk when writing binary")

    trace_query = trace_commands.add_parser(
        "query", help="filter a trace by event kind / time range and "
                      "project columns; emits canonical JSONL on stdout")
    trace_query.add_argument("trace", help="trace path")
    trace_query.add_argument("--kind", action="append", default=None,
                             metavar="KIND",
                             help="keep only this event kind (repeatable)")
    trace_query.add_argument("--since", type=float, default=None,
                             metavar="T",
                             help="keep events with t >= T (simulation "
                                  "seconds)")
    trace_query.add_argument("--until", type=float, default=None,
                             metavar="T",
                             help="keep events with t < T")
    trace_query.add_argument("--columns", default=None, metavar="NAMES",
                             help="comma-separated fields to keep "
                                  "('event' is always kept)")
    trace_query.add_argument("--limit", type=int, default=None, metavar="N",
                             help="stop after N matching events")

    trace_compact = trace_commands.add_parser(
        "compact", help="rewrite a trace as binary with a chosen chunk "
                        "size (re-chunks and re-dictionaries)")
    trace_compact.add_argument("source", help="input trace")
    trace_compact.add_argument("dest", help="binary output path")
    trace_compact.add_argument("--chunk-events", type=int,
                               default=DEFAULT_CHUNK_EVENTS,
                               help="events per chunk in the output")

    trace_spans = trace_commands.add_parser(
        "spans", help="reconstruct causal span trees: per-operation "
                      "duration percentiles (simulated seconds) and an "
                      "exemplar critical path per root operation")
    trace_spans.add_argument("trace", help="trace recorded with --spans")
    trace_spans.add_argument("--op", action="append", default=None,
                             metavar="NAME",
                             help="restrict output to this operation name "
                                  "(repeatable)")
    trace_spans.add_argument("--json", action="store_true",
                             help="emit the analysis as JSON")

    flame = commands.add_parser(
        "flame", help="render a span-bearing trace as a self-contained "
                      "flamegraph SVG (simulated busy time)")
    flame.add_argument("trace", help="trace recorded with --spans")
    flame.add_argument("-o", "--out", default="flame.svg",
                       help="SVG output path")
    flame.add_argument("--folded", default=None, metavar="PATH",
                       help="also write collapsed-stack lines "
                            "('a;b;c <microseconds>') here")
    flame.add_argument("--width", type=int, default=1200,
                       help="SVG width in pixels")
    flame.add_argument("--title", default="repro span flamegraph",
                       help="SVG title text")

    bench_trace = commands.add_parser(
        "bench-trace", help="collect a stamped trace-format perf snapshot "
                            "(binary vs JSONL write/scan throughput)")
    bench_trace.add_argument("--out", default="BENCH_trace.json",
                             help="snapshot output path")
    bench_trace.add_argument("--events", type=int, default=1_000_000,
                             help="synthetic events to bench")
    bench_trace.add_argument("--seed", type=int, default=7)
    bench_trace.add_argument("--chunk-events", type=int,
                             default=DEFAULT_CHUNK_EVENTS)
    bench_trace.add_argument("--history", default=None, metavar="PATH",
                             help="append the snapshot as one JSONL line "
                                  "to this trajectory file")
    bench_trace.add_argument("--min-throughput", type=float, default=None,
                             metavar="EVENTS_PER_S",
                             help="exit 1 unless binary write AND scan "
                                  "both sustain this many events/s")
    bench_trace.add_argument("--min-scan-ratio", type=float, default=None,
                             metavar="RATIO",
                             help="exit 1 unless the binary scan beats "
                                  "the JSONL scan by this factor")

    bench = commands.add_parser(
        "bench-obs", help="collect a stamped observability perf snapshot")
    bench.add_argument("--out", default="BENCH_obs.json",
                       help="snapshot output path")
    bench.add_argument("--seed", type=int, default=42)
    bench.add_argument("--history", default=None, metavar="PATH",
                       help="append the snapshot as one JSONL line to this "
                            "trajectory file")
    bench.add_argument("--max-overhead", type=float, default=None,
                       metavar="RATIO",
                       help="exit 1 when the instrumentation overhead "
                            "ratio (or full span tracing over plain "
                            "instrumentation) exceeds this bound")
    bench.add_argument("--max-sampled-overhead", type=float, default=None,
                       metavar="RATIO",
                       help="exit 1 when 1-in-8 head-sampled span tracing "
                            "exceeds this ratio over plain "
                            "instrumentation")

    bench_pipeline = commands.add_parser(
        "bench-pipeline",
        help="collect a stamped incremental-pipeline perf snapshot")
    bench_pipeline.add_argument("--out", default="BENCH_pipeline.json",
                                help="snapshot output path")
    bench_pipeline.add_argument("--seed", type=int, default=42)
    bench_pipeline.add_argument("--sizes", type=int, nargs="+",
                                default=[100, 500, 1000],
                                help="population sizes (peers) to bench")
    bench_pipeline.add_argument("--events", type=int, default=20,
                                help="single-event refreshes averaged per "
                                     "size")
    bench_pipeline.add_argument("--history", default=None, metavar="PATH",
                                help="append the snapshot as one JSONL line "
                                     "to this trajectory file")
    bench_pipeline.add_argument("--min-speedup", type=float, default=None,
                                metavar="RATIO",
                                help="exit 1 unless the incremental refresh "
                                     "beats the full rebuild by this factor "
                                     "at the smallest size (and the dense "
                                     "backend beats sparse)")
    bench_pipeline.add_argument("--scale-sizes", type=int, nargs="+",
                                default=[], metavar="PEERS",
                                help="extra population tiers for the "
                                     "sharded-vs-monolithic scaling bench "
                                     "(replays one event stream through "
                                     "both pipelines, checksum-gated)")
    bench_pipeline.add_argument("--scale-events", type=int, default=5,
                                help="single-event refreshes replayed per "
                                     "scaling tier")
    bench_pipeline.add_argument("--shards", type=int, default=8,
                                help="shard count for the scaling bench")
    bench_pipeline.add_argument("--shard-workers", type=int, default=2,
                                help="worker processes for the parallel "
                                     "bit-identity check at the smallest "
                                     "scaling tier (1 disables it)")
    bench_pipeline.add_argument("--min-sharded-speedup", type=float,
                                default=None, metavar="RATIO",
                                help="exit 1 unless the sharded pipeline "
                                     "beats the monolith by this factor at "
                                     "the smallest scaling tier, with "
                                     "bit-identical checksums everywhere")
    bench_pipeline.add_argument("--min-csr-speedup", type=float,
                                default=None, metavar="RATIO",
                                help="exit 1 unless the csr backend beats "
                                     "dense numpy by this factor on the "
                                     "low-density CSR-regime bench matrix")

    recover_parser = commands.add_parser(
        "recover", help="rebuild trust state from a durability directory "
                        "(latest good snapshot + WAL-tail replay)")
    recover_parser.add_argument("directory",
                                help="directory written by simulate "
                                     "--wal-out")
    recover_parser.add_argument("--out", default=None, metavar="PATH",
                                help="write the recovered state as a v2 "
                                     "JSON document here")
    recover_parser.add_argument("--repair", action="store_true",
                                help="truncate a torn WAL tail back to the "
                                     "last valid record")
    recover_parser.add_argument("--json", action="store_true",
                                help="emit a machine-readable recovery "
                                     "summary instead of text")

    wal_inspect = commands.add_parser(
        "wal-inspect", help="decode a write-ahead log and report its "
                            "valid prefix")
    wal_inspect.add_argument("path",
                             help="WAL file, or a durability directory "
                                  f"containing {WAL_FILENAME}")
    wal_inspect.add_argument("--records", action="store_true",
                             help="list every decoded record")
    wal_inspect.add_argument("--json", action="store_true",
                             help="emit the scan as JSON")

    bench_wal = commands.add_parser(
        "bench-wal", help="collect a stamped WAL-throughput perf snapshot")
    bench_wal.add_argument("--out", default="BENCH_wal.json",
                           help="snapshot output path")
    bench_wal.add_argument("--seed", type=int, default=42)
    bench_wal.add_argument("--history", default=None, metavar="PATH",
                           help="append the snapshot as one JSONL line to "
                                "this trajectory file")
    bench_wal.add_argument("--max-overhead", type=float, default=None,
                           metavar="RATIO",
                           help="exit 1 when the buffered-journal slowdown "
                                "exceeds this ratio (CI gate: 1.25)")

    lint = commands.add_parser(
        "lint", help="project-aware static analysis: determinism, "
                     "stochastic-matrix and weight-simplex invariants")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to check (default: src)")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="diagnostic output format")
    lint.add_argument("--fail-on", choices=("error", "warning", "note",
                                            "never"), default="error",
                      help="exit 1 when a diagnostic at or above this "
                           "severity is found (default: error)")
    lint.add_argument("--rules", default=None, metavar="IDS",
                      help="comma-separated rule ids to run "
                           "(default: all registered rules)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")
    return parser


def _read_trace(path: str):
    if path.endswith(".csv"):
        return read_csv(path)
    return read_jsonl(path)


def _cmd_gen_trace(args: argparse.Namespace) -> int:
    parameters = TraceParameters(
        num_users=args.users, num_files=args.files,
        num_actions=args.actions, trace_days=args.days,
        library_size=args.library, fake_ratio=args.fake_ratio,
        seed=args.seed)
    generated = MazeTraceGenerator(parameters).generate()
    if args.output.endswith(".csv"):
        write_csv(generated.trace, args.output)
    else:
        write_jsonl(generated.trace, args.output)
    print(f"wrote {len(generated.trace)} download records to {args.output}")
    return 0


def _cmd_trace_stats(args: argparse.Namespace) -> int:
    trace = _read_trace(args.trace)
    if not len(trace):
        print("trace is empty", file=sys.stderr)
        return 1
    statistics = compute_statistics(trace)
    rows = [
        ["records", statistics.num_records],
        ["users", statistics.num_users],
        ["files", statistics.num_files],
        ["duration (days)", round(statistics.duration_days, 1)],
        ["popularity Zipf exponent",
         round(statistics.popularity_zipf_exponent, 3)],
        ["downloader activity Gini",
         round(statistics.downloader_activity_gini, 3)],
        ["uploader activity Gini",
         round(statistics.uploader_activity_gini, 3)],
        ["fake download fraction",
         round(statistics.fake_download_fraction, 3)],
        ["median file distinct days", statistics.median_file_distinct_days],
    ]
    print(render_table(["statistic", "value"], rows,
                       title=f"Trace statistics: {args.trace}"))
    return 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    for k in args.k:
        if not 0.0 <= k <= 1.0:
            print(f"coverage level {k} outside [0, 1]", file=sys.stderr)
            return 1
    parameters = TraceParameters(
        num_users=args.users, num_files=args.files,
        num_actions=args.actions, trace_days=args.days,
        library_size=args.library, seed=args.seed)
    generated = MazeTraceGenerator(parameters).generate()
    rows = []
    for k in args.k:
        series = CoverageReplayer(generated, k, seed=args.seed + 1).run()
        rows.append([f"{k:.0%}", series.overall, series.steady_state()])
    print(render_table(
        ["evaluation coverage", "request coverage", "steady-state"], rows,
        title=(f"Figure 1 sweep: {len(generated.trace)} downloads, "
               f"{args.users} users, {args.days:.0f} days")))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.scenario is not None:
        preset = get_scenario(args.scenario, seed=args.seed)
        config = SimulationConfig(
            scenario=preset.scenario,
            duration_seconds=preset.duration_seconds,
            num_files=preset.num_files,
            fake_ratio=preset.fake_ratio,
            request_rate=preset.request_rate,
            seed=preset.seed,
            churn=preset.churn,
            use_file_filtering=not args.no_filtering,
            use_service_differentiation=not args.no_differentiation,
        )
        duration = preset.duration_seconds
    else:
        duration = args.days * _DAY
        config = SimulationConfig(
            scenario=ScenarioSpec(honest=args.honest,
                                  free_riders=args.free_riders,
                                  polluters=args.polluters,
                                  colluders=args.colluders),
            duration_seconds=duration,
            num_files=args.catalog,
            fake_ratio=args.fake_ratio,
            request_rate=args.request_rate,
            seed=args.seed,
            use_file_filtering=not args.no_filtering,
            use_service_differentiation=not args.no_differentiation,
        )
    if args.mechanism == "multidimensional":
        reputation_config = {"retention_saturation_seconds": duration / 3}
        if args.multitrust_steps is not None:
            reputation_config["multitrust_steps"] = args.multitrust_steps
        if args.matmul_backend is not None:
            reputation_config["matmul_backend"] = args.matmul_backend
        if args.shards is not None:
            reputation_config["shards"] = args.shards
        if args.shard_workers is not None:
            reputation_config["shard_workers"] = args.shard_workers
        mechanism = MultiDimensionalMechanism(
            ReputationConfig(**reputation_config))
    else:
        mechanism = ALL_MECHANISMS[args.mechanism]()
    recorder, live_monitor = _make_recorder(args)

    durability = None
    if args.wal_out is not None:
        if args.mechanism != "multidimensional":
            print("--wal-out journals the multidimensional trust state; "
                  f"mechanism {args.mechanism!r} has none", file=sys.stderr)
            return 2
        durability = DurabilityManager(
            mechanism.system, args.wal_out, fsync=args.wal_fsync,
            snapshot_every=args.snapshot_every, recorder=recorder)

    simulation = FileSharingSimulation(config, mechanism,
                                       recorder=recorder,
                                       durability=durability)
    if args.crash_at is not None:
        simulation.engine.schedule_crash(args.crash_at)
    try:
        metrics = simulation.run()
    except SimulatedCrash as crash:
        # Process-death semantics: nothing is flushed or closed; the
        # durability directory holds exactly what had reached the OS.
        print(f"simulated crash: {crash}", file=sys.stderr)
        return 3
    if durability is not None:
        durability.close(final_snapshot=True)
        print(f"journalled {durability.last_seq} records to "
              f"{args.wal_out} (fsync={args.wal_fsync})")

    rows = []
    for label in metrics.class_labels():
        stats = metrics.stats_for(label)
        rows.append([label, stats.total_downloads,
                     stats.fake_fraction, stats.fakes_blocked,
                     stats.mean_wait, stats.mean_bandwidth / 1024.0])
    scenario_note = (f"scenario={args.scenario}, "
                     if args.scenario is not None else "")
    print(render_table(
        ["class", "downloads", "fake fraction", "fakes blocked",
         "mean wait (s)", "bandwidth (KB/s)"], rows,
        title=(f"Simulation: {scenario_note}mechanism={args.mechanism}, "
               f"{duration / _DAY:.1f} days, seed={args.seed}")))
    print(f"\noverall fake fraction: {metrics.overall_fake_fraction:.3f}")
    print(f"requests: {metrics.total_requests}, blind judgements: "
          f"{metrics.blind_judgements}")
    print(f"outstanding fake copies: {metrics.outstanding_fake_copies}, "
          f"retrievals incomplete: {metrics.retrievals_incomplete}")
    _write_observability(recorder, args, live_monitor)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    for rate in args.loss:
        if not 0.0 <= rate < 1.0:
            print(f"loss rate {rate} outside [0, 1)", file=sys.stderr)
            return 1
    for rate in args.churn:
        if not 0.0 <= rate <= 1.0:
            print(f"churn rate {rate} outside [0, 1]", file=sys.stderr)
            return 1
    recorder, live_monitor = _make_recorder(args)
    results = run_chaos_sweep(
        list(args.loss), list(args.churn), peers=args.peers,
        files=args.files, rounds=args.rounds, seed=args.seed,
        replication=args.replication, recorder=recorder)
    rows = []
    for result in results:
        rows.append([
            f"{result.loss_rate:.0%}",
            f"{result.churn_rate:.0%}",
            round(result.availability, 3),
            result.retrievals_incomplete,
            round(result.mean_hops, 2),
            round(result.hop_ratio_vs_baseline, 2),
            round(result.kendall_tau_vs_baseline, 3),
            result.drops,
            result.retries,
            result.repairs,
        ])
    print(render_table(
        ["loss", "churn", "availability", "incomplete", "mean hops",
         "hop ratio", "kendall tau", "drops", "retries", "repairs"], rows,
        title=(f"Chaos sweep: {args.peers} peers, {args.files} files, "
               f"{args.rounds} rounds, r={args.replication}, "
               f"seed={args.seed}")))
    worst = min(result.availability for result in results)
    print(f"\nworst-cell availability: {worst:.3f}")
    _write_observability(recorder, args, live_monitor)
    return 0


def _load_profile(path: str):
    """A ``--profile-out`` capture as a dict, or None on error."""
    try:
        with open(path, encoding="utf-8") as handle:
            profile = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"cannot read profile {path}: {error}", file=sys.stderr)
        return None
    if not isinstance(profile, dict):
        print(f"profile {path} is not a JSON object", file=sys.stderr)
        return None
    return profile


def _cmd_report(args: argparse.Namespace) -> int:
    profile = None
    if args.profile is not None:
        profile = _load_profile(args.profile)
        if profile is None:
            return 1
    try:
        # One streaming pass; JSONL or binary, sniffed from the bytes.
        summary = summarize_trace(iter_trace_events(args.trace))
    except (OSError, ValueError) as error:
        print(f"cannot read trace {args.trace}: {error}", file=sys.stderr)
        return 1

    if args.json:
        print(json.dumps(summary_to_dict(summary, profile=profile),
                         indent=2, sort_keys=True))
        return 0

    print(f"trace: {args.trace}")
    print(f"events: {summary.total_events}, simulated span: "
          f"{summary.start_time:.0f}s .. {summary.end_time:.0f}s\n")
    if not summary.total_events:
        print("trace is empty: no events to summarise")
        return 0
    print(render_table(
        ["event", "count"],
        [[kind, count] for kind, count in summary.event_counts.items()],
        title="Event counts"))

    if summary.wait_by_class:
        rows = []
        for cls, wait in summary.wait_by_class.items():
            outcome = summary.outcomes_by_class.get(
                cls, {"downloads": 0, "fakes": 0, "blocked": 0})
            rows.append([cls, outcome["downloads"], outcome["fakes"],
                         outcome["blocked"], round(wait["p50"], 1),
                         round(wait["p95"], 1), round(wait["p99"], 1)])
        print("\n" + render_table(
            ["class", "downloads", "fakes", "blocked", "wait p50 (s)",
             "wait p95 (s)", "wait p99 (s)"], rows,
            title="Per-class outcomes and wait percentiles"))

    if summary.multitrust_residuals:
        rows = [[iteration, residual["count"],
                 f"{residual['mean']:.2e}", f"{residual['max']:.2e}"]
                for iteration, residual
                in summary.multitrust_residuals.items()]
        print("\n" + render_table(
            ["iteration", "computations", "mean residual", "max residual"],
            rows, title="Multitrust convergence (L-inf residual per "
                        "power-iteration step)"))

    if summary.dht_hops.get("count"):
        rows = [["hops", summary.dht_hops["count"],
                 round(summary.dht_hops["mean"], 2),
                 summary.dht_hops["p50"], summary.dht_hops["p95"],
                 summary.dht_hops["p99"]],
                ["retries", summary.dht_retries["count"],
                 round(summary.dht_retries["mean"], 2),
                 summary.dht_retries["p50"], summary.dht_retries["p95"],
                 summary.dht_retries["p99"]]]
        print("\n" + render_table(
            ["metric", "lookups", "mean", "p50", "p95", "p99"], rows,
            title="DHT lookup cost"))
        print(f"\nfailed lookups: {summary.dht_failed_lookups}")

    if summary.fake_removal_latency.get("count"):
        latency = summary.fake_removal_latency
        print(f"fake-removal latency: n={latency['count']}, "
              f"mean={latency['mean']:.0f}s, p95={latency['p95']:.0f}s")

    if profile:
        rows = []
        for name, stats in sorted(profile.items()):
            if not isinstance(stats, dict):
                continue
            rows.append([
                name, stats.get("calls", 0),
                f"{float(stats.get('total_seconds', 0.0)) * 1e3:.1f}",
                f"{float(stats.get('p50_seconds', 0.0)) * 1e3:.2f}",
                f"{float(stats.get('p95_seconds', 0.0)) * 1e3:.2f}",
                f"{float(stats.get('p99_seconds', 0.0)) * 1e3:.2f}"])
        print("\n" + render_table(
            ["phase", "calls", "total (ms)", "p50 (ms)", "p95 (ms)",
             "p99 (ms)"], rows,
            title=f"Profiled sections (wall clock): {args.profile}"))

    if summary.unrecognized:
        kinds = ", ".join(f"{kind} ({count})" for kind, count
                          in summary.unrecognized.items())
        print(f"unrecognized event kinds: {kinds}")
    if summary.alert_counts:
        counts = ", ".join(f"{count} {severity}" for severity, count
                           in summary.alert_counts.items())
        print(f"alerts in trace: {counts}")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    try:
        result = monitor_events(iter_trace_events(args.trace))
    except (OSError, ValueError) as error:
        print(f"cannot read trace {args.trace}: {error}", file=sys.stderr)
        return 1

    print(f"trace: {args.trace} ({result.events_seen} events)")
    if result.alerts:
        rows = [[f"{alert.t:.0f}", alert.severity, alert.detector,
                 alert.message] for alert in result.alerts]
        print(render_table(["t (s)", "severity", "detector", "message"],
                           rows, title="Alerts"))
        counts = ", ".join(f"{count} {severity}" for severity, count
                           in result.counts_by_severity().items())
        print(f"\n{len(result.alerts)} alerts: {counts}")
    else:
        print("no alerts raised")

    if args.alerts_out is not None:
        _write_alerts(args.alerts_out, result.alerts)
        print(f"wrote {len(result.alerts)} alerts to {args.alerts_out}")

    if result.recorded_alerts:
        if result.reproduces_recorded:
            print(f"replay check: reproduced all "
                  f"{len(result.recorded_alerts)} recorded alerts")
        else:
            print(f"replay check FAILED: regenerated {len(result.alerts)} "
                  f"alerts, trace carries {len(result.recorded_alerts)}",
                  file=sys.stderr)
            return 1
    return 0


def _cmd_dashboard(args: argparse.Namespace) -> int:
    try:
        document = render_dashboard(iter_trace_events(args.trace),
                                    title=f"repro dashboard: {args.trace}")
    except (OSError, ValueError) as error:
        print(f"cannot read trace {args.trace}: {error}", file=sys.stderr)
        return 1
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(document)
    print(f"wrote {len(document)} bytes of HTML to {args.out}")
    return 0


def _summarize_path(path: str):
    """One streaming summarisation pass over a trace (None on error)."""
    try:
        return summarize_trace(iter_trace_events(path))
    except (OSError, ValueError) as error:
        print(f"cannot read trace {path}: {error}", file=sys.stderr)
        return None


def _cmd_diff_trace(args: argparse.Namespace) -> int:
    summary_a = _summarize_path(args.trace_a)
    summary_b = _summarize_path(args.trace_b)
    if summary_a is None or summary_b is None:
        return 1
    diff = diff_summaries(summary_a, summary_b,
                          label_a=args.label_a, label_b=args.label_b)
    regressions = diff["regressions"]

    if args.json:
        print(json.dumps(diff, indent=2, sort_keys=True))
    else:
        deltas = diff["deltas"]
        print(f"{args.label_a}: {args.trace_a}")
        print(f"{args.label_b}: {args.trace_b}\n")
        rows = [["total events", deltas["total_events"]],
                ["failed DHT lookups", deltas["dht_failed_lookups"]],
                ["incomplete retrievals",
                 deltas["dht_retrievals_incomplete"]],
                ["mean DHT hops", round(deltas["dht_mean_hops"], 2)]]
        for cls, delta in deltas["fake_fraction_by_class"].items():
            rows.append([f"fake fraction [{cls}]", round(delta, 3)])
        for cls, delta in deltas["wait_p95_by_class"].items():
            rows.append([f"wait p95 [{cls}] (s)", round(delta, 1)])
        for severity, delta in deltas["alert_counts"].items():
            rows.append([f"alerts [{severity}]", delta])
        print(render_table(
            ["metric", f"delta ({args.label_b} - {args.label_a})"], rows,
            title="Trace diff"))
        if regressions:
            print(f"\n{len(regressions)} regressions:")
            for regression in regressions:
                print(f"  - {regression}")
        else:
            print("\nno regressions flagged")

    if regressions and args.fail_on_regression:
        return 1
    return 0


def _cmd_trace_inspect(args: argparse.Namespace) -> int:
    try:
        info = trace_info(args.trace)
    except OSError as error:
        print(f"cannot read trace {args.trace}: {error}", file=sys.stderr)
        return 1

    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0

    rows = [["format", info["format"]]]
    if "version" in info:
        rows.append(["version", info["version"]])
    rows.extend([
        ["file bytes", info["file_bytes"]],
        ["events", info["events"]],
    ])
    if info["format"] == "binary":
        rows.append(["chunks", info["chunks"]])
    rows.append(["time span", f"{info['start_time']:.0f}s .. "
                              f"{info['end_time']:.0f}s"])
    print(render_table(["property", "value"], rows,
                       title=f"Trace: {args.trace}"))
    if info["kinds"]:
        print("\n" + render_table(
            ["event", "count"],
            [[kind, count] for kind, count in info["kinds"].items()],
            title="Event counts"))
    if info["truncated"]:
        print(f"\nTRUNCATED after {info['events']} events: "
              f"{info['error']}")
    return 0


def _cmd_trace_convert(args: argparse.Namespace) -> int:
    if args.chunk_events < 1:
        print(f"--chunk-events must be >= 1, got {args.chunk_events}",
              file=sys.stderr)
        return 2
    try:
        sink = open_trace_sink(args.dest, chunk_events=args.chunk_events)
    except OSError as error:
        print(f"cannot write {args.dest}: {error}", file=sys.stderr)
        return 1
    try:
        with sink:
            for event in iter_trace_events(args.source):
                sink.append(event)
    except (OSError, ValueError) as error:
        print(f"convert failed: {error}", file=sys.stderr)
        return 1
    print(f"wrote {sink.events_written} events to {args.dest}")
    return 0


def _cmd_trace_query(args: argparse.Namespace) -> int:
    kinds = set(args.kind) if args.kind else None
    columns = None
    if args.columns is not None:
        columns = [name.strip() for name in args.columns.split(",")
                   if name.strip()]
    if args.limit is not None and args.limit < 0:
        print(f"--limit must be >= 0, got {args.limit}", file=sys.stderr)
        return 2
    matched = 0
    out = sys.stdout
    try:
        # The time window is pushed down into the reader: binary chunks
        # whose per-chunk [t_min, t_max] misses the window are skipped
        # without decoding any column.
        for event in iter_trace_events(args.trace, since=args.since,
                                       until=args.until):
            if args.limit is not None and matched >= args.limit:
                break
            if kinds is not None and event.get("event") not in kinds:
                continue
            if columns is not None:
                event = {"event": event.get("event", "unknown"),
                         **{name: event[name] for name in columns
                            if name in event}}
            out.write(canonical_line(event) + "\n")
            matched += 1
    except (OSError, ValueError) as error:
        print(f"cannot read trace {args.trace}: {error}", file=sys.stderr)
        return 1
    # Keep stdout pipeable: the bookkeeping goes to stderr.
    print(f"matched {matched} events", file=sys.stderr)
    return 0


def _cmd_trace_compact(args: argparse.Namespace) -> int:
    if args.chunk_events < 1:
        print(f"--chunk-events must be >= 1, got {args.chunk_events}",
              file=sys.stderr)
        return 2
    try:
        writer = TraceWriter(args.dest, chunk_events=args.chunk_events)
    except OSError as error:
        print(f"cannot write {args.dest}: {error}", file=sys.stderr)
        return 1
    try:
        with writer:
            for event in iter_trace_events(args.source):
                writer.append(event)
    except (OSError, ValueError) as error:
        print(f"compact failed: {error}", file=sys.stderr)
        return 1
    in_bytes = os.path.getsize(args.source)
    out_bytes = os.path.getsize(args.dest)
    print(f"wrote {writer.events_written} events in "
          f"{writer.chunks_written} chunks to {args.dest} "
          f"({in_bytes} -> {out_bytes} bytes)")
    return 0


_NO_SPANS_MESSAGE = ("contains no span records; record one with "
                     "--spans (or --span-sample N) on simulate/chaos")


def _cmd_trace_spans(args: argparse.Namespace) -> int:
    analyzer = SpanAnalyzer()
    try:
        for event in iter_trace_events(args.trace):
            analyzer.feed(event)
    except (OSError, ValueError) as error:
        print(f"cannot read trace {args.trace}: {error}", file=sys.stderr)
        return 1
    analysis = analyzer.finish()
    selected = set(args.op) if args.op else None

    if args.json:
        document = analysis.to_dict()
        if selected is not None:
            for key in ("operations", "critical_paths"):
                document[key] = {name: value
                                 for name, value in document[key].items()
                                 if name in selected}
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0

    if not analysis.spans:
        print(f"trace {args.trace} {_NO_SPANS_MESSAGE}")
        return 0

    print(f"trace: {args.trace}")
    print(f"spans: {analysis.spans} in {analysis.traces} traces "
          f"({analysis.segments} segments, {analysis.orphans} orphans, "
          f"{analysis.malformed} malformed)\n")

    def _quantile(value) -> str:
        return f"{value:.3f}" if value is not None else "-"

    rows = []
    for name, stats in sorted(analysis.operations.items()):
        if selected is not None and name not in selected:
            continue
        entry = stats.to_dict()
        rows.append([name, entry["count"],
                     f"{entry['total_dur']:.3f}",
                     f"{entry['total_busy']:.3f}",
                     _quantile(entry["p50"]), _quantile(entry["p95"]),
                     _quantile(entry["p99"])])
    print(render_table(
        ["operation", "spans", "total dur (s)", "total busy (s)",
         "p50 (s)", "p95 (s)", "p99 (s)"], rows,
        title="Span operations (simulated seconds)"))

    for name, steps in sorted(analysis.critical_paths.items()):
        if selected is not None and name not in selected:
            continue
        print(f"\ncritical path [{name}] "
              f"({steps[0].dur:.3f}s end to end):")
        for depth, step in enumerate(steps):
            counters = "".join(
                f" {counter}={amount}" for counter, amount
                in sorted(step.counters.items()))
            flag = "" if step.consistent else "  [INCONSISTENT]"
            print(f"  {'  ' * depth}{step.name}: dur {step.dur:.3f}s, "
                  f"busy {step.busy:.3f}s{counters}{flag}")

    if analysis.inconsistent:
        print(f"\nWARNING: {analysis.inconsistent} spans violate "
              "dur == busy + sum(child dur)", file=sys.stderr)
        return 1
    print("\nconsistency: dur == busy + sum(child dur) holds for "
          "every span")
    return 0


_TRACE_COMMANDS = {
    "inspect": _cmd_trace_inspect,
    "convert": _cmd_trace_convert,
    "query": _cmd_trace_query,
    "compact": _cmd_trace_compact,
    "spans": _cmd_trace_spans,
}


def _cmd_trace(args: argparse.Namespace) -> int:
    return _TRACE_COMMANDS[args.trace_command](args)


def _cmd_flame(args: argparse.Namespace) -> int:
    if args.width < 300:
        print(f"--width must be >= 300, got {args.width}", file=sys.stderr)
        return 2
    builder = SpanTreeBuilder()
    folded = FoldedStacks()
    try:
        for event in iter_trace_events(args.trace):
            root = builder.feed(event)
            if root is not None:
                folded.add_tree(root)
    except (OSError, ValueError) as error:
        print(f"cannot read trace {args.trace}: {error}", file=sys.stderr)
        return 1
    # Orphaned subtrees (parent lost to truncation) still carry real cost.
    for root in builder.finish():
        folded.add_tree(root)
    if not builder.spans_seen:
        print(f"trace {args.trace} {_NO_SPANS_MESSAGE}")
        return 0
    if args.folded is not None:
        with open(args.folded, "w", encoding="utf-8") as handle:
            for line in folded.lines():
                handle.write(line + "\n")
        print(f"wrote {len(folded)} folded stacks to {args.folded}")
    document = render_flamegraph(folded, title=args.title,
                                 width=args.width)
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(document)
    print(f"wrote {len(document)} bytes of SVG to {args.out} "
          f"({folded.trees} trees, {len(folded)} stacks, total busy "
          f"{folded.total:.3f}s simulated)")
    return 0


def _cmd_bench_trace(args: argparse.Namespace) -> int:
    if args.events < 1:
        print(f"--events must be >= 1, got {args.events}", file=sys.stderr)
        return 2
    if args.chunk_events < 1:
        print(f"--chunk-events must be >= 1, got {args.chunk_events}",
              file=sys.stderr)
        return 2
    snapshot = collect_trace_snapshot(events=args.events, seed=args.seed,
                                      chunk_events=args.chunk_events)
    write_snapshot(args.out, snapshot)
    if args.history is not None:
        append_history(args.history, snapshot)
        print(f"appended snapshot to {args.history}")
    print(f"wrote {args.out} (seed={snapshot['seed']}, "
          f"config={snapshot['config_hash']}, git={snapshot['git_sha']})")
    rows = []
    for fmt in ("binary", "jsonl"):
        entry = snapshot[fmt]
        rows.append([fmt,
                     f"{entry['write_events_per_s']:,.0f}",
                     f"{entry['scan_events_per_s']:,.0f}",
                     f"{entry['file_bytes'] / (1024.0 * 1024.0):.1f}"])
    print(render_table(
        ["format", "write events/s", "scan events/s", "file MiB"], rows,
        title=f"Trace throughput: {snapshot['events']} synthetic events, "
              f"chunk={snapshot['chunk_events']}"))
    print(f"\nbinary/JSONL size ratio: {snapshot['size_ratio']:.2f}, "
          f"scan speedup: x{snapshot['scan_ratio']:.1f}")

    if not snapshot["scan_aggregates_match"]:
        print("binary and JSONL scans disagree on the aggregates — the "
              "speedup is meaningless", file=sys.stderr)
        return 1
    if not snapshot["roundtrip_identical"]:
        print("binary -> JSONL round-trip is not byte-identical",
              file=sys.stderr)
        return 1
    print("fidelity checks passed (aggregates match, round-trip "
          "byte-identical)")
    if args.min_throughput is not None:
        write_rate = write_throughput(snapshot, "binary")
        scan_rate = scan_throughput(snapshot, "binary")
        slowest = min(write_rate, scan_rate)
        if slowest < args.min_throughput:
            print(f"binary throughput {slowest:,.0f} events/s below the "
                  f"{args.min_throughput:,.0f} events/s bound "
                  f"(write {write_rate:,.0f}, scan {scan_rate:,.0f})",
                  file=sys.stderr)
            return 1
        print(f"throughput gate passed ({slowest:,.0f} >= "
              f"{args.min_throughput:,.0f} events/s)")
    if args.min_scan_ratio is not None:
        ratio = scan_ratio(snapshot)
        if ratio < args.min_scan_ratio:
            print(f"binary scan only x{ratio:.2f} faster than JSONL, "
                  f"below the x{args.min_scan_ratio:.2f} bound",
                  file=sys.stderr)
            return 1
        print(f"scan-ratio gate passed (x{ratio:.2f} >= "
              f"x{args.min_scan_ratio:.2f})")
    return 0


def _cmd_bench_obs(args: argparse.Namespace) -> int:
    snapshot = collect_snapshot(seed=args.seed)
    write_snapshot(args.out, snapshot)
    if args.history is not None:
        append_history(args.history, snapshot)
        print(f"appended snapshot to {args.history}")
    timings = snapshot["timings"]
    print(f"wrote {args.out} (seed={snapshot['seed']}, "
          f"config={snapshot['config_hash']}, git={snapshot['git_sha']})")
    print(f"simulate: {timings['simulate_null_recorder_seconds']:.3f}s "
          f"bare, {timings['simulate_instrumented_seconds']:.3f}s "
          f"instrumented "
          f"(x{timings['instrumentation_overhead_ratio']:.2f})")
    print(f"spans: {timings['simulate_spans_seconds']:.3f}s full "
          f"(x{timings['span_overhead_ratio']:.2f} vs instrumented), "
          f"{timings['simulate_spans_sampled_seconds']:.3f}s sampled 1/8 "
          f"(x{timings['span_sampled_overhead_ratio']:.2f})")
    if args.max_overhead is not None:
        ratio = overhead_ratio(snapshot)
        if ratio > args.max_overhead:
            print(f"instrumentation overhead x{ratio:.2f} exceeds the "
                  f"x{args.max_overhead:.2f} bound", file=sys.stderr)
            return 1
        span_ratio = span_overhead_ratio(snapshot)
        if span_ratio > args.max_overhead:
            print(f"full span tracing overhead x{span_ratio:.2f} exceeds "
                  f"the x{args.max_overhead:.2f} bound", file=sys.stderr)
            return 1
        print(f"overhead gate passed (instrumentation x{ratio:.2f}, "
              f"spans x{span_ratio:.2f} <= x{args.max_overhead:.2f})")
    if args.max_sampled_overhead is not None:
        sampled_ratio = span_sampled_overhead_ratio(snapshot)
        if sampled_ratio > args.max_sampled_overhead:
            print(f"sampled span tracing overhead x{sampled_ratio:.2f} "
                  f"exceeds the x{args.max_sampled_overhead:.2f} bound",
                  file=sys.stderr)
            return 1
        print(f"sampled-overhead gate passed (x{sampled_ratio:.2f} <= "
              f"x{args.max_sampled_overhead:.2f})")
    return 0


def _cmd_bench_pipeline(args: argparse.Namespace) -> int:
    snapshot = collect_pipeline_snapshot(seed=args.seed,
                                         sizes=tuple(args.sizes),
                                         events=args.events,
                                         scale_sizes=tuple(args.scale_sizes),
                                         scale_events=args.scale_events,
                                         shards=args.shards,
                                         shard_workers=args.shard_workers)
    write_snapshot(args.out, snapshot)
    if args.history is not None:
        append_history(args.history, snapshot)
        print(f"appended snapshot to {args.history}")
    print(f"wrote {args.out} (seed={snapshot['seed']}, "
          f"config={snapshot['config_hash']}, git={snapshot['git_sha']})")
    rows = []
    for entry in snapshot["refresh"]:
        rows.append([entry["peers"], entry["tm_entries"],
                     f"{entry['full_refresh_seconds'] * 1e3:.1f}",
                     f"{entry['incremental_refresh_seconds'] * 1e3:.2f}",
                     f"x{entry['incremental_speedup']:.1f}"])
    print(render_table(
        ["peers", "TM entries", "full (ms)", "incremental (ms)", "speedup"],
        rows, title="Refresh latency: full rebuild vs single-event delta"))
    backend = snapshot["backend"]
    print(f"\nbackend bench ({backend['nodes']} nodes, "
          f"density {backend['density']:.2f}, TM^{backend['steps']}): "
          f"sparse {backend['sparse_power_seconds'] * 1e3:.1f}ms, "
          f"dense {backend['dense_power_seconds'] * 1e3:.1f}ms "
          f"(x{backend['dense_speedup']:.1f}, auto selects "
          f"{backend['auto_selects']}, max |diff| "
          f"{backend['results_max_abs_diff']:.1e})")
    csr = snapshot["csr"]
    print(f"csr bench ({csr['nodes']} nodes, density "
          f"{csr['density']:.2f}, TM^{csr['steps']}, "
          f"flavor={csr['flavor']}): dense "
          f"{csr['dense_power_seconds'] * 1e3:.1f}ms, csr "
          f"{csr['csr_power_seconds'] * 1e3:.1f}ms "
          f"(x{csr['csr_speedup']:.1f}, auto selects "
          f"{csr['auto_selects']}, max |diff| "
          f"{csr['results_max_abs_diff']:.1e})")
    if snapshot.get("scaling"):
        rows = []
        for entry in snapshot["scaling"]:
            workers = entry.get("workers")
            identity = "ok" if entry["checksums_match"] else "MISMATCH"
            if isinstance(workers, dict):
                identity += ("+mp" if workers["matches_serial"]
                             else "+MP-MISMATCH")
            rows.append([entry["peers"], entry["shards"],
                         entry["tm_entries"],
                         f"{entry['monolithic_refresh_seconds'] * 1e3:.1f}",
                         f"{entry['sharded_refresh_seconds'] * 1e3:.1f}",
                         f"x{entry['sharded_speedup']:.1f}", identity])
        print()
        print(render_table(
            ["peers", "shards", "TM entries", "monolithic (ms)",
             "sharded (ms)", "speedup", "identity"],
            rows, title="Scaling: monolithic vs sharded single-event "
                        "replay (identical streams)"))
    if args.min_speedup is not None:
        smallest = min(args.sizes)
        speedup = incremental_speedup(snapshot, smallest)
        if speedup < args.min_speedup:
            print(f"incremental speedup x{speedup:.2f} at {smallest} peers "
                  f"below the x{args.min_speedup:.2f} bound",
                  file=sys.stderr)
            return 1
        if dense_speedup(snapshot) < 1.0:
            print("dense backend slower than sparse on the "
                  f"{backend['density']:.0%}-density bench matrix",
                  file=sys.stderr)
            return 1
        print(f"pipeline gate passed (x{speedup:.2f} >= "
              f"x{args.min_speedup:.2f} at {smallest} peers, dense "
              f"x{dense_speedup(snapshot):.2f} vs sparse)")
    if args.min_sharded_speedup is not None:
        if not args.scale_sizes:
            print("--min-sharded-speedup needs --scale-sizes tiers to gate",
                  file=sys.stderr)
            return 2
        if not scaling_identical(snapshot):
            print("sharded pipeline diverged from the monolith (or the "
                  "parallel replay diverged from serial); see the identity "
                  "column", file=sys.stderr)
            return 1
        smallest_tier = min(args.scale_sizes)
        tier_speedup = sharded_speedup(snapshot, smallest_tier)
        if tier_speedup < args.min_sharded_speedup:
            print(f"sharded speedup x{tier_speedup:.2f} at "
                  f"{smallest_tier} peers below the "
                  f"x{args.min_sharded_speedup:.2f} bound", file=sys.stderr)
            return 1
        print(f"scaling gate passed (x{tier_speedup:.2f} >= "
              f"x{args.min_sharded_speedup:.2f} at {smallest_tier} peers, "
              f"bit-identical)")
    if args.min_csr_speedup is not None:
        ratio = csr_speedup(snapshot)
        if ratio < args.min_csr_speedup:
            print(f"csr speedup x{ratio:.2f} below the "
                  f"x{args.min_csr_speedup:.2f} bound on the "
                  f"{csr['density']:.0%}-density matrix", file=sys.stderr)
            return 1
        print(f"csr gate passed (x{ratio:.2f} >= "
              f"x{args.min_csr_speedup:.2f}, flavor={csr['flavor']})")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    try:
        result = recover(args.directory, repair=args.repair)
    except (FileNotFoundError, ValueError) as error:
        print(f"recovery failed: {error}", file=sys.stderr)
        return 1

    if args.json:
        document = {
            "directory": args.directory,
            "snapshot": result.snapshot_path.name,
            "snapshot_seq": result.snapshot_seq,
            "replayed_records": result.replayed_records,
            "last_seq": result.last_seq,
            "truncated_tail_bytes": result.truncated_tail_bytes,
            "truncation_reason": result.truncation_reason,
            "repaired": result.repaired,
            "quarantined": [
                {"file": entry.quarantined.name, "reason": entry.reason}
                for entry in result.quarantined],
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        rows = [
            ["snapshot", result.snapshot_path.name],
            ["snapshot seq", result.snapshot_seq],
            ["replayed records", result.replayed_records],
            ["recovered through seq", result.last_seq],
            ["torn tail (bytes)", result.truncated_tail_bytes],
            ["stop reason", result.truncation_reason or "clean end"],
            ["tail repaired", "yes" if result.repaired else "no"],
        ]
        print(render_table(["step", "value"], rows,
                           title=f"Recovery: {args.directory}"))
        for entry in result.quarantined:
            print(f"quarantined {entry.quarantined.name}: {entry.reason}")

    if args.out is not None:
        save_system(result.system, args.out, last_seq=result.last_seq)
        print(f"wrote recovered state to {args.out} "
              f"(seq {result.last_seq})")
    return 0


def _cmd_wal_inspect(args: argparse.Namespace) -> int:
    path = args.path
    if os.path.isdir(path):
        path = os.path.join(path, WAL_FILENAME)
    try:
        scan = read_wal(path)
    except OSError as error:
        print(f"cannot read WAL {path}: {error}", file=sys.stderr)
        return 1

    kinds: dict = {}
    for record in scan.records:
        kinds[record.kind] = kinds.get(record.kind, 0) + 1

    if args.json:
        document = {
            "path": path,
            "records": len(scan.records),
            "last_seq": scan.last_seq,
            "valid_bytes": scan.valid_bytes,
            "file_bytes": scan.file_bytes,
            "truncated": scan.truncated,
            "reason": scan.reason,
            "kinds": dict(sorted(kinds.items())),
        }
        if args.records:
            document["frames"] = [
                {"seq": record.seq, "kind": record.kind,
                 "offset": record.offset, "bytes": record.frame_bytes,
                 "data": record.payload}
                for record in scan.records]
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0

    print(f"WAL: {path}")
    print(f"records: {len(scan.records)} (last seq {scan.last_seq}), "
          f"valid prefix {scan.valid_bytes}/{scan.file_bytes} bytes")
    if scan.truncated:
        print(f"TRUNCATED after byte {scan.valid_bytes}: {scan.reason} "
              f"({scan.tail_bytes} bytes unrecoverable)")
    if kinds:
        print(render_table(
            ["kind", "records"],
            [[kind, count] for kind, count in sorted(kinds.items())],
            title="Records by kind"))
    if args.records:
        for record in scan.records:
            payload = json.dumps(record.payload, sort_keys=True,
                                 separators=(",", ":"))
            print(f"  #{record.seq:>6} @{record.offset:>8} "
                  f"{record.kind:<16} {payload}")
    return 0


def _cmd_bench_wal(args: argparse.Namespace) -> int:
    import tempfile

    from .obs.bench_wal import buffered_overhead, collect_wal_snapshot
    with tempfile.TemporaryDirectory(prefix="bench-wal-") as workdir:
        snapshot = collect_wal_snapshot(workdir, seed=args.seed)
    write_snapshot(args.out, snapshot)
    if args.history is not None:
        append_history(args.history, snapshot)
        print(f"appended snapshot to {args.history}")
    print(f"wrote {args.out} (seed={snapshot['seed']}, "
          f"config={snapshot['config_hash']}, git={snapshot['git_sha']})")
    modes = snapshot["modes"]
    rows = [[mode, f"{entry['events_per_second']:.0f}",
             int(entry["wal_records"]),
             f"x{entry['slowdown_vs_off']:.2f}"]
            for mode, entry in modes.items()]
    engine_events = modes["off"]["engine_events"]
    print(render_table(
        ["mode", "events/s", "WAL records", "slowdown vs off"], rows,
        title=f"WAL cost on the simulator workload "
              f"({engine_events} engine events per mode)"))
    if not snapshot["matches_baseline"]:
        print("WARNING: journalled runs diverged from the baseline "
              "outcomes — durability is not supposed to touch any RNG",
              file=sys.stderr)
    if args.max_overhead is not None:
        ratio = buffered_overhead(snapshot)
        if ratio > args.max_overhead:
            print(f"buffered-journal slowdown x{ratio:.2f} exceeds the "
                  f"x{args.max_overhead:.2f} bound", file=sys.stderr)
            return 1
        print(f"WAL overhead gate passed (x{ratio:.2f} <= "
              f"x{args.max_overhead:.2f})")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        rows = [[rule.rule_id, str(rule.severity), rule.summary]
                for rule in all_rules()]
        print(render_table(["rule", "severity", "summary"], rows,
                           title="repro lint rule catalogue"))
        return 0
    try:
        rules = (rules_by_id(part.strip()
                             for part in args.rules.split(",") if part.strip())
                 if args.rules is not None else None)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    missing = [path for path in args.paths if not os.path.exists(path)]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    result = lint_paths(args.paths, rules)

    if args.format == "json":
        print(json.dumps(result_to_dict(result), indent=2, sort_keys=True))
    else:
        for diagnostic in result.sorted_diagnostics():
            print(diagnostic.render())
        counts = result.counts()
        summary = ", ".join(f"{count} {severity}"
                            for severity, count in counts.items() if count)
        print(f"checked {result.files_checked} files: "
              f"{summary if summary else 'no findings'}"
              + (f" ({len(result.suppressed)} suppressed)"
                 if result.suppressed else ""))

    fail_on = None if args.fail_on == "never" else args.fail_on
    return 1 if should_fail(result, fail_on) else 0


_COMMANDS = {
    "gen-trace": _cmd_gen_trace,
    "trace-stats": _cmd_trace_stats,
    "coverage": _cmd_coverage,
    "simulate": _cmd_simulate,
    "chaos": _cmd_chaos,
    "report": _cmd_report,
    "monitor": _cmd_monitor,
    "dashboard": _cmd_dashboard,
    "diff-trace": _cmd_diff_trace,
    "trace": _cmd_trace,
    "flame": _cmd_flame,
    "bench-trace": _cmd_bench_trace,
    "bench-obs": _cmd_bench_obs,
    "bench-pipeline": _cmd_bench_pipeline,
    "recover": _cmd_recover,
    "wal-inspect": _cmd_wal_inspect,
    "bench-wal": _cmd_bench_wal,
    "lint": _cmd_lint,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

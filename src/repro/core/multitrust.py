"""Multi-trust reputation: RM = TM^n (Section 3.2, Eq. 8) and trust tiers.

The one-step matrix captures private, direct trust; raising it to the n-th
power propagates trust through friends-of-friends, approaching EigenTrust's
global view as ``n`` grows.  Section 2 (after Lian et al. [13]) describes the
accompanying *multi-tier* view: immediate friends form tier 1, their friends
tier 2, and so on; service differentiation looks at which tier a requester
falls into, and ranks within a tier by the matrix value at that tier.

This module provides both the reputation matrix and the tier machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..lint.contracts import check_row_stochastic
from ..obs.recorder import NULL_RECORDER, NullRecorder
from .config import DEFAULT_CONFIG, ReputationConfig
from .matrix import TrustMatrix
from .matrix_backend import SPARSE_BACKEND, MatmulBackend

__all__ = ["compute_reputation_matrix", "reputation_between",
           "matrix_residual", "convergence_residuals",
           "TierAssignment", "MultiTierView", "global_reputation_vector"]


def compute_reputation_matrix(one_step: TrustMatrix,
                              steps: Optional[int] = None,
                              config: ReputationConfig = DEFAULT_CONFIG,
                              recorder: NullRecorder = NULL_RECORDER,
                              backend: MatmulBackend = SPARSE_BACKEND
                              ) -> TrustMatrix:
    """Eq. 8: ``RM = TM ** n``; ``steps`` overrides ``config.multitrust_steps``.

    With the default :data:`~repro.obs.recorder.NULL_RECORDER` this is the
    fast path: one ``backend.power`` call (sparse repeated squaring by
    default, or the dense numpy product — see
    :mod:`~repro.core.matrix_backend`).  A live recorder switches to plain
    iterated multiplication so every intermediate power exists, and emits a
    ``multitrust_iteration`` event per step with the L∞ residual between
    successive powers — the paper's convergence-toward-EigenTrust story,
    measured instead of asserted.
    """
    n = steps if steps is not None else config.multitrust_steps
    # RM = TM^n converges (Eq. 8) only for (sub-)stochastic TM; checked
    # behind REPRO_CHECK_INVARIANTS on both the input and the result.
    check_row_stochastic(one_step, name="TM", strict=False)
    if not recorder.enabled:
        result = backend.power(one_step, n)
        check_row_stochastic(result, name=f"RM=TM^{n}", strict=False)
        return result
    if n < 1:
        raise ValueError(f"matrix power requires n >= 1, got {n}")
    with recorder.span("multitrust.power") as span:
        result = one_step
        for iteration in range(2, n + 1):
            previous = result
            result = backend.matmul(result, one_step)
            residual = matrix_residual(previous, result)
            recorder.event("multitrust_iteration", iteration=iteration,
                           residual=residual, entries=result.entry_count())
            recorder.observe("multitrust.residual", residual)
        span.count("iterations", max(n - 1, 0))
    recorder.inc("multitrust.computations")
    recorder.observe("multitrust.steps", n)
    check_row_stochastic(result, name=f"RM=TM^{n}", strict=False)
    return result


def matrix_residual(previous: TrustMatrix, current: TrustMatrix) -> float:
    """L∞ distance between two matrices over the union of their entries.

    Runs on read-only row views — the instrumented power loop calls this
    once per iteration, and copying every row per call used to dominate the
    residual's own arithmetic.
    """
    residual = 0.0
    for i, row in current.iter_row_views():
        previous_row = previous.row_view(i)
        for j, value in row.items():
            residual = max(residual, abs(value - previous_row.get(j, 0.0)))
    for i, row in previous.iter_row_views():
        current_row = current.row_view(i)
        for j, value in row.items():
            if j not in current_row:
                residual = max(residual, value)
    return residual


def convergence_residuals(one_step: TrustMatrix,
                          steps: int) -> List[Tuple[int, float]]:
    """``[(iteration, residual), ...]`` for ``TM^2 .. TM^steps``.

    Standalone analysis helper mirroring what the instrumented
    :func:`compute_reputation_matrix` emits as events.
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    residuals: List[Tuple[int, float]] = []
    result = one_step
    for iteration in range(2, steps + 1):
        previous = result
        result = result.matmul(one_step)
        residuals.append((iteration, matrix_residual(previous, result)))
    return residuals


def reputation_between(reputation: TrustMatrix, i: str, j: str) -> float:
    """``RM_ij``: the reputation user ``i`` assigns to user ``j``."""
    return reputation.get(i, j)


@dataclass(frozen=True)
class TierAssignment:
    """Where a target user lands in an observer's trust tiers.

    ``tier`` is the smallest k such that ``(TM^k)_observer,target > 0``
    (1 = immediate friend); ``value`` is the matrix entry at that tier, used
    for within-tier ranking.  ``tier`` is ``None`` when the target is
    unreachable within the configured horizon.
    """

    target: str
    tier: Optional[int]
    value: float

    def sort_key(self) -> tuple:
        """Orders: lower tier first, then higher value (paper's rule)."""
        tier = self.tier if self.tier is not None else float("inf")
        return (tier, -self.value)


class MultiTierView:
    """Precomputed tier matrices ``TM^1 .. TM^max_tier`` for tier queries.

    This is the Lian-et-al-style multi-tier incentive structure the paper
    builds on: "the immediate friends form the first tier, friends' friends
    form the next and so on ... The smaller level the user belongs to, the
    higher priority they are given."
    """

    def __init__(self, one_step: TrustMatrix, max_tier: int = 3):
        if max_tier < 1:
            raise ValueError(f"max_tier must be >= 1, got {max_tier}")
        self.max_tier = max_tier
        self._tiers: List[TrustMatrix] = [one_step]
        for _ in range(1, max_tier):
            self._tiers.append(self._tiers[-1].matmul(one_step))

    def tier_matrix(self, tier: int) -> TrustMatrix:
        """The ``TM^tier`` matrix (tier counts from 1)."""
        if not 1 <= tier <= self.max_tier:
            raise ValueError(f"tier must be in [1, {self.max_tier}], got {tier}")
        return self._tiers[tier - 1]

    def assign(self, observer: str, target: str) -> TierAssignment:
        """Find the first tier at which ``observer`` reaches ``target``."""
        for tier_number, matrix in enumerate(self._tiers, start=1):
            value = matrix.get(observer, target)
            if value > 0.0:
                return TierAssignment(target=target, tier=tier_number, value=value)
        return TierAssignment(target=target, tier=None, value=0.0)

    def rank_requesters(self, observer: str,
                        requesters: Sequence[str]) -> List[TierAssignment]:
        """Order download requesters by (tier asc, tier-value desc).

        This is the priority order an uploader's queue should serve, per the
        paper's multi-tier service differentiation.
        """
        assignments = [self.assign(observer, requester) for requester in requesters]
        return sorted(assignments, key=TierAssignment.sort_key)


def global_reputation_vector(reputation: TrustMatrix,
                             observers: Optional[Sequence[str]] = None
                             ) -> Dict[str, float]:
    """Aggregate per-target reputation: mean of RM column over observers.

    The paper's reputation is pairwise (RM_ij); benchmarks that compare
    against global mechanisms (EigenTrust) need a single score per user, for
    which the column mean over the observing population is the natural
    projection.
    """
    ids = list(observers) if observers is not None else reputation.node_ids()
    if not ids:
        return {}
    totals: Dict[str, float] = {}
    for i in ids:
        for j, value in reputation.row_view(i).items():
            totals[j] = totals.get(j, 0.0) + value
    return {j: total / len(ids) for j, total in totals.items()}

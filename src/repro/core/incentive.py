"""Trust-based incentive mechanism (Section 3.4): service differentiation.

The reputation system rewards high-reputation users and throttles
low-reputation ones:

* **Queue offset** — "These users add to their request time a negative
  offset whose magnitude grows with their reputation": a requester's
  effective arrival time is ``arrival - offset(reputation)``, moving them
  forward in the upload queue.
* **Bandwidth quota** — "a bandwidth quota is applied to downloads of users
  with lower reputations": allocated bandwidth interpolates between the
  configured floor and ceiling with reputation.

Unlike pure trust systems, *every* pro-social act raises reputation here:
uploading real files, voting on files, ranking other users honestly and
deleting fake files quickly.  :class:`ActionCreditTracker` accounts those
credits; the simulator folds them into the user-trust dimension, closing the
incentive loop (more participation -> denser one-step matrix).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .config import DEFAULT_CONFIG, ReputationConfig
from .evaluation import JournalSink

__all__ = ["ServiceDifferentiator", "ServiceLevel", "IncentiveAction",
           "ActionCreditTracker"]


@dataclass(frozen=True)
class ServiceLevel:
    """The concrete service a requester receives from an uploader."""

    requester: str
    reputation: float
    #: Seconds subtracted from the request's arrival time in the queue.
    queue_offset_seconds: float
    #: Bytes per second this requester may consume.
    bandwidth_quota: float


class ServiceDifferentiator:
    """Maps a (normalised) reputation to queue priority and bandwidth.

    ``reference_reputation`` calibrates the scale: a requester at or above it
    gets the full offset and quota.  Pairwise multi-trust values are tiny
    (rows are ~stochastic over many peers), so callers should pass e.g. the
    observer's maximum row entry or a population quantile as the reference.
    """

    def __init__(self, config: ReputationConfig = DEFAULT_CONFIG,
                 reference_reputation: float = 1.0):
        if reference_reputation <= 0:
            raise ValueError("reference_reputation must be positive")
        self._config = config
        self._reference = reference_reputation

    def normalize(self, reputation: float) -> float:
        """Clamp reputation to [0, 1] relative to the reference value."""
        if reputation <= 0:
            return 0.0
        return min(reputation / self._reference, 1.0)

    def queue_offset(self, reputation: float) -> float:
        """Negative queue offset (seconds) growing with reputation."""
        return self.normalize(reputation) * self._config.max_queue_offset_seconds

    def bandwidth_quota(self, reputation: float) -> float:
        """Allocated bandwidth interpolating floor..ceiling with reputation."""
        config = self._config
        span = config.max_bandwidth_quota - config.min_bandwidth_quota
        return config.min_bandwidth_quota + self.normalize(reputation) * span

    def service_level(self, requester: str, reputation: float) -> ServiceLevel:
        return ServiceLevel(
            requester=requester,
            reputation=reputation,
            queue_offset_seconds=self.queue_offset(reputation),
            bandwidth_quota=self.bandwidth_quota(reputation),
        )

    def order_queue(self, requests: Sequence[Tuple[str, float, float]]
                    ) -> List[Tuple[str, float]]:
        """Order pending requests by effective (offset-adjusted) arrival time.

        ``requests`` is a sequence of ``(requester, arrival_time,
        reputation)``; the result is ``(requester, effective_time)`` sorted
        ascending — the uploader should serve it front to back.
        """
        effective = [
            (requester, arrival - self.queue_offset(reputation))
            for requester, arrival, reputation in requests
        ]
        return sorted(effective, key=lambda item: (item[1], item[0]))


class IncentiveAction(Enum):
    """Pro-social actions that earn reputation credit (Section 3.4)."""

    UPLOAD_REAL_FILE = "upload_real_file"
    VOTE = "vote"
    RANK_USER = "rank_user"
    DELETE_FAKE_FILE = "delete_fake_file"


@dataclass
class ActionCreditTracker:
    """Accumulates per-user incentive credit for pro-social actions.

    Credits are *behavioural* reputation inputs — they do not overwrite the
    trust matrices but feed the user-trust dimension (a well-behaved user
    becomes rateable even before anyone downloads from him), and give the
    simulator an auditable ledger of who earned what and why.
    """

    config: ReputationConfig = field(default=DEFAULT_CONFIG)
    _credits: Dict[str, float] = field(default_factory=dict)
    _counts: Dict[Tuple[str, IncentiveAction], int] = field(default_factory=dict)
    #: Optional write-ahead hook (see :data:`~repro.core.evaluation
    #: .JournalSink`): :meth:`record` emits before the balance moves.
    journal: Optional[JournalSink] = field(default=None, repr=False,
                                           compare=False)

    def record(self, user_id: str, action: IncentiveAction,
               magnitude: float = 1.0) -> float:
        """Credit ``user_id`` for one ``action``; returns the new balance."""
        if magnitude < 0:
            raise ValueError(f"magnitude must be >= 0, got {magnitude}")
        if self.journal is not None:
            self.journal("credit.record", {
                "user": user_id, "action": action.value,
                "magnitude": magnitude})
        credit = magnitude * {
            IncentiveAction.UPLOAD_REAL_FILE: self.config.upload_credit,
            IncentiveAction.VOTE: self.config.vote_credit,
            IncentiveAction.RANK_USER: self.config.rank_credit,
            IncentiveAction.DELETE_FAKE_FILE: self.config.delete_fake_credit,
        }[action]
        self._credits[user_id] = self._credits.get(user_id, 0.0) + credit
        key = (user_id, action)
        self._counts[key] = self._counts.get(key, 0) + 1
        return self._credits[user_id]

    def apply_record(self, kind: str, payload: Mapping[str, Any]) -> None:
        """Replay one journalled credit through the live ingest path."""
        if kind != "credit.record":
            raise ValueError(f"unknown credit record kind {kind!r}")
        self.record(payload["user"], IncentiveAction(payload["action"]),
                    payload["magnitude"])

    def credit(self, user_id: str) -> float:
        return self._credits.get(user_id, 0.0)

    def action_count(self, user_id: str, action: IncentiveAction) -> int:
        return self._counts.get((user_id, action), 0)

    def balances(self) -> Dict[str, float]:
        return dict(self._credits)

    def top_users(self, k: int = 10) -> List[Tuple[str, float]]:
        """The ``k`` users with the highest credit, descending."""
        ranked = sorted(self._credits.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]

"""Deterministic peer-space partitioning for the sharded trust domain.

The sharded pipeline (see :mod:`~repro.core.sharded_pipeline`) splits every
row-local structure — DM/UM accumulators, FM row fragments, TM row patches —
by the *owning* peer: row ``i`` of every matrix lives in the shard that owns
peer ``i``.  For that split to be reproducible the assignment must be a pure
function of the peer id and the shard count, never of process state:

* the hash is ``blake2b`` over the UTF-8 id (``hashlib``, not Python's
  ``hash()`` — the latter is salted per process by ``PYTHONHASHSEED`` and
  would scatter peers differently in every worker);
* two :class:`ShardMap` instances with the same ``shard_count`` agree on
  every id, across processes, platforms and runs;
* ``shard_count == 1`` degenerates to "everything in shard 0", which is how
  the sharded pipeline reproduces the monolithic one bit-for-bit.

:func:`shard_for_record` maps a journal record to the shard of the peer
whose row-local state it mutates, so durability tooling can annotate and
route WAL records without understanding each store's payload schema.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterable, List, Mapping, Optional

__all__ = ["ShardMap", "shard_owner", "shard_for_record"]

#: Stable spelling of the assignment function, stamped into snapshot
#: metadata so a future algorithm change is detectable, not silent.
SHARD_HASH_ALGORITHM = "blake2b64"

#: Journal record kind -> payload key naming the peer whose row-local state
#: the record mutates.  Kinds absent here (``ledger.prune``, ``eval.*``
#: pruning sweeps) touch many shards and have no single owner.
_RECORD_OWNER_KEYS = {
    "eval.retention": "user",
    "eval.vote": "user",
    "eval.implicit": "user",
    "eval.play": "user",
    "eval.remove": "user",
    "ledger.download": "downloader",
    "user.rate": "rater",
    "user.friend": "user",
    "user.blacklist": "user",
    "user.unfriend": "user",
    "user.unblacklist": "user",
    "credit.record": "user",
}


def _stable_hash(peer_id: str) -> int:
    """64-bit digest of the id; stable across processes and runs."""
    digest = hashlib.blake2b(peer_id.encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


class ShardMap:
    """Deterministic peer-id -> shard assignment over a fixed shard count.

    Assignments are memoised per instance (peers are re-looked-up on every
    refresh), but the memo is pure cache: :meth:`shard_of` is a function of
    ``(peer_id, shard_count)`` only.
    """

    def __init__(self, shard_count: int):
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        self.shard_count = shard_count
        self._memo: Dict[str, int] = {}

    def shard_of(self, peer_id: str) -> int:
        """The shard owning ``peer_id`` (and its rows in every matrix)."""
        shard = self._memo.get(peer_id)
        if shard is None:
            shard = (0 if self.shard_count == 1
                     else _stable_hash(peer_id) % self.shard_count)
            self._memo[peer_id] = shard
        return shard

    def partition(self, ids: Iterable[str]) -> Dict[int, List[str]]:
        """Split ``ids`` by owning shard; each bucket sorted, keys sorted.

        Only non-empty buckets appear, in ascending shard order — callers
        iterate the result directly and inherit canonical shard order.
        """
        buckets: Dict[int, List[str]] = {}
        for peer_id in sorted(set(ids)):
            buckets.setdefault(self.shard_of(peer_id), []).append(peer_id)
        return {shard: buckets[shard] for shard in sorted(buckets)}

    def assignment_digest(self, ids: Iterable[str]) -> str:
        """sha256 over the sorted ``(id, shard)`` assignment of ``ids``.

        Stamped into snapshot metadata: two nodes disagree on this digest
        iff they would route at least one peer differently.
        """
        digest = hashlib.sha256()
        for peer_id in sorted(set(ids)):
            digest.update(peer_id.encode("utf-8") + b"\x00")
            digest.update(str(self.shard_of(peer_id)).encode("ascii"))
            digest.update(b"\x00")
        return digest.hexdigest()

    def __repr__(self) -> str:
        return f"ShardMap(shard_count={self.shard_count})"


def shard_owner(kind: str, payload: Mapping[str, Any]) -> Optional[str]:
    """The peer whose row-local state a journal record mutates.

    ``None`` for record kinds without a single owner (``ledger.prune``
    affects every downloader with old entries).
    """
    key = _RECORD_OWNER_KEYS.get(kind)
    if key is None:
        return None
    owner = payload.get(key)
    return owner if isinstance(owner, str) else None


def shard_for_record(kind: str, payload: Mapping[str, Any],
                     shard_map: ShardMap) -> Optional[int]:
    """Shard index a journal record routes to, or ``None`` for global ones."""
    owner = shard_owner(kind, payload)
    if owner is None:
        return None
    return shard_map.shard_of(owner)

"""User-based direct trust (Section 3.1.3, Eq. 6).

Users can rate each other directly.  The paper supports three idioms:

* an explicit numeric rating ``UT_ij`` in ``[0, 1]``;
* a *friend list* — friends "should be assigned with a large UT";
* a *blacklist* — blacklisted users "should be assigned with zero".

Eq. 6 row-normalises ``UT`` into the user-based one-step matrix ``UM``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import fsum
from typing import Any, Dict, Iterable, Mapping, Optional, Set, Tuple

from ..lint.contracts import check_row_stochastic
from .evaluation import JournalSink
from .matrix import TrustMatrix

__all__ = ["UserTrustStore", "build_user_trust_matrix",
           "UserTrustAccumulator", "FRIEND_TRUST", "DEFAULT_RATING"]

# Value assigned to friend-list members ("a large UT").
FRIEND_TRUST = 1.0
# Value used when a rank event carries no magnitude.
DEFAULT_RATING = 0.5


@dataclass
class UserTrustStore:
    """Direct user-to-user ratings plus friend lists and blacklists.

    Blacklisting dominates: a blacklisted user's effective ``UT`` is zero no
    matter what rating or friendship existed before.
    """

    _ratings: Dict[Tuple[str, str], float] = field(default_factory=dict)
    _friends: Dict[str, Set[str]] = field(default_factory=dict)
    _blacklists: Dict[str, Set[str]] = field(default_factory=dict)
    #: Raters whose relationships changed since the last :meth:`clear_dirty`
    #: — each one names a UM row the incremental pipeline must re-derive.
    _dirty_raters: Set[str] = field(default_factory=set)
    #: Optional write-ahead hook (see :data:`~repro.core.evaluation
    #: .JournalSink`): mutators emit a record before the mutation lands.
    journal: Optional[JournalSink] = field(default=None, repr=False,
                                           compare=False)

    # ------------------------------------------------------------------ #
    # Mutation                                                           #
    # ------------------------------------------------------------------ #

    def rate(self, rater: str, ratee: str, rating: float = DEFAULT_RATING) -> None:
        """Record ``rater``'s numeric rating of ``ratee`` in [0, 1]."""
        if rater == ratee:
            raise ValueError("a user cannot rate itself")
        if not 0.0 <= rating <= 1.0:
            raise ValueError(f"rating must be in [0,1], got {rating}")
        if self.journal is not None:
            self.journal("user.rate", {"rater": rater, "ratee": ratee,
                                       "rating": rating})
        self._ratings[(rater, ratee)] = rating
        self._dirty_raters.add(rater)

    def add_friend(self, user: str, friend: str) -> None:
        if user == friend:
            raise ValueError("a user cannot befriend itself")
        if self.journal is not None:
            self.journal("user.friend", {"user": user, "friend": friend})
        self._friends.setdefault(user, set()).add(friend)
        # Friendship revokes a standing blacklist entry.
        self._blacklists.get(user, set()).discard(friend)
        self._dirty_raters.add(user)

    def add_to_blacklist(self, user: str, target: str) -> None:
        if user == target:
            raise ValueError("a user cannot blacklist itself")
        if self.journal is not None:
            self.journal("user.blacklist", {"user": user, "target": target})
        self._blacklists.setdefault(user, set()).add(target)
        self._friends.get(user, set()).discard(target)
        self._dirty_raters.add(user)

    def remove_friend(self, user: str, friend: str) -> None:
        if self.journal is not None:
            self.journal("user.unfriend", {"user": user, "friend": friend})
        self._friends.get(user, set()).discard(friend)
        self._dirty_raters.add(user)

    def remove_from_blacklist(self, user: str, target: str) -> None:
        if self.journal is not None:
            self.journal("user.unblacklist", {"user": user,
                                              "target": target})
        self._blacklists.get(user, set()).discard(target)
        self._dirty_raters.add(user)

    # ------------------------------------------------------------------ #
    # Journal replay                                                     #
    # ------------------------------------------------------------------ #

    def apply_record(self, kind: str, payload: Mapping[str, Any]) -> None:
        """Replay one journalled mutation through the live ingest path."""
        if kind == "user.rate":
            self.rate(payload["rater"], payload["ratee"], payload["rating"])
        elif kind == "user.friend":
            self.add_friend(payload["user"], payload["friend"])
        elif kind == "user.blacklist":
            self.add_to_blacklist(payload["user"], payload["target"])
        elif kind == "user.unfriend":
            self.remove_friend(payload["user"], payload["friend"])
        elif kind == "user.unblacklist":
            self.remove_from_blacklist(payload["user"], payload["target"])
        else:
            raise ValueError(f"unknown user-trust record kind {kind!r}")

    # ------------------------------------------------------------------ #
    # Delta tracking                                                     #
    # ------------------------------------------------------------------ #

    def dirty_raters(self) -> Set[str]:
        """Raters whose UM row inputs changed since the last clear."""
        return set(self._dirty_raters)

    @property
    def has_dirty(self) -> bool:
        return bool(self._dirty_raters)

    def clear_dirty(self) -> None:
        self._dirty_raters.clear()

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #

    def trust(self, user: str, other: str) -> Optional[float]:
        """Effective ``UT_user,other``; ``None`` when no relationship exists.

        Precedence: blacklist (0.0) > friendship (FRIEND_TRUST) > rating.
        """
        if other in self._blacklists.get(user, ()):
            return 0.0
        if other in self._friends.get(user, ()):
            return FRIEND_TRUST
        return self._ratings.get((user, other))

    def is_friend(self, user: str, other: str) -> bool:
        return other in self._friends.get(user, ())

    def is_blacklisted(self, user: str, other: str) -> bool:
        return other in self._blacklists.get(user, ())

    def friends_of(self, user: str) -> Set[str]:
        return set(self._friends.get(user, ()))

    def blacklist_of(self, user: str) -> Set[str]:
        return set(self._blacklists.get(user, ()))

    def raters(self) -> Set[str]:
        """All users who expressed any user-trust relationship."""
        users = {rater for rater, _ in self._ratings}
        users.update(self._friends)
        users.update(self._blacklists)
        return users

    def relationships_of(self, user: str) -> Dict[str, float]:
        """All effective non-None UT values expressed by ``user``."""
        targets: Set[str] = {ratee for rater, ratee in self._ratings if rater == user}
        targets.update(self._friends.get(user, ()))
        targets.update(self._blacklists.get(user, ()))
        result: Dict[str, float] = {}
        for other in sorted(targets):
            value = self.trust(user, other)
            if value is not None:
                result[other] = value
        return result

    def rank_count(self, user: str) -> int:
        """Number of explicit rank/rating actions ``user`` has performed."""
        explicit = sum(1 for rater, _ in self._ratings if rater == user)
        return (explicit + len(self._friends.get(user, ()))
                + len(self._blacklists.get(user, ())))


def build_user_trust_matrix(store: UserTrustStore) -> TrustMatrix:
    """Eq. 6: the row-normalised user-based one-step matrix ``UM``.

    Blacklisted entries are zero and therefore vanish under normalisation,
    exactly as the paper intends ("they should be assigned with zero").
    """
    raw = TrustMatrix()
    # Sorted: raters() is a set; row insertion order feeds downstream
    # matmul accumulation order and must not depend on PYTHONHASHSEED.
    for user in sorted(store.raters()):
        for other, value in store.relationships_of(user).items():
            if value > 0.0:
                raw.set(user, other, value)
    matrix = raw.row_normalized()
    check_row_stochastic(matrix, name="UM")
    return matrix


class UserTrustAccumulator:
    """Patch-based UM builder: re-derives only dirty raters' rows.

    A rater's UM row (Eq. 6) depends only on their own ratings, friend list
    and blacklist, so rows are independent: the accumulator keeps the
    normalised matrix between refreshes and recomputes exactly the rows
    named dirty.  Per-row arithmetic mirrors
    :func:`build_user_trust_matrix` (sorted targets, ``value > 0`` filter,
    fsum normalisation), so a patched row is bit-identical to a freshly
    built one.
    """

    def __init__(self) -> None:
        self.matrix = TrustMatrix()
        #: Rows changed by the most recent :meth:`refresh`.
        self.last_dirty_rows: Set[str] = set()

    def refresh(self, store: UserTrustStore,
                dirty_raters: Iterable[str]) -> Set[str]:
        """Re-derive the rows of ``dirty_raters``; returns rows touched."""
        touched: Set[str] = set()
        for rater in sorted(set(dirty_raters)):
            raw_row = {other: value
                       for other, value in store.relationships_of(rater).items()
                       if value > 0.0}
            total = fsum(raw_row.values())
            if total > 0:
                self.matrix.replace_row(
                    rater, {j: value / total for j, value in raw_row.items()})
            else:
                self.matrix.replace_row(rater, {})
            touched.add(rater)
        self.last_dirty_rows = touched
        check_row_stochastic(self.matrix, name="UM")
        return touched

    def rebuild(self, store: UserTrustStore) -> Set[str]:
        """Full pass: forget everything and re-derive every row."""
        stale_rows = set(self.matrix.row_ids())
        self.matrix = TrustMatrix()
        self.last_dirty_rows = self.refresh(store, store.raters()) | stale_rows
        return self.last_dirty_rows

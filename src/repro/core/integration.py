"""Integration of the trust dimensions into the one-step matrix TM (Eq. 7).

::

    TM = alpha * FM + beta * DM + gamma * UM     (alpha + beta + gamma = 1)

The paper notes "when there are more methods to get direct trust
relationship, this equation can be extended easily"; :class:`TrustDimension`
plus :func:`integrate_dimensions` implement that extensibility — the three
canonical dimensions are just the default registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..lint.contracts import check_row_stochastic, check_simplex
from .config import DEFAULT_CONFIG, ReputationConfig
from .evaluation import EvaluationStore
from .file_trust import build_file_trust_matrix
from .matrix import TrustMatrix
from .user_trust import UserTrustStore, build_user_trust_matrix
from .volume_trust import DownloadLedger, build_volume_trust_matrix

__all__ = ["TrustDimension", "integrate_dimensions", "build_one_step_matrix"]

_WEIGHT_TOLERANCE = 1e-9


@dataclass(frozen=True)
class TrustDimension:
    """One direct-trust dimension: a name, a weight and its one-step matrix."""

    name: str
    weight: float
    matrix: TrustMatrix

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"dimension weight must be >= 0, got {self.weight}")


def integrate_dimensions(dimensions: Sequence[TrustDimension],
                         require_normalized: bool = True) -> TrustMatrix:
    """Generalised Eq. 7: weighted sum of any number of one-step matrices.

    With ``require_normalized`` the weights must sum to 1 (the paper's
    constraint); disable it for exploratory sweeps.
    """
    if not dimensions:
        raise ValueError("at least one trust dimension is required")
    total = sum(dimension.weight for dimension in dimensions)
    if require_normalized and abs(total - 1.0) > _WEIGHT_TOLERANCE:
        raise ValueError(
            f"dimension weights must sum to 1 (Eq. 7), got {total}")
    integrated = TrustMatrix.weighted_sum(
        (dimension.weight, dimension.matrix) for dimension in dimensions)
    if require_normalized:
        # Behind REPRO_CHECK_INVARIANTS: with simplex weights over
        # row-stochastic dimensions, TM rows can only be sub-stochastic.
        check_row_stochastic(integrated, name="TM", strict=False)
    return integrated


def build_one_step_matrix(evaluations: EvaluationStore,
                          ledger: Optional[DownloadLedger] = None,
                          user_trust: Optional[UserTrustStore] = None,
                          config: ReputationConfig = DEFAULT_CONFIG
                          ) -> TrustMatrix:
    """Build ``TM = alpha*FM + beta*DM + gamma*UM`` from the raw stores.

    Dimensions whose store is absent (or whose weight is zero) contribute
    nothing; the remaining weights are used as configured, *not* re-scaled —
    a deliberately conservative choice that keeps rows sub-stochastic when a
    dimension is missing rather than silently inflating the others.
    """
    dimensions: List[TrustDimension] = []
    if config.alpha > 0:
        dimensions.append(TrustDimension(
            "file", config.alpha, build_file_trust_matrix(evaluations, config)))
    if config.beta > 0 and ledger is not None:
        dimensions.append(TrustDimension(
            "volume", config.beta,
            build_volume_trust_matrix(ledger, evaluations, config)))
    if config.gamma > 0 and user_trust is not None:
        dimensions.append(TrustDimension(
            "user", config.gamma, build_user_trust_matrix(user_trust)))
    if not dimensions:
        return TrustMatrix()
    check_simplex((config.alpha, config.beta, config.gamma),
                  name="(alpha, beta, gamma)")
    integrated = integrate_dimensions(dimensions, require_normalized=False)
    check_row_stochastic(integrated, name="TM", strict=False)
    return integrated

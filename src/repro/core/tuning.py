"""Weight tuning: the paper's future work, made executable.

Section 5: "In the future, we need to do more experiments to improve the
equations and **choose the weight values** in our work."  This module does
those experiments: given an objective function over a
:class:`~repro.core.config.ReputationConfig`, it sweeps

* the Eq. 1 blend (eta, rho = 1 - eta) over a grid, and
* the Eq. 7 dimension weights (alpha, beta, gamma) over a simplex lattice,

and returns the best configuration with the full trace of evaluated points.
Two ready-made objectives cover the paper's goals: separating known-good
from known-bad users, and ranking fake files below real ones (AUC).

Everything is deterministic; objectives are called once per grid point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Sequence, Tuple

from ..lint.contracts import check_simplex
from .config import DEFAULT_CONFIG, ReputationConfig
from .matrix import TrustMatrix

__all__ = [
    "TuningResult",
    "simplex_grid",
    "sweep_eta",
    "sweep_dimension_weights",
    "separation_objective",
    "fake_ranking_objective",
]

Objective = Callable[[ReputationConfig], float]


@dataclass(frozen=True)
class TuningPoint:
    """One evaluated configuration."""

    config: ReputationConfig
    score: float


@dataclass
class TuningResult:
    """Outcome of a sweep: the winner plus every evaluated point."""

    best: TuningPoint
    points: List[TuningPoint] = field(default_factory=list)

    @property
    def best_config(self) -> ReputationConfig:
        return self.best.config

    @property
    def best_score(self) -> float:
        return self.best.score

    def table_rows(self) -> List[List[float]]:
        """(eta, alpha, beta, gamma, score) rows for report rendering."""
        return [[point.config.eta, point.config.alpha, point.config.beta,
                 point.config.gamma, point.score]
                for point in self.points]


def simplex_grid(resolution: int) -> List[Tuple[float, float, float]]:
    """All (a, b, c) with a+b+c = 1 on a lattice of step 1/resolution."""
    if resolution < 1:
        raise ValueError(f"resolution must be >= 1, got {resolution}")
    points = []
    for i in range(resolution + 1):
        for j in range(resolution + 1 - i):
            k = resolution - i - j
            point = (i / resolution, j / resolution, k / resolution)
            check_simplex(point, name="simplex_grid point")
            points.append(point)
    return points


def _run_sweep(configs: Sequence[ReputationConfig],
               objective: Objective) -> TuningResult:
    if not configs:
        raise ValueError("no configurations to sweep")
    points = [TuningPoint(config=config, score=objective(config))
              for config in configs]
    best = max(points, key=lambda point: point.score)
    return TuningResult(best=best, points=points)


def sweep_eta(objective: Objective,
              base: ReputationConfig = DEFAULT_CONFIG,
              steps: int = 10) -> TuningResult:
    """Sweep the Eq. 1 blend eta over {0, 1/steps, ..., 1}."""
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    for i in range(steps + 1):
        check_simplex((i / steps, 1.0 - i / steps), name="(eta, rho)")
    configs = [base.replace(eta=i / steps, rho=1.0 - i / steps)
               for i in range(steps + 1)]
    return _run_sweep(configs, objective)


def sweep_dimension_weights(objective: Objective,
                            base: ReputationConfig = DEFAULT_CONFIG,
                            resolution: int = 4) -> TuningResult:
    """Sweep Eq. 7's (alpha, beta, gamma) over a simplex lattice."""
    configs = [base.replace(alpha=alpha, beta=beta, gamma=gamma)
               for alpha, beta, gamma in simplex_grid(resolution)]
    return _run_sweep(configs, objective)


# ---------------------------------------------------------------------- #
# Ready-made objectives                                                  #
# ---------------------------------------------------------------------- #

def separation_objective(build_reputation: Callable[[ReputationConfig],
                                                    TrustMatrix],
                         observers: Sequence[str],
                         good: Sequence[str],
                         bad: Sequence[str]) -> Objective:
    """Score = mean reputation of ``good`` minus ``bad`` in observers' eyes.

    ``build_reputation`` maps a candidate config to the RM it induces on
    some fixed behavioural history (the caller closes over its stores).
    """
    if not observers or not good or not bad:
        raise ValueError("observers, good and bad must all be non-empty")

    def objective(config: ReputationConfig) -> float:
        reputation = build_reputation(config)
        good_total = bad_total = 0.0
        for observer in observers:
            row = reputation.row(observer)
            good_total += sum(row.get(target, 0.0) for target in good
                              if target != observer)
            bad_total += sum(row.get(target, 0.0) for target in bad
                             if target != observer)
        good_mean = good_total / (len(observers) * len(good))
        bad_mean = bad_total / (len(observers) * len(bad))
        return good_mean - bad_mean

    return objective


def fake_ranking_objective(score_files: Callable[[ReputationConfig],
                                                 Mapping[str, float]],
                           ground_truth: Mapping[str, bool]) -> Objective:
    """Score = AUC of ranking fakes below reals under the candidate config.

    ``score_files`` maps a config to per-file Eq. 9 scores (lower = more
    likely fake); ``ground_truth[file] = True`` marks real fakes.
    """
    from ..analysis.classification import auc, roc_points

    def objective(config: ReputationConfig) -> float:
        scores = dict(score_files(config))
        truth = {file_id: ground_truth[file_id]
                 for file_id in scores if file_id in ground_truth}
        if not truth:
            return 0.0
        return auc(roc_points({f: scores[f] for f in truth}, truth))

    return objective

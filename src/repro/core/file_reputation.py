"""File reputation and fake-file identification (Section 3.3, Eq. 9).

Before downloading, a user gathers other users' evaluations of the file and
weighs each by his *own* reputation view of the evaluator::

    R_f = sum_{j in U} RM_ij * E_jf / sum_{j in U} RM_ij     (Eq. 9)

Because only users who both perform well *and* give honest feedback earn
reputation, the same RM doubles as feedback trustworthiness — no separate
credibility score is needed.  The user then compares ``R_f`` against a
self-chosen threshold to decide whether the file is fake.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from .config import DEFAULT_CONFIG, ReputationConfig
from .evaluation import EvaluationStore
from .matrix import TrustMatrix

__all__ = ["file_reputation", "FileJudgement", "judge_file"]


def file_reputation(reputation: TrustMatrix, observer: str,
                    evaluations: Mapping[str, float]) -> Optional[float]:
    """Eq. 9: reputation-weighted average evaluation of a file.

    ``evaluations`` maps evaluator id -> that user's Eq. 1 evaluation of the
    file.  Returns ``None`` when the observer has no reputation path to any
    evaluator (the denominator would be zero) — the caller must fall back to
    another policy (e.g. optimistic download or unweighted average).
    """
    numerator = 0.0
    denominator = 0.0
    for evaluator, evaluation in evaluations.items():
        if evaluator == observer:
            continue
        weight = reputation.get(observer, evaluator)
        if weight > 0.0:
            numerator += weight * evaluation
            denominator += weight
    if denominator == 0.0:
        return None
    return numerator / denominator


@dataclass(frozen=True)
class FileJudgement:
    """Outcome of an observer judging one file before download."""

    file_id: str
    reputation: Optional[float]
    threshold: float
    #: True = proceed with download, False = reject as fake.
    accept: bool
    #: True when no reputation-weighted evidence was available and the
    #: decision fell back to the default policy.
    blind: bool


def judge_file(reputation: TrustMatrix, store: EvaluationStore,
               observer: str, file_id: str,
               threshold: Optional[float] = None,
               config: ReputationConfig = DEFAULT_CONFIG,
               accept_when_blind: bool = True) -> FileJudgement:
    """Decide whether ``observer`` should download ``file_id``.

    ``threshold`` defaults to the configured system-wide value; the paper
    lets each user set his own, so callers may pass a per-user value.  With
    no usable evidence the decision follows ``accept_when_blind`` (an
    optimistic default matching pre-reputation systems).
    """
    effective_threshold = (threshold if threshold is not None
                           else config.fake_file_threshold)
    evaluations = store.file_evaluations(file_id)
    score = file_reputation(reputation, observer, evaluations)
    if score is None:
        return FileJudgement(file_id=file_id, reputation=None,
                             threshold=effective_threshold,
                             accept=accept_when_blind, blind=True)
    return FileJudgement(file_id=file_id, reputation=score,
                         threshold=effective_threshold,
                         accept=score >= effective_threshold, blind=False)

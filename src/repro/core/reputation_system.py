"""The multi-dimensional reputation system façade.

:class:`MultiDimensionalReputationSystem` is the paper's contribution as a
single object.  It ingests the raw behavioural events of a P2P file-sharing
system —

* downloads (who got which file, what size, from whom),
* file retention updates and explicit votes,
* user ranks, friendships and blacklistings,
* fake-file deletions,

— maintains the evaluation / download / user-trust stores, and answers the
three questions the paper's mechanisms need:

1. *user reputation* (Eqs. 2-8): pairwise ``RM_ij`` and a global projection;
2. *file reputation* (Eq. 9): is this file fake?
3. *service level* (Section 3.4): what queue offset and bandwidth does this
   requester deserve?

Matrix construction is cached and invalidated on writes, so bursts of event
ingestion pay the (dominant) matrix cost once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..obs.recorder import NULL_RECORDER, NullRecorder
from .config import DEFAULT_CONFIG, ReputationConfig
from .evaluation import EvaluationStore
from .file_reputation import FileJudgement, judge_file
from .incentive import (ActionCreditTracker, IncentiveAction,
                        ServiceDifferentiator, ServiceLevel)
from .integration import build_one_step_matrix
from .matrix import TrustMatrix
from .multitrust import (MultiTierView, compute_reputation_matrix,
                         global_reputation_vector)
from .user_trust import UserTrustStore
from .volume_trust import DownloadLedger

__all__ = ["MultiDimensionalReputationSystem", "RefreshView"]


@dataclass(frozen=True)
class RefreshView:
    """Zero-copy window onto the matrices of one refresh.

    Holds references to the system's *cached* ``TM`` and ``RM`` — building
    one allocates nothing beyond the dataclass itself, and consumers read
    rows through :meth:`TrustMatrix.row_view`.  The per-refresh timeline
    instrumentation samples reputations and trust edges through this view,
    so observability never copies full matrices.
    """

    trust: TrustMatrix
    reputation: TrustMatrix

    def top_trust_edges(self, per_row: int = 6, min_value: float = 1e-9
                        ) -> Iterator[Tuple[str, str, float]]:
        """Strongest ``per_row`` out-edges of ``TM`` per truster, sorted.

        Rows iterate in sorted truster order; within a row, edges sort by
        descending value then trustee id — fully deterministic.
        """
        if per_row < 1:
            raise ValueError(f"per_row must be >= 1, got {per_row}")
        for truster in sorted(self.trust.row_ids()):
            row = self.trust.row_view(truster)
            strongest = sorted(row.items(),
                               key=lambda item: (-item[1], item[0]))
            for trustee, value in strongest[:per_row]:
                if value >= min_value:
                    yield truster, trustee, value

#: Weight of global incentive credit relative to pairwise reputation when
#: computing the effective reputation used for service differentiation.  The
#: pairwise term dominates; credit breaks ties and bootstraps newcomers who
#: behave well before anyone has downloaded from them.
CREDIT_BONUS_WEIGHT = 0.1


class MultiDimensionalReputationSystem:
    """Facade over the full trust + incentive mechanism of the paper."""

    def __init__(self, config: ReputationConfig = DEFAULT_CONFIG,
                 auto_refresh: bool = True,
                 recorder: NullRecorder = NULL_RECORDER):
        self.config = config
        #: Observability sink; the default NULL_RECORDER ignores everything.
        self.recorder = recorder
        #: With ``auto_refresh`` every write invalidates the cached matrices
        #: (always-fresh queries, O(rebuild) per write burst).  Simulations
        #: ingesting thousands of events set it to False and call
        #: :meth:`recompute` at their maintenance cadence instead.
        self.auto_refresh = auto_refresh
        self.evaluations = EvaluationStore(config=config)
        self.ledger = DownloadLedger()
        self.user_trust = UserTrustStore()
        self.credits = ActionCreditTracker(config=config)
        self._one_step: Optional[TrustMatrix] = None
        self._reputation: Optional[TrustMatrix] = None
        self._tier_view: Optional[MultiTierView] = None

    # ------------------------------------------------------------------ #
    # Event ingestion                                                    #
    # ------------------------------------------------------------------ #

    def _invalidate(self) -> None:
        if self.auto_refresh:
            self.recompute()

    def recompute(self) -> None:
        """Drop cached matrices so the next query rebuilds them."""
        self._one_step = None
        self._reputation = None
        self._tier_view = None

    def record_download(self, downloader: str, uploader: str, file_id: str,
                        size_bytes: float, timestamp: float = 0.0) -> None:
        """A completed download; feeds the volume-trust dimension (Eq. 4)."""
        self.ledger.record_download(downloader, uploader, file_id,
                                    size_bytes, timestamp)
        self._invalidate()

    def record_retention(self, user_id: str, file_id: str,
                         retention_seconds: float,
                         timestamp: float = 0.0) -> None:
        """Refresh a file's implicit evaluation from its retention time."""
        self.evaluations.record_retention(user_id, file_id,
                                          retention_seconds, timestamp)
        self._invalidate()

    def record_vote(self, user_id: str, file_id: str, vote: float,
                    timestamp: float = 0.0) -> None:
        """An explicit vote; also earns incentive credit (Section 3.4)."""
        self.evaluations.record_vote(user_id, file_id, vote, timestamp)
        self.credits.record(user_id, IncentiveAction.VOTE)
        self._invalidate()

    def record_play(self, user_id: str, file_id: str, play_fraction: float,
                    timestamp: float = 0.0) -> None:
        """Play-time implicit evaluation for playable media (Section 1)."""
        self.evaluations.record_play(user_id, file_id, play_fraction,
                                     timestamp)
        self._invalidate()

    def record_rank(self, rater: str, ratee: str, rating: float) -> None:
        """A direct user rating; earns rank credit."""
        self.user_trust.rate(rater, ratee, rating)
        self.credits.record(rater, IncentiveAction.RANK_USER)
        self._invalidate()

    def add_friend(self, user: str, friend: str) -> None:
        self.user_trust.add_friend(user, friend)
        self._invalidate()

    def add_to_blacklist(self, user: str, target: str) -> None:
        self.user_trust.add_to_blacklist(user, target)
        self._invalidate()

    def record_real_upload(self, uploader: str, size_bytes: float = 1.0) -> None:
        """Credit an uploader for serving a file later judged real."""
        self.credits.record(uploader, IncentiveAction.UPLOAD_REAL_FILE)

    def record_fake_deletion(self, user_id: str, file_id: str,
                             timestamp: float = 0.0) -> None:
        """The user deleted a fake file: credit + implicit evaluation of 0."""
        self.credits.record(user_id, IncentiveAction.DELETE_FAKE_FILE)
        self.evaluations.record_implicit(user_id, file_id, 0.0, timestamp)
        self._invalidate()

    def prune_before(self, cutoff_timestamp: float) -> int:
        """Section 4.3: drop evaluations and downloads older than cutoff."""
        removed = self.evaluations.prune_older_than(cutoff_timestamp)
        removed += self.ledger.prune_older_than(cutoff_timestamp)
        if removed:
            self._invalidate()
        return removed

    # ------------------------------------------------------------------ #
    # Matrices                                                           #
    # ------------------------------------------------------------------ #

    def one_step_matrix(self) -> TrustMatrix:
        """The integrated one-step trust matrix ``TM`` (Eq. 7), cached."""
        if self._one_step is None:
            self._one_step = build_one_step_matrix(
                self.evaluations, self.ledger, self.user_trust, self.config)
        return self._one_step

    def reputation_matrix(self, steps: Optional[int] = None) -> TrustMatrix:
        """The multi-trust reputation matrix ``RM = TM^n`` (Eq. 8), cached."""
        if steps is not None and steps != self.config.multitrust_steps:
            return compute_reputation_matrix(self.one_step_matrix(), steps,
                                             self.config,
                                             recorder=self.recorder)
        if self._reputation is None:
            self._reputation = compute_reputation_matrix(
                self.one_step_matrix(), None, self.config,
                recorder=self.recorder)
        return self._reputation

    def refresh_view(self) -> RefreshView:
        """Zero-copy view of the current cached ``TM``/``RM`` pair.

        Both matrices come from the caches (building them on first access),
        so taking a view at every maintenance tick costs nothing beyond the
        refresh the tick performs anyway.
        """
        return RefreshView(trust=self.one_step_matrix(),
                           reputation=self.reputation_matrix())

    def tier_view(self, max_tier: int = 3) -> MultiTierView:
        """Multi-tier view over the current one-step matrix."""
        if self._tier_view is None or self._tier_view.max_tier != max_tier:
            self._tier_view = MultiTierView(self.one_step_matrix(), max_tier)
        return self._tier_view

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #

    def user_reputation(self, observer: str, target: str) -> float:
        """Pairwise reputation ``RM_observer,target``."""
        return self.reputation_matrix().get(observer, target)

    def effective_reputation(self, observer: str, target: str) -> float:
        """Pairwise reputation plus a small global incentive-credit bonus.

        The bonus bootstraps well-behaved newcomers: voting/ranking/cleanup
        earn service priority even before a trust path exists.
        """
        pairwise = self.user_reputation(observer, target)
        balances = self.credits.balances()
        if not balances:
            return pairwise
        max_credit = max(balances.values())
        if max_credit <= 0:
            return pairwise
        bonus = self.credits.credit(target) / max_credit
        return pairwise + CREDIT_BONUS_WEIGHT * bonus * self._reference(observer)

    def global_reputation(self) -> Dict[str, float]:
        """Column-mean projection of RM (for baseline comparisons)."""
        return global_reputation_vector(self.reputation_matrix())

    def judge_file(self, observer: str, file_id: str,
                   threshold: Optional[float] = None,
                   accept_when_blind: bool = True) -> FileJudgement:
        """Eq. 9 + threshold: should ``observer`` download ``file_id``?"""
        return judge_file(self.reputation_matrix(), self.evaluations,
                          observer, file_id, threshold, self.config,
                          accept_when_blind)

    def _reference(self, observer: str) -> float:
        """Reference reputation scale for the observer (his max row entry)."""
        row = self.reputation_matrix().row(observer)
        if not row:
            return 1.0
        return max(row.values())

    def service_level(self, observer: str, requester: str) -> ServiceLevel:
        """Section 3.4: the service ``observer`` should grant ``requester``."""
        differentiator = ServiceDifferentiator(
            self.config, reference_reputation=max(self._reference(observer), 1e-12))
        return differentiator.service_level(
            requester, self.effective_reputation(observer, requester))

    def order_request_queue(self, observer: str,
                            requests: Sequence[Tuple[str, float]]
                            ) -> List[Tuple[str, float]]:
        """Order ``(requester, arrival_time)`` pairs by effective time.

        High-reputation requesters receive a negative offset and move ahead;
        ties (including all-zero reputations) preserve arrival order.
        """
        differentiator = ServiceDifferentiator(
            self.config, reference_reputation=max(self._reference(observer), 1e-12))
        annotated = [
            (requester, arrival,
             self.effective_reputation(observer, requester))
            for requester, arrival in requests
        ]
        return differentiator.order_queue(annotated)

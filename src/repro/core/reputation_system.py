"""The multi-dimensional reputation system façade.

:class:`MultiDimensionalReputationSystem` is the paper's contribution as a
single object.  It ingests the raw behavioural events of a P2P file-sharing
system —

* downloads (who got which file, what size, from whom),
* file retention updates and explicit votes,
* user ranks, friendships and blacklistings,
* fake-file deletions,

— maintains the evaluation / download / user-trust stores, and answers the
three questions the paper's mechanisms need:

1. *user reputation* (Eqs. 2-8): pairwise ``RM_ij`` and a global projection;
2. *file reputation* (Eq. 9): is this file fake?
3. *service level* (Section 3.4): what queue offset and bandwidth does this
   requester deserve?

Matrix construction is owned by the :class:`~repro.core.pipeline.TrustPipeline`:
stores accumulate per-entity dirty sets, and a refresh re-derives only the
rows those deltas touch, bit-identical to a full rebuild.  The façade keeps
the staleness policy — with ``auto_refresh`` every write marks the matrices
stale (always-fresh queries); simulations set it to False and call
:meth:`recompute` at their maintenance cadence instead.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..obs.recorder import NULL_RECORDER, NullRecorder
from .config import DEFAULT_CONFIG, ReputationConfig
from .evaluation import EvaluationStore
from .file_reputation import FileJudgement, judge_file
from .incentive import (ActionCreditTracker, IncentiveAction,
                        ServiceDifferentiator, ServiceLevel)
from .matrix import TrustMatrix
from .multitrust import MultiTierView, global_reputation_vector
from .pipeline import RefreshView, TrustPipeline
from .sharded_pipeline import ShardedTrustPipeline
from .user_trust import UserTrustStore
from .volume_trust import DownloadLedger

__all__ = ["MultiDimensionalReputationSystem", "RefreshView"]

#: Weight of global incentive credit relative to pairwise reputation when
#: computing the effective reputation used for service differentiation.  The
#: pairwise term dominates; credit breaks ties and bootstraps newcomers who
#: behave well before anyone has downloaded from them.
CREDIT_BONUS_WEIGHT = 0.1


class MultiDimensionalReputationSystem:
    """Facade over the full trust + incentive mechanism of the paper."""

    def __init__(self, config: ReputationConfig = DEFAULT_CONFIG,
                 auto_refresh: bool = True,
                 recorder: NullRecorder = NULL_RECORDER):
        self.config = config
        self._recorder = recorder
        #: With ``auto_refresh`` every write marks the matrices stale
        #: (always-fresh queries, O(delta) per write burst).  Simulations
        #: ingesting thousands of events set it to False and call
        #: :meth:`recompute` at their maintenance cadence instead.
        self.auto_refresh = auto_refresh
        self.evaluations = EvaluationStore(config=config)
        self.ledger = DownloadLedger()
        self.user_trust = UserTrustStore()
        self.credits = ActionCreditTracker(config=config)
        #: The incremental compute path from stores to ``TM``/``RM``.
        #: ``config.shards > 1`` switches to the shard-partitioned pipeline;
        #: both expose the same surface and publish bit-identical matrices.
        self.pipeline: Union[TrustPipeline, ShardedTrustPipeline] = (
            ShardedTrustPipeline(self.evaluations, self.ledger,
                                 self.user_trust, config, recorder)
            if config.shards > 1
            else TrustPipeline(self.evaluations, self.ledger,
                               self.user_trust, config, recorder))
        self._stale = True
        self._tier_view: Optional[MultiTierView] = None
        self._tier_version = -1

    def close(self) -> None:
        """Release pipeline resources (shard patch workers); idempotent.

        Only the sharded pipeline holds anything worth releasing; the
        monolithic one makes this a no-op, so callers can close
        unconditionally.
        """
        if isinstance(self.pipeline, ShardedTrustPipeline):
            self.pipeline.close()

    @property
    def recorder(self) -> NullRecorder:
        """Observability sink; the default NULL_RECORDER ignores everything."""
        return self._recorder

    @recorder.setter
    def recorder(self, recorder: NullRecorder) -> None:
        # Mechanisms bind a live recorder after construction; the pipeline
        # must follow or its pipeline_refresh events vanish into the null.
        self._recorder = recorder
        self.pipeline.recorder = recorder

    # ------------------------------------------------------------------ #
    # Event ingestion                                                    #
    # ------------------------------------------------------------------ #

    def _invalidate(self) -> None:
        if self.auto_refresh:
            self._stale = True

    def recompute(self) -> None:
        """Mark cached matrices stale so the next query refreshes them.

        The stores track their deltas regardless of ``auto_refresh``, so
        the refresh this triggers re-derives only what actually changed —
        with results bit-identical to a from-scratch rebuild.
        """
        self._stale = True

    def record_download(self, downloader: str, uploader: str, file_id: str,
                        size_bytes: float, timestamp: float = 0.0) -> None:
        """A completed download; feeds the volume-trust dimension (Eq. 4)."""
        self.ledger.record_download(downloader, uploader, file_id,
                                    size_bytes, timestamp)
        self._invalidate()

    def record_retention(self, user_id: str, file_id: str,
                         retention_seconds: float,
                         timestamp: float = 0.0) -> None:
        """Refresh a file's implicit evaluation from its retention time."""
        self.evaluations.record_retention(user_id, file_id,
                                          retention_seconds, timestamp)
        self._invalidate()

    def record_vote(self, user_id: str, file_id: str, vote: float,
                    timestamp: float = 0.0) -> None:
        """An explicit vote; also earns incentive credit (Section 3.4)."""
        self.evaluations.record_vote(user_id, file_id, vote, timestamp)
        self.credits.record(user_id, IncentiveAction.VOTE)
        self._invalidate()

    def record_play(self, user_id: str, file_id: str, play_fraction: float,
                    timestamp: float = 0.0) -> None:
        """Play-time implicit evaluation for playable media (Section 1)."""
        self.evaluations.record_play(user_id, file_id, play_fraction,
                                     timestamp)
        self._invalidate()

    def record_rank(self, rater: str, ratee: str, rating: float) -> None:
        """A direct user rating; earns rank credit."""
        self.user_trust.rate(rater, ratee, rating)
        self.credits.record(rater, IncentiveAction.RANK_USER)
        self._invalidate()

    def add_friend(self, user: str, friend: str) -> None:
        self.user_trust.add_friend(user, friend)
        self._invalidate()

    def add_to_blacklist(self, user: str, target: str) -> None:
        self.user_trust.add_to_blacklist(user, target)
        self._invalidate()

    def record_real_upload(self, uploader: str, size_bytes: float = 1.0) -> None:
        """Credit an uploader for serving a file later judged real."""
        self.credits.record(uploader, IncentiveAction.UPLOAD_REAL_FILE)

    def record_fake_deletion(self, user_id: str, file_id: str,
                             timestamp: float = 0.0) -> None:
        """The user deleted a fake file: credit + implicit evaluation of 0."""
        self.credits.record(user_id, IncentiveAction.DELETE_FAKE_FILE)
        self.evaluations.record_implicit(user_id, file_id, 0.0, timestamp)
        self._invalidate()

    def apply_record(self, kind: str, payload: Mapping[str, Any]) -> None:
        """Apply one journalled store mutation through the live ingest path.

        Records are routed by kind prefix to the store that emitted them
        (``eval.`` / ``ledger.`` / ``user.`` / ``credit.``), re-entering the
        exact mutators a live system runs — dirty sets and all — so WAL
        replay drives the incremental pipeline identically to never having
        crashed.  Credit records do not touch the matrices and therefore do
        not invalidate them, mirroring the live write paths.
        """
        if kind.startswith("eval."):
            self.evaluations.apply_record(kind, payload)
        elif kind.startswith("ledger."):
            self.ledger.apply_record(kind, payload)
        elif kind.startswith("user."):
            self.user_trust.apply_record(kind, payload)
        elif kind.startswith("credit."):
            self.credits.apply_record(kind, payload)
            return
        else:
            raise ValueError(f"unknown journal record kind {kind!r}")
        self._invalidate()

    def prune_before(self, cutoff_timestamp: float) -> int:
        """Section 4.3: drop evaluations and downloads older than cutoff."""
        removed = self.evaluations.prune_older_than(cutoff_timestamp)
        removed += self.ledger.prune_older_than(cutoff_timestamp)
        if removed:
            self._invalidate()
        return removed

    # ------------------------------------------------------------------ #
    # Matrices                                                           #
    # ------------------------------------------------------------------ #

    def _ensure_fresh(self) -> None:
        if self._stale:
            self.pipeline.refresh()
            self._stale = False

    def one_step_matrix(self) -> TrustMatrix:
        """The integrated one-step trust matrix ``TM`` (Eq. 7), cached."""
        self._ensure_fresh()
        return self.pipeline.trust

    def reputation_matrix(self, steps: Optional[int] = None) -> TrustMatrix:
        """The multi-trust reputation matrix ``RM = TM^n`` (Eq. 8), cached.

        ``steps`` overrides ``config.multitrust_steps``; overridden powers
        are cached per step count until the next refresh.
        """
        self._ensure_fresh()
        if steps is not None and steps != self.config.multitrust_steps:
            return self.pipeline.reputation_at(steps)
        return self.pipeline.reputation

    def refresh_view(self) -> RefreshView:
        """Zero-copy view of the current ``TM``/``RM`` pair.

        Both matrices come from the pipeline (refreshing them if stale),
        so taking a view at every maintenance tick costs nothing beyond
        the refresh the tick performs anyway.
        """
        self._ensure_fresh()
        return self.pipeline.view()

    def tier_view(self, max_tier: int = 3) -> MultiTierView:
        """Multi-tier view over the current one-step matrix."""
        self._ensure_fresh()
        if (self._tier_view is None or self._tier_view.max_tier != max_tier
                or self._tier_version != self.pipeline.version):
            self._tier_view = MultiTierView(self.pipeline.trust, max_tier)
            self._tier_version = self.pipeline.version
        return self._tier_view

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #

    def user_reputation(self, observer: str, target: str) -> float:
        """Pairwise reputation ``RM_observer,target``."""
        return self.reputation_matrix().get(observer, target)

    def effective_reputation(self, observer: str, target: str) -> float:
        """Pairwise reputation plus a small global incentive-credit bonus.

        The bonus bootstraps well-behaved newcomers: voting/ranking/cleanup
        earn service priority even before a trust path exists.
        """
        reputation = self.reputation_matrix()
        return self._effective_reputation(
            reputation, observer, target, self._max_credit(),
            self._reference_in(reputation, observer))

    def global_reputation(self) -> Dict[str, float]:
        """Column-mean projection of RM (for baseline comparisons)."""
        return global_reputation_vector(self.reputation_matrix())

    def judge_file(self, observer: str, file_id: str,
                   threshold: Optional[float] = None,
                   accept_when_blind: bool = True) -> FileJudgement:
        """Eq. 9 + threshold: should ``observer`` download ``file_id``?"""
        return judge_file(self.reputation_matrix(), self.evaluations,
                          observer, file_id, threshold, self.config,
                          accept_when_blind)

    def _max_credit(self) -> float:
        """Largest credit balance in the system (0.0 when nobody has any)."""
        balances = self.credits.balances()
        if not balances:
            return 0.0
        return max(balances.values())

    @staticmethod
    def _reference_in(reputation: TrustMatrix, observer: str) -> float:
        """Reference reputation scale for the observer (his max row entry)."""
        row: Mapping[str, float] = reputation.row_view(observer)
        if not row:
            return 1.0
        return max(row.values())

    def _reference(self, observer: str) -> float:
        return self._reference_in(self.reputation_matrix(), observer)

    def _effective_reputation(self, reputation: TrustMatrix, observer: str,
                              target: str, max_credit: float,
                              reference: float) -> float:
        """Shared Eq. + credit-bonus arithmetic over hoisted per-queue state.

        ``max_credit`` and ``reference`` depend only on the system / the
        observer, so queue ordering computes them once instead of per
        requester.
        """
        pairwise = reputation.get(observer, target)
        if max_credit <= 0:
            return pairwise
        bonus = self.credits.credit(target) / max_credit
        return pairwise + CREDIT_BONUS_WEIGHT * bonus * reference

    def service_level(self, observer: str, requester: str) -> ServiceLevel:
        """Section 3.4: the service ``observer`` should grant ``requester``."""
        reputation = self.reputation_matrix()
        reference = self._reference_in(reputation, observer)
        differentiator = ServiceDifferentiator(
            self.config, reference_reputation=max(reference, 1e-12))
        return differentiator.service_level(
            requester, self._effective_reputation(
                reputation, observer, requester, self._max_credit(),
                reference))

    def order_request_queue(self, observer: str,
                            requests: Sequence[Tuple[str, float]]
                            ) -> List[Tuple[str, float]]:
        """Order ``(requester, arrival_time)`` pairs by effective time.

        High-reputation requesters receive a negative offset and move ahead;
        ties (including all-zero reputations) preserve arrival order.  The
        differentiator, credit maximum and observer reference are computed
        once for the whole queue, not per requester.
        """
        reputation = self.reputation_matrix()
        reference = self._reference_in(reputation, observer)
        differentiator = ServiceDifferentiator(
            self.config, reference_reputation=max(reference, 1e-12))
        max_credit = self._max_credit()
        annotated = [
            (requester, arrival,
             self._effective_reputation(reputation, observer, requester,
                                        max_credit, reference))
            for requester, arrival in requests
        ]
        return differentiator.order_queue(annotated)

"""Core library: the paper's multi-dimensional reputation system.

The public surface re-exports the main types so downstream code can write
``from repro.core import MultiDimensionalReputationSystem, ReputationConfig``.
"""

from .config import DEFAULT_CONFIG, ConfigError, ReputationConfig
from .distances import (SIMILARITY_METRICS, euclidean_similarity,
                        get_similarity, kl_similarity, l1_similarity)
from .evaluation import EvaluationStore, FileEvaluation, implicit_from_retention
from .explain import (DimensionContribution, ReputationExplanation,
                      TrustPath, explain_reputation)
from .file_reputation import FileJudgement, file_reputation, judge_file
from .file_trust import FileTrustAccumulator, build_file_trust_matrix, file_trust
from .incentive import (ActionCreditTracker, IncentiveAction,
                        ServiceDifferentiator, ServiceLevel)
from .integration import (TrustDimension, build_one_step_matrix,
                          integrate_dimensions)
from .matrix import TrustMatrix
from .matrix_backend import (DENSE_BACKEND, SPARSE_BACKEND, DenseNumpyBackend,
                             MatmulBackend, SparseDictBackend, resolve_backend,
                             select_backend)
from .multitrust import (MultiTierView, TierAssignment,
                         compute_reputation_matrix, global_reputation_vector,
                         reputation_between)
from .persistence import (load_system, save_system, system_from_dict,
                          system_to_dict)
from .pipeline import RefreshStats, TrustPipeline
from .reputation_system import MultiDimensionalReputationSystem, RefreshView
from .tuning import (TuningResult, fake_ranking_objective,
                     separation_objective, simplex_grid,
                     sweep_dimension_weights, sweep_eta)
from .user_trust import (UserTrustAccumulator, UserTrustStore,
                         build_user_trust_matrix)
from .volume_trust import (DownloadLedger, VolumeTrustAccumulator,
                           build_volume_trust_matrix, valid_download_volume)

__all__ = [
    "DEFAULT_CONFIG",
    "ConfigError",
    "ReputationConfig",
    "SIMILARITY_METRICS",
    "euclidean_similarity",
    "get_similarity",
    "kl_similarity",
    "l1_similarity",
    "EvaluationStore",
    "FileEvaluation",
    "implicit_from_retention",
    "DimensionContribution",
    "ReputationExplanation",
    "TrustPath",
    "explain_reputation",
    "FileJudgement",
    "file_reputation",
    "judge_file",
    "FileTrustAccumulator",
    "build_file_trust_matrix",
    "file_trust",
    "ActionCreditTracker",
    "IncentiveAction",
    "ServiceDifferentiator",
    "ServiceLevel",
    "TrustDimension",
    "build_one_step_matrix",
    "integrate_dimensions",
    "TrustMatrix",
    "MatmulBackend",
    "SparseDictBackend",
    "DenseNumpyBackend",
    "SPARSE_BACKEND",
    "DENSE_BACKEND",
    "select_backend",
    "resolve_backend",
    "TrustPipeline",
    "RefreshStats",
    "MultiTierView",
    "TierAssignment",
    "compute_reputation_matrix",
    "global_reputation_vector",
    "reputation_between",
    "MultiDimensionalReputationSystem",
    "RefreshView",
    "load_system",
    "save_system",
    "system_from_dict",
    "system_to_dict",
    "TuningResult",
    "fake_ranking_objective",
    "separation_objective",
    "simplex_grid",
    "sweep_dimension_weights",
    "sweep_eta",
    "UserTrustStore",
    "UserTrustAccumulator",
    "build_user_trust_matrix",
    "DownloadLedger",
    "VolumeTrustAccumulator",
    "build_volume_trust_matrix",
    "valid_download_volume",
]

"""Core library: the paper's multi-dimensional reputation system.

The public surface re-exports the main types so downstream code can write
``from repro.core import MultiDimensionalReputationSystem, ReputationConfig``.
"""

from .config import DEFAULT_CONFIG, ConfigError, ReputationConfig
from .distances import (SIMILARITY_METRICS, euclidean_similarity,
                        get_similarity, kl_similarity, l1_similarity)
from .evaluation import EvaluationStore, FileEvaluation, implicit_from_retention
from .explain import (DimensionContribution, ReputationExplanation,
                      TrustPath, explain_reputation)
from .file_reputation import FileJudgement, file_reputation, judge_file
from .file_trust import FileTrustAccumulator, build_file_trust_matrix, file_trust
from .incentive import (ActionCreditTracker, IncentiveAction,
                        ServiceDifferentiator, ServiceLevel)
from .integration import (TrustDimension, build_one_step_matrix,
                          integrate_dimensions)
from .matrix import TrustMatrix
from .matrix_backend import (CSR_BACKEND, DENSE_BACKEND, SPARSE_BACKEND,
                             CsrBackend, DenseNumpyBackend, MatmulBackend,
                             MatrixStats, SparseDictBackend, resolve_backend,
                             resolve_backend_from_stats, select_backend,
                             select_backend_from_stats)
from .multitrust import (MultiTierView, TierAssignment,
                         compute_reputation_matrix, global_reputation_vector,
                         reputation_between)
from .persistence import (load_system, save_system, system_from_dict,
                          system_to_dict)
from .pipeline import RefreshStats, TrustPipeline, combine_dimension_rows
from .reputation_system import MultiDimensionalReputationSystem, RefreshView
from .shard import ShardMap, shard_for_record, shard_owner
from .shard_workers import ShardPatchPool
from .sharded_pipeline import ShardedTrustPipeline
from .tuning import (TuningResult, fake_ranking_objective,
                     separation_objective, simplex_grid,
                     sweep_dimension_weights, sweep_eta)
from .user_trust import (UserTrustAccumulator, UserTrustStore,
                         build_user_trust_matrix)
from .volume_trust import (DownloadLedger, VolumeTrustAccumulator,
                           build_volume_trust_matrix, valid_download_volume)

__all__ = [
    "DEFAULT_CONFIG",
    "ConfigError",
    "ReputationConfig",
    "SIMILARITY_METRICS",
    "euclidean_similarity",
    "get_similarity",
    "kl_similarity",
    "l1_similarity",
    "EvaluationStore",
    "FileEvaluation",
    "implicit_from_retention",
    "DimensionContribution",
    "ReputationExplanation",
    "TrustPath",
    "explain_reputation",
    "FileJudgement",
    "file_reputation",
    "judge_file",
    "FileTrustAccumulator",
    "build_file_trust_matrix",
    "file_trust",
    "ActionCreditTracker",
    "IncentiveAction",
    "ServiceDifferentiator",
    "ServiceLevel",
    "TrustDimension",
    "build_one_step_matrix",
    "integrate_dimensions",
    "TrustMatrix",
    "MatmulBackend",
    "SparseDictBackend",
    "DenseNumpyBackend",
    "CsrBackend",
    "SPARSE_BACKEND",
    "DENSE_BACKEND",
    "CSR_BACKEND",
    "MatrixStats",
    "select_backend",
    "select_backend_from_stats",
    "resolve_backend",
    "resolve_backend_from_stats",
    "TrustPipeline",
    "RefreshStats",
    "combine_dimension_rows",
    "ShardMap",
    "shard_owner",
    "shard_for_record",
    "ShardPatchPool",
    "ShardedTrustPipeline",
    "MultiTierView",
    "TierAssignment",
    "compute_reputation_matrix",
    "global_reputation_vector",
    "reputation_between",
    "MultiDimensionalReputationSystem",
    "RefreshView",
    "load_system",
    "save_system",
    "system_from_dict",
    "system_to_dict",
    "TuningResult",
    "fake_ranking_objective",
    "separation_objective",
    "simplex_grid",
    "sweep_dimension_weights",
    "sweep_eta",
    "UserTrustStore",
    "UserTrustAccumulator",
    "build_user_trust_matrix",
    "DownloadLedger",
    "VolumeTrustAccumulator",
    "build_volume_trust_matrix",
    "valid_download_volume",
]

"""The sharded trust domain: per-shard stores, boundary exchange, row patching.

:class:`ShardedTrustPipeline` is the :class:`~repro.core.pipeline
.TrustPipeline` refactored over a partition of the peer space (see
:class:`~repro.core.shard.ShardMap`): every row-local structure — DM/UM
accumulator rows, FM row fragments, TM row patches — lives in the shard
owning that row's peer, and a refresh touches only the shards incident to
the dirt it consumes.

The one structure that cannot be partitioned row-locally is file-based
trust: an FM edge couples a *pair* of users through the files both
evaluated, and the pair may straddle shards.  :class:`_FileTrustExchange`
is the cross-shard boundary exchange that reconciles those edges — it owns
the pair-term state globally (the same invertible delta engine as
:class:`~repro.core.file_trust.FileTrustAccumulator`, arithmetic step for
arithmetic step) and routes each re-normalised row to the fragment of the
shard owning it.  Because retraction, re-contribution and re-finalisation
run in the identical canonical order (sorted files, sorted pairs) and row
normalisation is order-independent fsum, the union of the shard fragments
is bit-identical to the monolithic accumulator's matrix.

Backend choice never scans the matrix: a :class:`~repro.core
.matrix_backend.MatrixStats` ledger folds every row patch into O(row)
counter updates, and ``"auto"`` resolves from the counters — the same
integers and quotient the monolith's O(entries) scan would produce, so the
*decision* is identical while the per-refresh cost drops from O(entries)
to O(dirty).

Row patching parallelises across shards through
:class:`~repro.core.shard_workers.ShardPatchPool` when
``config.shard_workers > 1``; patches gather in ascending shard order and
rows are disjoint across shards, so the merge is canonical and the result
byte-identical to the serial path.  With ``shards == 1`` and
``shard_workers == 1`` every loop degenerates to the monolithic pipeline's
exact traversal — the bit-identity bar of ``REPRO_CHECK_INVARIANTS``
(incremental == full rebuild, exactly) holds unchanged and is enforced the
same way.
"""

from __future__ import annotations

from math import fsum
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..lint.contracts import (ContractViolation, check_matrices_equal,
                              check_row_stochastic, check_simplex,
                              contracts_enabled)
from ..obs.recorder import NULL_RECORDER, NullRecorder
from .config import DEFAULT_CONFIG, ReputationConfig
from .evaluation import EvaluationStore
from .matrix import TrustMatrix
from .matrix_backend import (MatmulBackend, MatrixStats, resolve_backend,
                             resolve_backend_from_stats)
from .multitrust import compute_reputation_matrix
from .pipeline import RefreshStats, RefreshView, combine_dimension_rows
from .shard import ShardMap
from .shard_workers import ShardPatchJob, ShardPatchPool
from .user_trust import UserTrustAccumulator, UserTrustStore
from .volume_trust import DownloadLedger, VolumeTrustAccumulator

__all__ = ["ShardedTrustPipeline"]


class _FileTrustExchange:
    """Cross-shard boundary exchange for file-based trust (Eqs. 2-3).

    Pair terms are global — an edge's two endpoints may live in different
    shards — but every *row* of the normalised FM belongs to exactly one
    shard, so the exchange keeps one fragment matrix per shard and
    re-normalises a touched row into its owner's fragment.

    Bit-identity with :class:`~repro.core.file_trust.FileTrustAccumulator`
    is structural: term retraction/contribution walks files in sorted
    order, re-finalisation walks changed pairs in sorted order with the
    same left-to-right sorted-file term sum and the same ``value changed``
    gate, and row normalisation shares the order-independent fsum.  Only
    the *destination* of a normalised row differs (a shard fragment instead
    of one matrix), and fragments never overlap.
    """

    def __init__(self, config: ReputationConfig, shard_map: ShardMap):
        from .distances import PAIRWISE_ACCUMULATORS

        self._config = config
        self._shard_map = shard_map
        self._term, self._finalize = PAIRWISE_ACCUMULATORS[config.distance_metric]
        #: pair -> {file_id: Eq. 2 term} for every file both users evaluated.
        self._pair_terms: Dict[Tuple[str, str], Dict[str, float]] = {}
        #: file_id -> pairs currently holding a term from this file.
        self._file_pairs: Dict[str, Set[Tuple[str, str]]] = {}
        #: Un-normalised symmetric FT matrix (Eq. 2 finalised values);
        #: global, because edges straddle shards.
        self._raw = TrustMatrix()
        #: shard -> row-normalised FM fragment holding that shard's rows.
        self._fragments: Dict[int, TrustMatrix] = {}

    def fragment(self, shard: int) -> TrustMatrix:
        """The FM fragment owned by ``shard`` (created empty on demand)."""
        fragment = self._fragments.get(shard)
        if fragment is None:
            fragment = TrustMatrix()
            self._fragments[shard] = fragment
        return fragment

    def merged(self) -> TrustMatrix:
        """All fragments as one matrix (rows are disjoint across shards)."""
        merged = TrustMatrix()
        for shard in sorted(self._fragments):
            for i, row in self._fragments[shard].iter_row_views():
                merged.replace_row(i, row)
        return merged

    def update_terms(self, store: EvaluationStore,
                     dirty_files: Set[str]) -> Tuple[Set[str], int]:
        """Retract + re-derive + re-finalise downstream of ``dirty_files``.

        Returns the users whose raw FT row changed (their FM rows need
        re-normalising) and the number of *cross-shard* edges reconciled —
        changed pairs whose endpoints live in different shards.
        """
        changed_pairs: Set[Tuple[str, str]] = set()
        for file_id in sorted(set(dirty_files)):
            # Retract the file's previous contribution...
            for pair in self._file_pairs.pop(file_id, ()):
                terms = self._pair_terms[pair]
                del terms[file_id]
                if not terms:
                    del self._pair_terms[pair]
                changed_pairs.add(pair)
            # ...then contribute its current evaluator set.
            evaluators = sorted(store.users_evaluating(file_id))
            if len(evaluators) < 2:
                continue
            values = {u: store.value(u, file_id) for u in evaluators}
            pairs: Set[Tuple[str, str]] = set()
            for index, a in enumerate(evaluators):
                value_a = values[a]
                for b in evaluators[index + 1:]:
                    pair = (a, b)
                    self._pair_terms.setdefault(pair, {})[file_id] = (
                        self._term(value_a, values[b]))
                    pairs.add(pair)
                    changed_pairs.add(pair)
            self._file_pairs[file_id] = pairs

        touched: Set[str] = set()
        cross_edges = 0
        for pair in sorted(changed_pairs):
            a, b = pair
            trust = 0.0
            terms = self._pair_terms.get(pair)
            if terms is not None and len(terms) >= self._config.min_overlap:
                # Left-to-right over sorted files: the exact accumulation
                # sequence of the full builder's per-pair running total.
                total = 0.0
                for term_file in sorted(terms):
                    total += terms[term_file]
                trust = self._finalize(total, len(terms))
            value = trust if trust > 0.0 else 0.0
            if value != self._raw.get(a, b):
                self._raw.set(a, b, value)
                self._raw.set(b, a, value)
                touched.add(a)
                touched.add(b)
                if (self._shard_map.shard_of(a)
                        != self._shard_map.shard_of(b)):
                    cross_edges += 1
        return touched, cross_edges

    def normalize_shard(self, shard: int, users: Sequence[str]) -> None:
        """Eq. 3 for ``users`` (all owned by ``shard``), into its fragment."""
        fragment = self.fragment(shard)
        for user in users:
            raw_row = self._raw.row_view(user)
            total = fsum(raw_row.values())
            if total > 0:
                fragment.replace_row(
                    user, {j: value / total for j, value in raw_row.items()})
            else:
                fragment.replace_row(user, {})
        check_row_stochastic(fragment, name=f"FM[shard={shard}]")

    def reset(self) -> Set[str]:
        """Forget everything; returns the rows the old fragments held."""
        stale: Set[str] = set()
        for shard in sorted(self._fragments):
            stale.update(self._fragments[shard].row_ids())
        self._pair_terms = {}
        self._file_pairs = {}
        self._raw = TrustMatrix()
        self._fragments = {}
        return stale


class _ShardState:
    """Row-local accumulators owned by one shard (DM/UM dimensions)."""

    __slots__ = ("volume", "user")

    def __init__(self, config: ReputationConfig):
        self.volume: Optional[VolumeTrustAccumulator] = (
            VolumeTrustAccumulator(config) if config.beta > 0 else None)
        self.user: Optional[UserTrustAccumulator] = (
            UserTrustAccumulator() if config.gamma > 0 else None)


class ShardedTrustPipeline:
    """The incremental pipeline partitioned over a deterministic shard map.

    Public API mirrors :class:`~repro.core.pipeline.TrustPipeline` —
    ``trust``/``reputation``/``view``/``refresh``/``checksums``/
    ``reputation_at``/``has_dirty``/``invalidate``/``version``/
    ``last_stats``/``dimension_matrices`` — so the façade switches between
    the two purely on ``config.shards``.  Additionally :meth:`close`
    releases the worker pool (a no-op with ``shard_workers == 1``).
    """

    def __init__(self, evaluations: EvaluationStore, ledger: DownloadLedger,
                 user_trust: UserTrustStore,
                 config: ReputationConfig = DEFAULT_CONFIG,
                 recorder: NullRecorder = NULL_RECORDER):
        self.config = config
        self.recorder = recorder
        self.evaluations = evaluations
        self.ledger = ledger
        self.user_trust = user_trust
        self.shard_map = ShardMap(config.shards)
        self._exchange: Optional[_FileTrustExchange] = (
            _FileTrustExchange(config, self.shard_map)
            if config.alpha > 0 else None)
        self._states: Dict[int, _ShardState] = {}
        self._pool: Optional[ShardPatchPool] = (
            ShardPatchPool(config.shard_workers)
            if config.shard_workers > 1 else None)
        self._trust = TrustMatrix()
        self._reputation = TrustMatrix()
        #: Incrementally maintained TM counters driving "auto" backend
        #: choice without per-refresh matrix scans.
        self._stats = MatrixStats()
        self._power_cache: Dict[int, TrustMatrix] = {}
        self._initialized = False
        self._force_full = False
        self.version = 0
        self.last_stats: Optional[RefreshStats] = None

    # ------------------------------------------------------------------ #
    # Published state                                                    #
    # ------------------------------------------------------------------ #

    @property
    def trust(self) -> TrustMatrix:
        """The most recently published integrated ``TM`` (Eq. 7)."""
        return self._trust

    @property
    def reputation(self) -> TrustMatrix:
        """The most recently published ``RM = TM^n`` (Eq. 8)."""
        return self._reputation

    def view(self) -> RefreshView:
        """Zero-copy view of the current published pair (no refresh)."""
        return RefreshView(trust=self._trust, reputation=self._reputation)

    @property
    def has_dirty(self) -> bool:
        """Whether any store holds unconsumed deltas."""
        return (not self._initialized or self._force_full
                or self.evaluations.has_dirty or self.ledger.has_dirty
                or self.user_trust.has_dirty)

    def invalidate(self) -> None:
        """Force the next :meth:`refresh` to rebuild every shard."""
        self._force_full = True

    def dimension_matrices(self) -> Dict[str, TrustMatrix]:
        """Per-dimension one-step matrices, shard fragments merged.

        Same shape as the monolith's accessor; rows are disjoint across
        shards so the merge is exact, not approximate.
        """
        empty = TrustMatrix()
        return {
            "file": self._exchange.merged() if self._exchange else empty,
            "volume": self._merged_dimension("volume"),
            "user": self._merged_dimension("user"),
        }

    def close(self) -> None:
        """Release the patch worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.close()

    # ------------------------------------------------------------------ #
    # Refresh                                                            #
    # ------------------------------------------------------------------ #

    def refresh(self, force_full: bool = False) -> RefreshView:
        """Consume all accumulated deltas and publish fresh ``TM``/``RM``.

        Same contract as the monolith: no dirt means the current matrices
        return *by identity*; otherwise both republish copy-on-write.
        """
        dirty_files = self.evaluations.dirty_files()
        # A user's DM row re-weights when their evaluations move (Eq. 4
        # weighs downloaded bytes by the downloader's own evaluations).
        dirty_downloaders = (self.ledger.dirty_downloaders()
                             | self.evaluations.dirty_users())
        dirty_raters = self.user_trust.dirty_raters()
        full = force_full or self._force_full or not self._initialized
        if not (full or dirty_files or dirty_downloaders or dirty_raters):
            self.recorder.inc("pipeline.noop_refreshes")
            return self.view()

        with self.recorder.span("pipeline.refresh") as span:
            file_rows: Set[str] = set()
            file_touched: Set[str] = set()
            cross_edges = 0
            stale_volume: Set[str] = set()
            stale_user: Set[str] = set()
            if full:
                volume_dirty = ({downloader for downloader, _
                                 in self.ledger.pairs()}
                                if self._has_volume else set())
                user_dirty = (self.user_trust.raters()
                              if self._has_user else set())
                stale_volume, stale_user = self._reset_shard_states()
            else:
                volume_dirty = dirty_downloaders if self._has_volume else set()
                user_dirty = dirty_raters if self._has_user else set()

            if self._exchange is not None:
                with self.recorder.span("pipeline.shard_exchange") as exchange_span:
                    if full:
                        stale_file = self._exchange.reset()
                        file_touched, cross_edges = self._exchange.update_terms(
                            self.evaluations, self.evaluations.files())
                        file_rows = file_touched | stale_file
                    else:
                        file_touched, cross_edges = self._exchange.update_terms(
                            self.evaluations, dirty_files)
                        file_rows = set(file_touched)
                    exchange_span.count("cross_shard_edges", cross_edges)

            file_partition = self.shard_map.partition(file_touched)
            volume_partition = self.shard_map.partition(volume_dirty)
            user_partition = self.shard_map.partition(user_dirty)
            incident = sorted(set(file_partition) | set(volume_partition)
                              | set(user_partition))
            volume_rows: Set[str] = set(stale_volume)
            user_rows: Set[str] = set(stale_user)
            for shard in incident:
                with self.recorder.span("pipeline.shard_refresh",
                                        shard=shard) as shard_span:
                    rows_before = len(volume_rows) + len(user_rows)
                    if self._exchange is not None and shard in file_partition:
                        self._exchange.normalize_shard(
                            shard, file_partition[shard])
                    state = self._state(shard)
                    if state.volume is not None and shard in volume_partition:
                        volume_rows |= state.volume.refresh(
                            self.ledger, self.evaluations,
                            volume_partition[shard])
                    if state.user is not None and shard in user_partition:
                        user_rows |= state.user.refresh(
                            self.user_trust, user_partition[shard])
                    shard_span.count(
                        "rows_refreshed",
                        len(volume_rows) + len(user_rows) - rows_before
                        + len(file_partition.get(shard, ())))

            dirty_rows = file_rows | volume_rows | user_rows
            row_partition = self._publish_trust(dirty_rows)
            backend = resolve_backend_from_stats(self.config.matmul_backend,
                                                 self._stats)
            self._publish_reputation(backend)
            span.count("rows_rebuilt", len(dirty_rows))
            span.count("dirty_files", len(dirty_files))
            span.count("shards_touched", len(incident))
            span.count("cross_shard_edges", cross_edges)

        self.evaluations.clear_dirty()
        self.ledger.clear_dirty()
        self.user_trust.clear_dirty()
        self._power_cache.clear()
        self._power_cache[self.config.multitrust_steps] = self._reputation
        self._force_full = False
        self._initialized = True
        self.version += 1

        stats = RefreshStats(
            mode="full" if full else "incremental",
            backend=backend.name,
            dirty_files=len(dirty_files),
            dirty_rows_file=len(file_rows),
            dirty_rows_volume=len(volume_rows),
            dirty_rows_user=len(user_rows),
            rows_rebuilt=len(dirty_rows),
            total_rows=len(self._trust.row_ids()),
        )
        self.last_stats = stats
        self._record(stats, len(incident), cross_edges, row_partition)
        if contracts_enabled():
            self._verify_stats()
            if not full:
                self._verify_against_full_rebuild()
        return self.view()

    def checksums(self) -> Dict[str, str]:
        """Bit-exact digests of the published ``TM``/``RM`` pair."""
        return {"trust": self._trust.checksum(),
                "reputation": self._reputation.checksum()}

    def reputation_at(self, steps: int) -> TrustMatrix:
        """``TM^steps`` for a step override, cached until the next refresh."""
        cached = self._power_cache.get(steps)
        if cached is None:
            backend = resolve_backend_from_stats(self.config.matmul_backend,
                                                 self._stats)
            cached = compute_reputation_matrix(
                self._trust, steps, self.config, recorder=self.recorder,
                backend=backend)
            self._power_cache[steps] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Internals                                                          #
    # ------------------------------------------------------------------ #

    @property
    def _has_volume(self) -> bool:
        return self.config.beta > 0

    @property
    def _has_user(self) -> bool:
        return self.config.gamma > 0

    def _state(self, shard: int) -> _ShardState:
        state = self._states.get(shard)
        if state is None:
            state = _ShardState(self.config)
            self._states[shard] = state
        return state

    def _reset_shard_states(self) -> Tuple[Set[str], Set[str]]:
        """Full-rebuild prep: forget DM/UM rows; returns the stale row sets.

        Mirrors each accumulator's ``rebuild`` recipe — remember the rows
        the old matrices held (their TM rows must re-patch even if no new
        input names them), then start from empty matrices.
        """
        stale_volume: Set[str] = set()
        stale_user: Set[str] = set()
        for shard in sorted(self._states):
            state = self._states[shard]
            if state.volume is not None:
                stale_volume.update(state.volume.matrix.row_ids())
                state.volume.matrix = TrustMatrix()
                state.volume.last_dirty_rows = set()
            if state.user is not None:
                stale_user.update(state.user.matrix.row_ids())
                state.user.matrix = TrustMatrix()
                state.user.last_dirty_rows = set()
        return stale_volume, stale_user

    def _shard_dimensions(self, shard: int
                          ) -> List[Tuple[float, TrustMatrix]]:
        """Active (weight, fragment) pairs for ``shard``, in Eq. 7 order."""
        dimensions: List[Tuple[float, TrustMatrix]] = []
        if self._exchange is not None:
            dimensions.append((self.config.alpha,
                               self._exchange.fragment(shard)))
        state = self._state(shard)
        if state.volume is not None:
            dimensions.append((self.config.beta, state.volume.matrix))
        if state.user is not None:
            dimensions.append((self.config.gamma, state.user.matrix))
        return dimensions

    def _merged_dimension(self, name: str) -> TrustMatrix:
        """Union of one row-local dimension's shard matrices (disjoint rows)."""
        merged = TrustMatrix()
        for shard in sorted(self._states):
            state = self._states[shard]
            accumulator = state.volume if name == "volume" else state.user
            if accumulator is None:
                continue
            for i, row in accumulator.matrix.iter_row_views():
                merged.replace_row(i, row)
        return merged

    def _publish_trust(self, dirty_rows: Set[str]) -> Dict[int, List[str]]:
        """Eq. 7 re-applied per shard to exactly ``dirty_rows``.

        Shards patch independently (a TM row reads only its owner shard's
        fragments) — serially through the shared
        :func:`~repro.core.pipeline.combine_dimension_rows` arithmetic, or
        through the worker pool, which replicates the identical float-op
        sequence (see :mod:`~repro.core.shard_workers`).  Patches merge in
        ascending shard order over disjoint row sets, then fold into the
        :class:`MatrixStats` ledger before the copy-on-write publish.
        """
        check_simplex((self.config.alpha, self.config.beta, self.config.gamma),
                      name="(alpha, beta, gamma)")
        row_partition = self.shard_map.partition(dirty_rows)
        jobs: List[ShardPatchJob] = [
            (shard, rows, self._shard_dimensions(shard))
            for shard, rows in row_partition.items()]
        if self._pool is not None and jobs:
            patches = self._pool.gather_patches(jobs)
        else:
            patches = [combine_dimension_rows(dimensions, rows)
                       for _shard, rows, dimensions in jobs]
        updates: Dict[str, Dict[str, float]] = {}
        for patch in patches:
            updates.update(patch)
        for i in sorted(updates):
            stored = {j: value for j, value in updates[i].items()
                      if value > 0.0}
            self._stats.replace_row(i, self._trust.row_view(i), stored)
        self._trust = self._trust.copy_with_rows(updates)
        check_row_stochastic(self._trust, name="TM", strict=False)
        return row_partition

    def _publish_reputation(self, backend: MatmulBackend) -> None:
        steps = self.config.multitrust_steps
        if steps == 1 and not self.recorder.enabled:
            # power(1) is the identity operation; RM *is* the patched TM.
            self._reputation = self._trust
            return
        self._reputation = compute_reputation_matrix(
            self._trust, None, self.config, recorder=self.recorder,
            backend=backend)

    def _verify_stats(self) -> None:
        """Contracts-gated: the stats ledger matches an O(entries) rescan."""
        scan = MatrixStats.of(self._trust)
        tracked = (self._stats.nodes, self._stats.entries,
                   self._stats.diagonal, self._stats.rows)
        scanned = (scan.nodes, scan.entries, scan.diagonal, scan.rows)
        if tracked != scanned:
            raise ContractViolation(
                "MatrixStats drifted from TM: tracked "
                f"(nodes, entries, diagonal, rows) = {tracked}, "
                f"rescan = {scanned}")

    def _verify_against_full_rebuild(self) -> None:
        """Contracts-gated hard bar: patched state == full rebuild, exactly."""
        from .integration import build_one_step_matrix

        full_trust = build_one_step_matrix(
            self.evaluations, self.ledger, self.user_trust, self.config)
        check_matrices_equal(self._trust, full_trust, name="TM(sharded)")
        # Same backend family as the incremental path: backends agree only
        # to tolerance and the bar here is exact equality.
        full_reputation = compute_reputation_matrix(
            full_trust, None, self.config,
            backend=resolve_backend(self.config.matmul_backend, full_trust))
        check_matrices_equal(self._reputation, full_reputation,
                             name="RM(sharded)")

    def _record(self, stats: RefreshStats, shards_touched: int,
                cross_edges: int,
                row_partition: Dict[int, List[str]]) -> None:
        recorder = self.recorder
        if not recorder.enabled:
            return
        recorder.event("pipeline_refresh", mode=stats.mode,
                       backend=stats.backend, dirty_files=stats.dirty_files,
                       dirty_rows_file=stats.dirty_rows_file,
                       dirty_rows_volume=stats.dirty_rows_volume,
                       dirty_rows_user=stats.dirty_rows_user,
                       rows_rebuilt=stats.rows_rebuilt,
                       total_rows=stats.total_rows,
                       rebuild_ratio=stats.rebuild_ratio,
                       shards=self.shard_map.shard_count,
                       shards_touched=shards_touched,
                       cross_shard_edges=cross_edges)
        recorder.inc("pipeline.refreshes")
        if stats.mode == "full":
            recorder.inc("pipeline.full_rebuilds")
        recorder.observe("pipeline.rows_rebuilt", stats.rows_rebuilt)
        recorder.observe("pipeline.rebuild_ratio", stats.rebuild_ratio)
        recorder.gauge("pipeline.total_rows", stats.total_rows)
        recorder.observe("pipeline.shards_touched", shards_touched)
        recorder.inc("pipeline.cross_shard_edges", cross_edges)
        for shard, rows in row_partition.items():
            recorder.observe("pipeline.shard_rows_rebuilt", len(rows),
                             shard=str(shard))

"""Distance metrics between evaluation vectors (Eq. 2 and footnote 1).

The paper defines file-based direct trust as ``FT_ij = 1 - (1/m) * sum_k
|E_ik - E_jk|`` over the ``m`` files both users evaluated, i.e. one minus the
mean L1 distance.  Footnote 1 notes that "there are also many other equations
to define the distance between two vectors, such as Kullback-Leibler distance
and Euclid distance"; this module implements all three so the A1 ablation can
compare them.

Every metric maps two equal-length sequences of evaluations in ``[0, 1]`` to
a *similarity* in ``[0, 1]`` (1 = identical opinions, 0 = maximally
different), so they are drop-in replacements inside Eq. 2.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Sequence

__all__ = [
    "l1_similarity",
    "euclidean_similarity",
    "kl_similarity",
    "get_similarity",
    "SIMILARITY_METRICS",
]

_EPSILON = 1e-12


def _check_pair(a: Sequence[float], b: Sequence[float]) -> None:
    if len(a) != len(b):
        raise ValueError(
            f"evaluation vectors must have equal length, got {len(a)} and {len(b)}")
    if not a:
        raise ValueError("evaluation vectors must be non-empty (m >= 1 in Eq. 2)")


def l1_similarity(a: Sequence[float], b: Sequence[float]) -> float:
    """Paper's Eq. 2: one minus the mean absolute difference."""
    _check_pair(a, b)
    total = sum(abs(x - y) for x, y in zip(a, b))
    return 1.0 - total / len(a)


def euclidean_similarity(a: Sequence[float], b: Sequence[float]) -> float:
    """One minus the root-mean-square difference.

    RMS difference of values in [0, 1] is itself in [0, 1], so the result is
    a valid similarity.  Compared with L1 it punishes a single large
    disagreement more than many small ones.
    """
    _check_pair(a, b)
    total = sum((x - y) ** 2 for x, y in zip(a, b))
    return 1.0 - math.sqrt(total / len(a))


def kl_similarity(a: Sequence[float], b: Sequence[float]) -> float:
    """Similarity derived from a symmetrised Kullback-Leibler divergence.

    Each evaluation ``e`` is treated as a Bernoulli distribution
    ``(e, 1 - e)`` (the probability the user considers the file good).  The
    symmetrised KL divergence between the two Bernoullis is averaged over the
    co-evaluated files and squashed to ``[0, 1]`` via ``exp(-divergence)``.
    Evaluations are clamped away from {0, 1} to keep the divergence finite.
    """
    _check_pair(a, b)
    total = 0.0
    for x, y in zip(a, b):
        p = min(max(x, _EPSILON), 1.0 - _EPSILON)
        q = min(max(y, _EPSILON), 1.0 - _EPSILON)
        kl_pq = p * math.log(p / q) + (1.0 - p) * math.log((1.0 - p) / (1.0 - q))
        kl_qp = q * math.log(q / p) + (1.0 - q) * math.log((1.0 - q) / (1.0 - p))
        total += 0.5 * (kl_pq + kl_qp)
    return math.exp(-total / len(a))


SIMILARITY_METRICS: Dict[str, Callable[[Sequence[float], Sequence[float]], float]] = {
    "l1": l1_similarity,
    "euclidean": euclidean_similarity,
    "kl": kl_similarity,
}


def _l1_term(a: float, b: float) -> float:
    return abs(a - b)


def _l1_finalize(total: float, count: int) -> float:
    return 1.0 - total / count


def _euclidean_term(a: float, b: float) -> float:
    return (a - b) ** 2


def _euclidean_finalize(total: float, count: int) -> float:
    return 1.0 - math.sqrt(total / count)


def _kl_term(a: float, b: float) -> float:
    p = min(max(a, _EPSILON), 1.0 - _EPSILON)
    q = min(max(b, _EPSILON), 1.0 - _EPSILON)
    kl_pq = p * math.log(p / q) + (1.0 - p) * math.log((1.0 - p) / (1.0 - q))
    kl_qp = q * math.log(q / p) + (1.0 - q) * math.log((1.0 - q) / (1.0 - p))
    return 0.5 * (kl_pq + kl_qp)


def _kl_finalize(total: float, count: int) -> float:
    return math.exp(-total / count)


#: Every Eq. 2 metric decomposes as ``finalize(sum_k term(a_k, b_k), m)``.
#: Matrix builders exploit this to accumulate pairwise sums in one pass
#: over the file index instead of re-intersecting evaluation vectors.
PAIRWISE_ACCUMULATORS: Dict[str, tuple] = {
    "l1": (_l1_term, _l1_finalize),
    "euclidean": (_euclidean_term, _euclidean_finalize),
    "kl": (_kl_term, _kl_finalize),
}


def get_similarity(name: str) -> Callable[[Sequence[float], Sequence[float]], float]:
    """Look up a similarity metric by config name (see ``ReputationConfig``)."""
    try:
        return SIMILARITY_METRICS[name]
    except KeyError:
        raise ValueError(
            f"unknown similarity metric {name!r}; "
            f"expected one of {sorted(SIMILARITY_METRICS)}") from None

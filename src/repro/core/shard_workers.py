"""Multiprocessing row patching for the sharded trust pipeline.

Each refresh, the sharded pipeline has a set of per-shard patch jobs: "for
these dirty rows, combine the shard's FM/DM/UM fragment rows with the
Eq. 7 weights".  Jobs are independent across shards (rows are disjoint by
construction), so :class:`ShardPatchPool` fans them out over a
``multiprocessing`` pool.

Bit-identity with the serial dict path
(:func:`~repro.core.pipeline.combine_dimension_rows`) is an invariant, not
a hope:

* the numeric payload per row is packed as contiguous ``(column index,
  value)`` segments — one segment per dimension, in FM/DM/UM order;
* the worker multiplies each segment by its weight (one IEEE-754 multiply
  per entry, same as ``weight * value`` in the dict path) and adds it into
  a zeroed scratch vector *segment by segment* — column indices are unique
  within a segment (dict keys), so a fancy-index ``+=`` applies exactly one
  addition per column per dimension, in dimension order: the dict path's
  ``acc[j] = acc.get(j, 0.0) + weight * value`` sequence, float for float;
* gather order is deterministic: ``pool.map`` returns results in job
  submission order, and jobs are submitted in ascending shard order with
  rows pre-sorted.

The numeric blocks travel through :mod:`multiprocessing.shared_memory`
(one block per job: int64 column indices + float64 values); only the small
string tables (row ids, column ids, per-segment lengths) are pickled.  A
pool with ``workers == 1`` is never constructed — the pipeline keeps the
serial path, byte-identical by sharing the dict arithmetic outright.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .matrix import TrustMatrix

__all__ = ["ShardPatchJob", "ShardPatchPool"]

#: One patch job: (shard index, sorted dirty rows, Eq. 7 (weight, matrix)
#: dimension pairs for that shard's fragments).
ShardPatchJob = Tuple[int, List[str], Sequence[Tuple[float, TrustMatrix]]]

#: Pickled per-job arguments handed to the worker: shared-memory block name
#: (``None`` when the job has no entries), entry count, per-(row, dim)
#: segment lengths, dimension weights, and the column id table.
_WorkerArgs = Tuple[Optional[str], int, List[int], List[float], List[str]]


def _attach_block(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned block without adopting its lifetime.

    Attaching normally registers the segment with the (shared, forked)
    resource tracker a second time; the parent's unlink then leaves that
    duplicate registration dangling and the tracker reports phantom leaks
    at shutdown.  The parent owns creation and unlink outright, so the
    worker attaches untracked: via ``track=False`` where the runtime
    supports it (3.13+), by suppressing the register call otherwise.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _patch_worker(args: _WorkerArgs) -> List[Dict[str, float]]:
    """Combine one job's packed rows; returns row dicts in packed order."""
    shm_name, total, seg_lengths, weights, col_ids = args
    n_dims = len(weights)
    if shm_name is None:
        idx = np.empty(0, dtype=np.int64)
        values = np.empty(0, dtype=np.float64)
        shm = None
    else:
        shm = _attach_block(shm_name)
        idx = np.ndarray((total,), dtype=np.int64, buffer=shm.buf)
        values = np.ndarray((total,), dtype=np.float64, buffer=shm.buf,
                            offset=8 * total)
    try:
        scratch = np.zeros(len(col_ids), dtype=np.float64)
        results: List[Dict[str, float]] = []
        position = 0
        cursor = 0
        n_rows = len(seg_lengths) // n_dims if n_dims else 0
        for _ in range(n_rows):
            row_start = position
            for dim in range(n_dims):
                length = seg_lengths[cursor]
                cursor += 1
                if not length:
                    continue
                segment = idx[position:position + length]
                # Unique indices within a segment (dict keys): one addition
                # per column per dimension, in dimension order — the dict
                # path's accumulation sequence exactly.
                scratch[segment] += weights[dim] * values[position:position + length]
                position += length
            touched = np.unique(idx[row_start:position])
            row_values = scratch[touched].tolist()
            results.append({col_ids[t]: value for t, value
                            in zip(touched.tolist(), row_values)})
            scratch[touched] = 0.0
        return results
    finally:
        if shm is not None:
            del idx, values
            shm.close()


class _PackedJob:
    """Parent-side packed form of one :data:`ShardPatchJob`."""

    __slots__ = ("row_ids", "shm", "args")

    def __init__(self, job: ShardPatchJob):
        _shard, rows, dimensions = job
        self.row_ids = rows
        col_index: Dict[str, int] = {}
        col_ids: List[str] = []
        seg_lengths: List[int] = []
        idx_parts: List[int] = []
        val_parts: List[float] = []
        for i in rows:
            for _weight, matrix in dimensions:
                row = matrix.row_view(i)
                seg_lengths.append(len(row))
                for j, value in row.items():
                    position = col_index.get(j)
                    if position is None:
                        position = len(col_ids)
                        col_index[j] = position
                        col_ids.append(j)
                    idx_parts.append(position)
                    val_parts.append(value)
        total = len(idx_parts)
        self.shm: Optional[shared_memory.SharedMemory] = None
        shm_name: Optional[str] = None
        if total:
            self.shm = shared_memory.SharedMemory(create=True,
                                                  size=16 * total)
            idx = np.ndarray((total,), dtype=np.int64, buffer=self.shm.buf)
            values = np.ndarray((total,), dtype=np.float64,
                                buffer=self.shm.buf, offset=8 * total)
            idx[:] = idx_parts
            values[:] = val_parts
            del idx, values
            shm_name = self.shm.name
        weights = [weight for weight, _matrix in dimensions]
        self.args: _WorkerArgs = (shm_name, total, seg_lengths, weights,
                                  col_ids)

    def release(self) -> None:
        if self.shm is not None:
            self.shm.close()
            self.shm.unlink()
            self.shm = None


def _pool_context() -> "multiprocessing.context.BaseContext":
    """Fork where available (cheap, inherits numpy pages), spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class ShardPatchPool:
    """Lazy worker pool applying shard patch jobs with deterministic gather.

    The pool is created on first use and reused across refreshes; callers
    own the lifecycle (:meth:`close`).  Job results come back in submission
    order — ascending shard index — so the merge the pipeline performs over
    them is canonical regardless of worker scheduling.
    """

    def __init__(self, workers: int):
        if workers < 2:
            raise ValueError(
                f"ShardPatchPool needs >= 2 workers, got {workers}; "
                "workers == 1 is the pipeline's serial path")
        self.workers = workers
        self._pool: Optional["multiprocessing.pool.Pool"] = None

    def _ensure_pool(self) -> "multiprocessing.pool.Pool":
        if self._pool is None:
            self._pool = _pool_context().Pool(processes=self.workers)
        return self._pool

    def gather_patches(self, jobs: Sequence[ShardPatchJob]
                       ) -> List[Dict[str, Dict[str, float]]]:
        """Run every job; one ``{row: new row}`` mapping per job, in order."""
        if not jobs:
            return []
        packed = [_PackedJob(job) for job in jobs]
        try:
            worker_rows = self._ensure_pool().map(
                _patch_worker, [job.args for job in packed])
        finally:
            for job in packed:
                job.release()
        return [dict(zip(job.row_ids, rows))
                for job, rows in zip(packed, worker_rows)]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:  # noqa: S110 - interpreter teardown is best-effort
            pass

"""File evaluations: explicit votes, implicit retention, and Eq. 1 blending.

Section 3.1.1 of the paper distinguishes two evaluation channels:

* **Explicit** -- a vote in ``[0, 1]`` cast by the user.  Accurate but rare
  (fewer than 1% of popular KaZaA files are voted on), hence the incentive
  mechanism rewards voting.
* **Implicit** -- inferred from the file's *retention time* on the user's
  machine: a fake file is deleted quickly, a good one is kept.  Free, covers
  100% of held files, but noisier.

Eq. 1 combines them::

    E_ij = IE_ij                      if the user has not voted
    E_ij = IE_ij * eta + EE_ij * rho  if the user voted

This module provides the value objects and the per-user / system-wide stores
for evaluations, including the Section 4.3 pruning rule ("users only need to
preserve the evaluations within an interval").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Set, Tuple

from .config import DEFAULT_CONFIG, ReputationConfig

__all__ = [
    "FileEvaluation",
    "implicit_from_retention",
    "EvaluationStore",
    "JournalSink",
]

#: Journal hook signature shared by every store: ``sink(kind, payload)``.
#: Payloads are JSON-safe dicts; a write-ahead log appends them before the
#: mutation lands, so replaying them through :meth:`EvaluationStore
#: .apply_record` (and the other stores' dispatchers) reproduces the store
#: exactly — including its dirty sets, which is what lets the incremental
#: pipeline patch during recovery.
JournalSink = Callable[[str, Dict[str, Any]], None]


def implicit_from_retention(retention_seconds: float,
                            saturation_seconds: float) -> float:
    """Map a file's retention time to an implicit evaluation in [0, 1].

    Retention grows linearly to 1.0 at ``saturation_seconds`` and is clamped
    afterwards; a file deleted immediately scores 0.  Linear-with-saturation
    is the simplest monotone map consistent with the paper's premise that
    keeping a file longer signals a better opinion of it.
    """
    if saturation_seconds <= 0:
        raise ValueError("saturation_seconds must be positive")
    if retention_seconds < 0:
        raise ValueError("retention_seconds must be >= 0")
    return min(retention_seconds / saturation_seconds, 1.0)


@dataclass
class FileEvaluation:
    """A single user's evaluation of a single file.

    ``implicit`` is always present once the user holds the file;
    ``explicit`` is present only if the user voted.  ``play_fraction``
    carries the optional play-time channel the paper's introduction
    mentions ("the actually play time of a movie file can also be taken as
    a user's evaluation ... but it depends on the type of file"): for
    playable media, watching most of a file is stronger evidence than
    merely keeping it, so the effective implicit evaluation is the maximum
    of the retention and play signals.  ``timestamp`` is the time of the
    most recent update and drives interval pruning.
    """

    user_id: str
    file_id: str
    implicit: float = 0.0
    explicit: Optional[float] = None
    play_fraction: Optional[float] = None
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.implicit <= 1.0:
            raise ValueError(f"implicit evaluation must be in [0,1], got {self.implicit}")
        if self.explicit is not None and not 0.0 <= self.explicit <= 1.0:
            raise ValueError(f"explicit evaluation must be in [0,1], got {self.explicit}")
        if self.play_fraction is not None and not 0.0 <= self.play_fraction <= 1.0:
            raise ValueError(
                f"play_fraction must be in [0,1], got {self.play_fraction}")

    def effective_implicit(self) -> float:
        """The implicit channel: retention, boosted by play time if known."""
        if self.play_fraction is None:
            return self.implicit
        return max(self.implicit, self.play_fraction)

    def value(self, config: ReputationConfig = DEFAULT_CONFIG) -> float:
        """Eq. 1: the blended evaluation ``E_ij``."""
        implicit = self.effective_implicit()
        if self.explicit is None:
            return implicit
        return implicit * config.eta + self.explicit * config.rho

    @property
    def has_vote(self) -> bool:
        return self.explicit is not None


@dataclass
class EvaluationStore:
    """All evaluations known to the system, indexed by user and by file.

    The store is the substrate from which every trust dimension is derived:
    file-based trust reads per-user evaluation vectors, Eq. 9 reads per-file
    evaluation lists.
    """

    config: ReputationConfig = field(default=DEFAULT_CONFIG)
    _by_user: Dict[str, Dict[str, FileEvaluation]] = field(default_factory=dict)
    _by_file: Dict[str, Dict[str, FileEvaluation]] = field(default_factory=dict)
    #: Files / users whose evaluations changed since the last
    #: :meth:`clear_dirty` — the delta the incremental pipeline rebuilds
    #: from, instead of a boolean "something changed" invalidation.
    _dirty_files: Set[str] = field(default_factory=set)
    _dirty_users: Set[str] = field(default_factory=set)
    #: Optional write-ahead hook: public mutators emit one JSON-safe record
    #: (after validating, before mutating) describing the call, so a WAL
    #: can persist it and :meth:`apply_record` can replay it verbatim.
    journal: Optional[JournalSink] = field(default=None, repr=False,
                                           compare=False)

    # ------------------------------------------------------------------ #
    # Recording                                                          #
    # ------------------------------------------------------------------ #

    def record_retention(self, user_id: str, file_id: str,
                         retention_seconds: float,
                         timestamp: float = 0.0) -> FileEvaluation:
        """Record/refresh the implicit evaluation from retention time."""
        implicit = implicit_from_retention(
            retention_seconds, self.config.retention_saturation_seconds)
        if self.journal is not None:
            self.journal("eval.retention", {
                "user": user_id, "file": file_id,
                "retention_seconds": retention_seconds,
                "timestamp": timestamp})
        return self._upsert(user_id, file_id, timestamp, implicit=implicit)

    def record_vote(self, user_id: str, file_id: str, vote: float,
                    timestamp: float = 0.0) -> FileEvaluation:
        """Record an explicit vote in [0, 1]."""
        if not 0.0 <= vote <= 1.0:
            raise ValueError(f"vote must be in [0,1], got {vote}")
        if self.journal is not None:
            self.journal("eval.vote", {
                "user": user_id, "file": file_id, "vote": vote,
                "timestamp": timestamp})
        return self._upsert(user_id, file_id, timestamp, explicit=vote)

    def record_implicit(self, user_id: str, file_id: str, implicit: float,
                        timestamp: float = 0.0) -> FileEvaluation:
        """Record an already-normalised implicit evaluation directly."""
        if not 0.0 <= implicit <= 1.0:
            raise ValueError(f"implicit must be in [0,1], got {implicit}")
        if self.journal is not None:
            self.journal("eval.implicit", {
                "user": user_id, "file": file_id, "implicit": implicit,
                "timestamp": timestamp})
        return self._upsert(user_id, file_id, timestamp, implicit=implicit)

    def record_play(self, user_id: str, file_id: str, play_fraction: float,
                    timestamp: float = 0.0) -> FileEvaluation:
        """Record the fraction of a playable file the user consumed.

        Monotone: repeated plays only ever raise the stored fraction (the
        user has demonstrably consumed at least that much).
        """
        if not 0.0 <= play_fraction <= 1.0:
            raise ValueError(
                f"play_fraction must be in [0,1], got {play_fraction}")
        if self.journal is not None:
            self.journal("eval.play", {
                "user": user_id, "file": file_id,
                "play_fraction": play_fraction, "timestamp": timestamp})
        evaluation = self._upsert(user_id, file_id, timestamp)
        if (evaluation.play_fraction is None
                or play_fraction > evaluation.play_fraction):
            evaluation.play_fraction = play_fraction
        return evaluation

    def _upsert(self, user_id: str, file_id: str, timestamp: float,
                implicit: Optional[float] = None,
                explicit: Optional[float] = None) -> FileEvaluation:
        self._dirty_files.add(file_id)
        self._dirty_users.add(user_id)
        per_user = self._by_user.setdefault(user_id, {})
        evaluation = per_user.get(file_id)
        if evaluation is None:
            evaluation = FileEvaluation(user_id=user_id, file_id=file_id,
                                        timestamp=timestamp)
            per_user[file_id] = evaluation
            self._by_file.setdefault(file_id, {})[user_id] = evaluation
        if implicit is not None:
            evaluation.implicit = implicit
        if explicit is not None:
            evaluation.explicit = explicit
        evaluation.timestamp = max(evaluation.timestamp, timestamp)
        return evaluation

    def remove(self, user_id: str, file_id: str) -> None:
        """Drop one evaluation (e.g. the user deleted the file long ago)."""
        if self.journal is not None:
            self.journal("eval.remove", {"user": user_id, "file": file_id})
        self._dirty_files.add(file_id)
        self._dirty_users.add(user_id)
        per_user = self._by_user.get(user_id)
        if per_user and file_id in per_user:
            del per_user[file_id]
            if not per_user:
                del self._by_user[user_id]
        per_file = self._by_file.get(file_id)
        if per_file and user_id in per_file:
            del per_file[user_id]
            if not per_file:
                del self._by_file[file_id]

    def prune_older_than(self, cutoff_timestamp: float) -> int:
        """Section 4.3 pruning: drop evaluations last touched before cutoff.

        Returns the number of evaluations removed.
        """
        stale: List[Tuple[str, str]] = [
            (evaluation.user_id, evaluation.file_id)
            for evaluation in self._iter_all()
            if evaluation.timestamp < cutoff_timestamp
        ]
        for user_id, file_id in stale:
            self.remove(user_id, file_id)
        return len(stale)

    # ------------------------------------------------------------------ #
    # Delta tracking                                                     #
    # ------------------------------------------------------------------ #

    def dirty_files(self) -> Set[str]:
        """Files touched (upserted/removed) since the last clear."""
        return set(self._dirty_files)

    def dirty_users(self) -> Set[str]:
        """Users whose evaluation vectors changed since the last clear."""
        return set(self._dirty_users)

    @property
    def has_dirty(self) -> bool:
        return bool(self._dirty_files) or bool(self._dirty_users)

    def clear_dirty(self) -> None:
        """Mark the current state as built; next deltas start from here."""
        self._dirty_files.clear()
        self._dirty_users.clear()

    # ------------------------------------------------------------------ #
    # Journal replay                                                     #
    # ------------------------------------------------------------------ #

    def apply_record(self, kind: str, payload: Mapping[str, Any]) -> None:
        """Replay one journalled mutation through the live ingest path.

        Each record re-enters the public mutator that emitted it, so replay
        marks the same dirty sets and produces bit-identical state — note
        :meth:`prune_older_than` journals as the individual ``eval.remove``
        records it performs, so there is no prune kind here.
        """
        if kind == "eval.retention":
            self.record_retention(payload["user"], payload["file"],
                                  payload["retention_seconds"],
                                  payload["timestamp"])
        elif kind == "eval.vote":
            self.record_vote(payload["user"], payload["file"],
                             payload["vote"], payload["timestamp"])
        elif kind == "eval.implicit":
            self.record_implicit(payload["user"], payload["file"],
                                 payload["implicit"], payload["timestamp"])
        elif kind == "eval.play":
            self.record_play(payload["user"], payload["file"],
                             payload["play_fraction"], payload["timestamp"])
        elif kind == "eval.remove":
            self.remove(payload["user"], payload["file"])
        else:
            raise ValueError(f"unknown evaluation record kind {kind!r}")

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #

    def get(self, user_id: str, file_id: str) -> Optional[FileEvaluation]:
        return self._by_user.get(user_id, {}).get(file_id)

    def value(self, user_id: str, file_id: str) -> Optional[float]:
        """Eq. 1 value of one evaluation, or None if absent."""
        evaluation = self.get(user_id, file_id)
        if evaluation is None:
            return None
        return evaluation.value(self.config)

    def files_evaluated_by(self, user_id: str) -> Set[str]:
        return set(self._by_user.get(user_id, ()))

    def users_evaluating(self, file_id: str) -> Set[str]:
        return set(self._by_file.get(file_id, ()))

    def evaluation_vector(self, user_id: str) -> Dict[str, float]:
        """All of one user's Eq. 1 values keyed by file id."""
        return {
            file_id: evaluation.value(self.config)
            for file_id, evaluation in self._by_user.get(user_id, {}).items()
        }

    def shared_files(self, user_a: str, user_b: str) -> Set[str]:
        """The intersection F of files both users evaluated (Eq. 2)."""
        files_a = self._by_user.get(user_a)
        files_b = self._by_user.get(user_b)
        if not files_a or not files_b:
            return set()
        if len(files_a) > len(files_b):
            files_a, files_b = files_b, files_a
        return {file_id for file_id in files_a if file_id in files_b}

    def file_evaluations(self, file_id: str) -> Dict[str, float]:
        """Eq. 1 values of every user who evaluated ``file_id``."""
        return {
            user_id: evaluation.value(self.config)
            for user_id, evaluation in self._by_file.get(file_id, {}).items()
        }

    def users(self) -> Set[str]:
        return set(self._by_user)

    def files(self) -> Set[str]:
        return set(self._by_file)

    def vote_count(self, user_id: str) -> int:
        """How many of the user's evaluations carry an explicit vote."""
        return sum(1 for evaluation in self._by_user.get(user_id, {}).values()
                   if evaluation.has_vote)

    def __len__(self) -> int:
        return sum(len(per_user) for per_user in self._by_user.values())

    def _iter_all(self) -> Iterator[FileEvaluation]:
        for per_user in self._by_user.values():
            yield from per_user.values()

    def __iter__(self) -> Iterator[FileEvaluation]:
        return self._iter_all()

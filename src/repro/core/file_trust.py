"""File-based direct trust (Section 3.1.1, Eqs. 2-3).

Two users who evaluate the same files similarly are inferred to trust each
other::

    FT_ij = 1 - (1/m) * sum_{k in F} |E_ik - E_jk|      (Eq. 2)
    FM_ij = FT_ij / sum_{k in U_all} FT_ik              (Eq. 3)

where ``F`` is the intersection of files both evaluated (``m = |F|``).  When
the intersection is empty there is *no* file-based edge — this is exactly the
sparsity the multi-dimensional design fights.

This module also exposes the pairwise trust function on its own so the
Figure 1 replay can test edge existence without materialising a full matrix.
"""

from __future__ import annotations

from math import fsum
from typing import Dict, Iterable, Optional, Set, Tuple

from ..lint.contracts import check_row_stochastic
from .config import DEFAULT_CONFIG, ReputationConfig
from .distances import get_similarity
from .evaluation import EvaluationStore
from .matrix import TrustMatrix

__all__ = ["file_trust", "build_file_trust_matrix", "FileTrustAccumulator"]


def file_trust(store: EvaluationStore, user_a: str, user_b: str,
               config: ReputationConfig = DEFAULT_CONFIG) -> Optional[float]:
    """Eq. 2: ``FT_ab``, or ``None`` when the users share no evaluated files.

    ``None`` (no relationship) is distinct from ``0.0`` (maximally opposed
    opinions); Eq. 3's normalisation treats both as a zero matrix entry, but
    the coverage analysis of Figure 1 counts only the former as "uncovered".
    """
    shared = store.shared_files(user_a, user_b)
    if len(shared) < config.min_overlap:
        return None
    similarity = get_similarity(config.distance_metric)
    vector_a = [store.value(user_a, file_id) for file_id in shared]
    vector_b = [store.value(user_b, file_id) for file_id in shared]
    return similarity(vector_a, vector_b)  # type: ignore[arg-type]


def build_file_trust_matrix(store: EvaluationStore,
                            config: ReputationConfig = DEFAULT_CONFIG,
                            users: Optional[Iterable[str]] = None
                            ) -> TrustMatrix:
    """Eqs. 2-3: the row-normalised file-based one-step matrix ``FM``.

    Rather than comparing all user pairs (quadratic in the population), we
    invert through the file index — only pairs that co-evaluated a file can
    have an edge — and exploit that every Eq. 2 metric decomposes into a
    per-file term plus a finaliser (see ``PAIRWISE_ACCUMULATORS``), so each
    co-evaluation costs O(1) instead of re-intersecting vectors.
    """
    from .distances import PAIRWISE_ACCUMULATORS

    universe = set(users) if users is not None else store.users()
    term, finalize = PAIRWISE_ACCUMULATORS[config.distance_metric]

    totals: Dict[tuple, float] = {}
    counts: Dict[tuple, int] = {}
    # Sorted: store.files() is a set, and the per-pair accumulation order
    # must not depend on PYTHONHASHSEED (float sums are order-sensitive).
    for file_id in sorted(store.files()):
        evaluators = sorted(u for u in store.users_evaluating(file_id)
                            if u in universe)
        if len(evaluators) < 2:
            continue
        values = {u: store.value(u, file_id) for u in evaluators}
        for index, a in enumerate(evaluators):
            value_a = values[a]
            for b in evaluators[index + 1:]:
                pair = (a, b)
                totals[pair] = totals.get(pair, 0.0) + term(value_a, values[b])
                counts[pair] = counts.get(pair, 0) + 1

    raw = TrustMatrix()
    for pair, count in counts.items():
        if count < config.min_overlap:
            continue
        trust = finalize(totals[pair], count)
        if trust > 0.0:
            a, b = pair
            raw.set(a, b, trust)
            raw.set(b, a, trust)
    matrix = raw.row_normalized()
    check_row_stochastic(matrix, name="FM")
    return matrix


class FileTrustAccumulator:
    """Patch-based FM builder keyed by *dirty files*.

    Unlike DM/UM rows, an FM entry couples two users through every file both
    evaluated, so a single re-evaluation of file ``k`` perturbs every pair
    that co-evaluated ``k`` — but *only* those pairs.  The accumulator makes
    that delta invertible by remembering, per pair, the Eq. 2 term each file
    contributed (``_pair_terms``) and, per file, which pairs it touches
    (``_file_pairs``).  A refresh retracts the dirty files' old terms,
    re-derives their new ones, re-finalises exactly the perturbed pairs and
    re-normalises exactly the perturbed rows.

    Bit-identical to :func:`build_file_trust_matrix` by construction: a
    pair's total is re-summed left-to-right over its term files in sorted
    order — the same accumulation sequence the full builder produces by
    walking ``sorted(store.files())`` — and row normalisation shares the
    order-independent fsum of :meth:`TrustMatrix.row_normalized`.
    """

    def __init__(self, config: ReputationConfig = DEFAULT_CONFIG):
        from .distances import PAIRWISE_ACCUMULATORS

        self._config = config
        self._term, self._finalize = PAIRWISE_ACCUMULATORS[config.distance_metric]
        #: pair -> {file_id: Eq. 2 term} for every file both users evaluated.
        self._pair_terms: Dict[Tuple[str, str], Dict[str, float]] = {}
        #: file_id -> pairs currently holding a term from this file.
        self._file_pairs: Dict[str, Set[Tuple[str, str]]] = {}
        #: Un-normalised symmetric FT matrix (Eq. 2 finalised values).
        self._raw = TrustMatrix()
        #: Row-normalised FM (Eq. 3).
        self.matrix = TrustMatrix()
        #: Rows changed by the most recent :meth:`refresh`.
        self.last_dirty_rows: Set[str] = set()

    def refresh(self, store: EvaluationStore,
                dirty_files: Iterable[str]) -> Set[str]:
        """Re-derive everything downstream of ``dirty_files``; returns rows touched."""
        changed_pairs: Set[Tuple[str, str]] = set()
        for file_id in sorted(set(dirty_files)):
            # Retract the file's previous contribution...
            for pair in self._file_pairs.pop(file_id, ()):
                terms = self._pair_terms[pair]
                del terms[file_id]
                if not terms:
                    del self._pair_terms[pair]
                changed_pairs.add(pair)
            # ...then contribute its current evaluator set.  No universe
            # filter: users_evaluating() is always a subset of store.users().
            evaluators = sorted(store.users_evaluating(file_id))
            if len(evaluators) < 2:
                continue
            values = {u: store.value(u, file_id) for u in evaluators}
            pairs: Set[Tuple[str, str]] = set()
            for index, a in enumerate(evaluators):
                value_a = values[a]
                for b in evaluators[index + 1:]:
                    pair = (a, b)
                    self._pair_terms.setdefault(pair, {})[file_id] = (
                        self._term(value_a, values[b]))
                    pairs.add(pair)
                    changed_pairs.add(pair)
            self._file_pairs[file_id] = pairs

        touched: Set[str] = set()
        for pair in sorted(changed_pairs):
            a, b = pair
            trust = 0.0
            terms = self._pair_terms.get(pair)
            if terms is not None and len(terms) >= self._config.min_overlap:
                # Left-to-right over sorted files: the exact accumulation
                # sequence of the full builder's per-pair running total.
                total = 0.0
                for term_file in sorted(terms):
                    total += terms[term_file]
                trust = self._finalize(total, len(terms))
            value = trust if trust > 0.0 else 0.0
            if value != self._raw.get(a, b):
                self._raw.set(a, b, value)
                self._raw.set(b, a, value)
                touched.add(a)
                touched.add(b)

        for user in sorted(touched):
            raw_row = self._raw.row_view(user)
            total = fsum(raw_row.values())
            if total > 0:
                self.matrix.replace_row(
                    user, {j: value / total for j, value in raw_row.items()})
            else:
                self.matrix.replace_row(user, {})
        self.last_dirty_rows = touched
        check_row_stochastic(self.matrix, name="FM")
        return touched

    def rebuild(self, store: EvaluationStore) -> Set[str]:
        """Full pass: forget everything and re-derive from every file."""
        stale_rows = set(self.matrix.row_ids())
        self._pair_terms = {}
        self._file_pairs = {}
        self._raw = TrustMatrix()
        self.matrix = TrustMatrix()
        self.last_dirty_rows = self.refresh(store, store.files()) | stale_rows
        return self.last_dirty_rows

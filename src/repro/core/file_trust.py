"""File-based direct trust (Section 3.1.1, Eqs. 2-3).

Two users who evaluate the same files similarly are inferred to trust each
other::

    FT_ij = 1 - (1/m) * sum_{k in F} |E_ik - E_jk|      (Eq. 2)
    FM_ij = FT_ij / sum_{k in U_all} FT_ik              (Eq. 3)

where ``F`` is the intersection of files both evaluated (``m = |F|``).  When
the intersection is empty there is *no* file-based edge — this is exactly the
sparsity the multi-dimensional design fights.

This module also exposes the pairwise trust function on its own so the
Figure 1 replay can test edge existence without materialising a full matrix.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..lint.contracts import check_row_stochastic
from .config import DEFAULT_CONFIG, ReputationConfig
from .distances import get_similarity
from .evaluation import EvaluationStore
from .matrix import TrustMatrix

__all__ = ["file_trust", "build_file_trust_matrix"]


def file_trust(store: EvaluationStore, user_a: str, user_b: str,
               config: ReputationConfig = DEFAULT_CONFIG) -> Optional[float]:
    """Eq. 2: ``FT_ab``, or ``None`` when the users share no evaluated files.

    ``None`` (no relationship) is distinct from ``0.0`` (maximally opposed
    opinions); Eq. 3's normalisation treats both as a zero matrix entry, but
    the coverage analysis of Figure 1 counts only the former as "uncovered".
    """
    shared = store.shared_files(user_a, user_b)
    if len(shared) < config.min_overlap:
        return None
    similarity = get_similarity(config.distance_metric)
    vector_a = [store.value(user_a, file_id) for file_id in shared]
    vector_b = [store.value(user_b, file_id) for file_id in shared]
    return similarity(vector_a, vector_b)  # type: ignore[arg-type]


def build_file_trust_matrix(store: EvaluationStore,
                            config: ReputationConfig = DEFAULT_CONFIG,
                            users: Optional[Iterable[str]] = None
                            ) -> TrustMatrix:
    """Eqs. 2-3: the row-normalised file-based one-step matrix ``FM``.

    Rather than comparing all user pairs (quadratic in the population), we
    invert through the file index — only pairs that co-evaluated a file can
    have an edge — and exploit that every Eq. 2 metric decomposes into a
    per-file term plus a finaliser (see ``PAIRWISE_ACCUMULATORS``), so each
    co-evaluation costs O(1) instead of re-intersecting vectors.
    """
    from .distances import PAIRWISE_ACCUMULATORS

    universe = set(users) if users is not None else store.users()
    term, finalize = PAIRWISE_ACCUMULATORS[config.distance_metric]

    totals: Dict[tuple, float] = {}
    counts: Dict[tuple, int] = {}
    # Sorted: store.files() is a set, and the per-pair accumulation order
    # must not depend on PYTHONHASHSEED (float sums are order-sensitive).
    for file_id in sorted(store.files()):
        evaluators = sorted(u for u in store.users_evaluating(file_id)
                            if u in universe)
        if len(evaluators) < 2:
            continue
        values = {u: store.value(u, file_id) for u in evaluators}
        for index, a in enumerate(evaluators):
            value_a = values[a]
            for b in evaluators[index + 1:]:
                pair = (a, b)
                totals[pair] = totals.get(pair, 0.0) + term(value_a, values[b])
                counts[pair] = counts.get(pair, 0) + 1

    raw = TrustMatrix()
    for pair, count in counts.items():
        if count < config.min_overlap:
            continue
        trust = finalize(totals[pair], count)
        if trust > 0.0:
            a, b = pair
            raw.set(a, b, trust)
            raw.set(b, a, trust)
    matrix = raw.row_normalized()
    check_row_stochastic(matrix, name="FM")
    return matrix

"""Generational snapshots of the reputation-system state.

A snapshot is a v2 :mod:`repro.core.persistence` document written
atomically (temp file + ``rename`` + directory fsync) under the name
``snapshot-<last_seq:020d>.json`` — the zero-padded journal sequence it is
current through doubles as the generation number, so lexicographic order is
recovery order.  Old generations are pruned down to ``keep`` so the
directory stays bounded, but never below one: a corrupt latest generation
must always leave an older one to fall back to.

Corruption handling is quarantine-first: a snapshot that fails JSON
parsing, checksum verification or restore is renamed to ``*.corrupt``
(preserved for post-mortem, never re-read) and the next-older generation is
tried.  Only when every generation is exhausted does loading fail.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..persistence import (save_system, system_from_dict, wal_last_seq)
from ..reputation_system import MultiDimensionalReputationSystem

__all__ = ["SnapshotStore", "LoadedSnapshot", "QuarantinedSnapshot",
           "SNAPSHOT_PATTERN"]

SNAPSHOT_PATTERN = re.compile(r"^snapshot-(\d{20})\.json$")


@dataclass(frozen=True)
class QuarantinedSnapshot:
    """One generation set aside because it could not be trusted."""

    original: Path
    quarantined: Path
    reason: str


@dataclass
class LoadedSnapshot:
    """The newest generation that restored cleanly."""

    system: MultiDimensionalReputationSystem
    path: Path
    #: Journal sequence the snapshot is current through.
    last_seq: int
    #: Generations that failed verification on the way here (newest first).
    quarantined: List[QuarantinedSnapshot] = field(default_factory=list)


class SnapshotStore:
    """Writes, prunes, and fault-tolerantly reloads snapshot generations."""

    def __init__(self, directory: Union[str, Path], keep: int = 3) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = keep

    def path_for(self, last_seq: int) -> Path:
        return self.directory / f"snapshot-{last_seq:020d}.json"

    def generations(self) -> List[Tuple[int, Path]]:
        """All on-disk generations, oldest first (quarantined excluded)."""
        found: List[Tuple[int, Path]] = []
        if not self.directory.is_dir():
            return found
        for entry in sorted(os.listdir(self.directory)):
            match = SNAPSHOT_PATTERN.match(entry)
            if match:
                found.append((int(match.group(1)), self.directory / entry))
        return found

    # ------------------------------------------------------------------ #
    # Writing                                                            #
    # ------------------------------------------------------------------ #

    def write(self, system: MultiDimensionalReputationSystem,
              last_seq: int) -> Path:
        """Atomically persist one generation; prunes old ones afterwards.

        The temp-write + rename + directory-fsync dance guarantees a crash
        mid-snapshot leaves either the complete new generation or none of
        it — never a half-written file under the canonical name.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        final = self.path_for(last_seq)
        tmp = final.with_suffix(".json.tmp")
        save_system(system, tmp, last_seq=last_seq)
        with open(tmp, "rb") as handle:
            os.fsync(handle.fileno())
        os.replace(tmp, final)
        self._fsync_directory()
        self._prune()
        return final

    def _prune(self) -> None:
        generations = self.generations()
        for _seq, path in generations[:max(0, len(generations) - self.keep)]:
            path.unlink()
        self._fsync_directory()

    def _fsync_directory(self) -> None:
        fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # ------------------------------------------------------------------ #
    # Loading                                                            #
    # ------------------------------------------------------------------ #

    def quarantine(self, path: Path, reason: str) -> QuarantinedSnapshot:
        """Rename a distrusted generation to ``*.corrupt`` (kept, not read)."""
        target = path.with_name(path.name + ".corrupt")
        os.replace(path, target)
        self._fsync_directory()
        return QuarantinedSnapshot(original=path, quarantined=target,
                                   reason=reason)

    def load_latest(self) -> Optional[LoadedSnapshot]:
        """Restore from the newest verifiable generation.

        Walks generations newest to oldest; each one that fails parsing,
        checksum verification, or restore is quarantined and the walk
        continues.  Returns ``None`` only when no generation exists at all;
        raises when generations existed but every one was corrupt (data
        loss the caller must not paper over).
        """
        generations = self.generations()
        if not generations:
            return None
        quarantined: List[QuarantinedSnapshot] = []
        for _seq, path in reversed(generations):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    data = json.load(handle)
                system = system_from_dict(data)
                last_seq = wal_last_seq(data)
            except (ValueError, KeyError, TypeError, OSError) as error:
                quarantined.append(self.quarantine(path, reason=str(error)))
                continue
            return LoadedSnapshot(system=system, path=path,
                                  last_seq=last_seq, quarantined=quarantined)
        reasons = "; ".join(
            f"{q.original.name}: {q.reason}" for q in quarantined)
        raise ValueError(
            f"every snapshot generation in {self.directory} failed "
            f"verification ({reasons}); corrupt files were quarantined "
            f"as *.corrupt")

"""Crash safety for the trust state: WAL, snapshots, recovery, faults.

The live system journals every store mutation to an append-only binary WAL
(:mod:`.wal`) and periodically persists generational snapshots
(:mod:`.snapshots`); :mod:`.journal` wires both to a running
:class:`~repro.core.reputation_system.MultiDimensionalReputationSystem`,
and :mod:`.recovery` rebuilds the exact pre-crash state from the latest
good generation plus a WAL-tail replay through the live ingest path.
:mod:`.faults` injects the crashes the other four must survive.
"""

from .faults import CrashPlan, FaultyFile, SimulatedCrash, flip_byte, truncate_file
from .journal import (WAL_FILENAME, DurabilityManager, attach_journal,
                      detach_journal)
from .recovery import RecoveryResult, recover
from .snapshots import LoadedSnapshot, QuarantinedSnapshot, SnapshotStore
from .wal import (WalRecord, WalScan, WalWriter, encode_record, read_wal,
                  scan_wal, truncate_wal)

__all__ = [
    "CrashPlan", "DurabilityManager", "FaultyFile", "LoadedSnapshot",
    "QuarantinedSnapshot", "RecoveryResult", "SimulatedCrash",
    "SnapshotStore", "WAL_FILENAME", "WalRecord", "WalScan", "WalWriter",
    "attach_journal", "detach_journal", "encode_record", "flip_byte",
    "read_wal", "recover", "scan_wal", "truncate_file", "truncate_wal",
]

"""The append-only binary write-ahead log.

One WAL file holds the totally-ordered stream of store mutations a
journalled :class:`~repro.core.reputation_system
.MultiDimensionalReputationSystem` performed.  The format is deliberately
boring — every design choice serves torn-write recovery:

* a fixed 12-byte header (``REPROWAL`` magic + format version) so a
  truncated or foreign file is rejected before any record is trusted;
* length-prefixed frames: ``<u32 body length> <u32 CRC32(body)> <body>``,
  body = ``<u64 sequence> <canonical JSON record>`` — all little-endian;
* monotonic sequence numbers (+1 per record) so a dropped or duplicated
  frame is detected even when its CRC happens to check out;
* appends only.  Nothing in the file is ever rewritten, so the only
  corruption an OS crash can produce mid-file is a torn tail — and the
  reader treats *any* invalid frame as end-of-log, reporting the longest
  valid prefix instead of raising.

Durability policy is explicit: ``fsync="always"`` syncs per append,
``"batch"`` syncs only on :meth:`WalWriter.sync` (the caller picks the
boundary — e.g. one simulator maintenance tick), ``"none"`` leaves flushing
to the OS.  The fault-injection tests kill writers at every one of these
boundaries and assert recovery still yields a prefix.
"""

from __future__ import annotations

import json
import math
import os
import struct
import zlib
from dataclasses import dataclass
from json.encoder import encode_basestring_ascii as _escape_string
from pathlib import Path
from typing import Any, BinaryIO, Dict, List, Optional, Tuple, Union

__all__ = ["WAL_MAGIC", "WAL_VERSION", "WalRecord", "WalScan", "WalWriter",
           "encode_record", "read_wal", "scan_wal", "truncate_wal",
           "wal_header"]

WAL_MAGIC = b"REPROWAL"
WAL_VERSION = 1

_HEADER = struct.Struct("<8sHH")  # magic, version, reserved flags
_FRAME = struct.Struct("<II")     # body length, CRC32(body)
_SEQ = struct.Struct("<Q")

#: Sanity bound on one frame body; a corrupt length prefix must not make
#: the reader try to allocate gigabytes before the CRC can reject it.
MAX_RECORD_BYTES = 1 << 26

HEADER_SIZE = _HEADER.size
FRAME_OVERHEAD = _FRAME.size


@dataclass(frozen=True)
class WalRecord:
    """One decoded journal record."""

    seq: int
    kind: str
    payload: Dict[str, Any]
    #: Byte offset of the frame start within the WAL file.
    offset: int
    #: Total frame size in bytes (prefix + body).
    frame_bytes: int


@dataclass(frozen=True)
class WalScan:
    """The longest valid prefix of a WAL file, plus what ended it.

    ``truncated`` is True when bytes follow the valid prefix (torn tail,
    CRC mismatch, sequence gap, garbage); ``reason`` says why decoding
    stopped.  A clean end-of-file yields ``truncated=False``.
    """

    records: List[WalRecord]
    #: Bytes of the file covered by the header + valid records; a repair
    #: truncates the file to exactly this length.
    valid_bytes: int
    truncated: bool
    reason: Optional[str]
    file_bytes: int

    @property
    def last_seq(self) -> int:
        """Sequence number of the last valid record (0 when none)."""
        return self.records[-1].seq if self.records else 0

    @property
    def tail_bytes(self) -> int:
        """Bytes past the valid prefix (0 for a clean log)."""
        return self.file_bytes - self.valid_bytes


def wal_header() -> bytes:
    """The 12-byte file header every WAL starts with."""
    return _HEADER.pack(WAL_MAGIC, WAL_VERSION, 0)


def _scalar(value: Any) -> str:
    """Canonical JSON for one flat payload value.

    Journal payloads are flat dicts of strings and finite numbers; encoding
    them by hand skips the per-call ``JSONEncoder`` construction that
    dominates ``json.dumps`` on tiny documents (the append path runs per
    store mutation).  Output stays strictly ``json.loads``-compatible.
    """
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    kind = type(value)
    if kind is str:
        return _escape_string(value)
    if kind is int:
        return repr(value)
    if kind is float and math.isfinite(value):
        return float.__repr__(value)
    raise TypeError(f"non-scalar journal payload value {value!r}")


def encode_record(seq: int, kind: str, payload: Dict[str, Any]) -> bytes:
    """Encode one record as a self-checking frame.

    The JSON body is canonical (sorted keys, compact separators), so the
    same logical record always produces the same bytes — WALs written by
    two runs of the same seeded workload are byte-identical, which the
    CLI crash tests rely on to compare a killed run against an
    uninterrupted one.
    """
    if seq < 1:
        raise ValueError(f"sequence numbers start at 1, got {seq}")
    try:
        fields = ",".join(
            f"{_escape_string(key)}:{_scalar(payload[key])}"
            for key in sorted(payload))
        document = ('{"data":{%s},"kind":%s}'
                    % (fields, _escape_string(kind)))
    except TypeError:
        # Nested or exotic payloads take the slow, general path.
        document = json.dumps({"kind": kind, "data": payload},
                              sort_keys=True, separators=(",", ":"))
    body = _SEQ.pack(seq) + document.encode("utf-8")
    if len(body) > MAX_RECORD_BYTES:
        raise ValueError(f"record of {len(body)} bytes exceeds the "
                         f"{MAX_RECORD_BYTES}-byte frame bound")
    return _FRAME.pack(len(body), zlib.crc32(body)) + body


def _decode_body(body: bytes, offset: int,
                 frame_bytes: int) -> Tuple[Optional[WalRecord], Optional[str]]:
    """(record, None) on success, (None, reason) on malformed body."""
    seq = _SEQ.unpack_from(body)[0]
    try:
        document = json.loads(body[_SEQ.size:].decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None, "undecodable record body"
    if (not isinstance(document, dict)
            or not isinstance(document.get("kind"), str)
            or not isinstance(document.get("data"), dict)):
        return None, "record body is not a {kind, data} document"
    return WalRecord(seq=seq, kind=document["kind"], payload=document["data"],
                     offset=offset, frame_bytes=frame_bytes), None


def scan_wal(data: bytes) -> WalScan:
    """Decode the longest valid record prefix of raw WAL bytes.

    Never raises on corruption: the first invalid byte — torn frame,
    failed CRC, sequence gap, undecodable body — ends the log, and the
    scan reports where and why.  A crashed writer's torn tail therefore
    costs at most the records past the last complete frame.
    """
    size = len(data)
    if size < HEADER_SIZE:
        return WalScan(records=[], valid_bytes=0, truncated=size > 0,
                       reason="short header" if size else None,
                       file_bytes=size)
    magic, version, _flags = _HEADER.unpack_from(data)
    if magic != WAL_MAGIC:
        return WalScan(records=[], valid_bytes=0, truncated=True,
                       reason="bad magic", file_bytes=size)
    if version != WAL_VERSION:
        return WalScan(records=[], valid_bytes=0, truncated=True,
                       reason=f"unsupported WAL version {version}",
                       file_bytes=size)

    records: List[WalRecord] = []
    offset = HEADER_SIZE
    previous_seq = 0

    def stop(reason: Optional[str]) -> WalScan:
        return WalScan(records=records, valid_bytes=offset,
                       truncated=reason is not None, reason=reason,
                       file_bytes=size)

    while offset < size:
        if size - offset < FRAME_OVERHEAD:
            return stop("torn frame prefix")
        length, crc = _FRAME.unpack_from(data, offset)
        if length < _SEQ.size or length > MAX_RECORD_BYTES:
            return stop("implausible frame length")
        body_start = offset + FRAME_OVERHEAD
        if size - body_start < length:
            return stop("torn frame body")
        body = data[body_start:body_start + length]
        if zlib.crc32(body) != crc:
            return stop("CRC mismatch")
        frame_bytes = FRAME_OVERHEAD + length
        record, reason = _decode_body(body, offset, frame_bytes)
        if record is None:
            return stop(reason)
        if records:
            if record.seq != previous_seq + 1:
                return stop(f"sequence gap ({previous_seq} -> {record.seq})")
        elif record.seq < 1:
            return stop("sequence numbers start at 1")
        records.append(record)
        previous_seq = record.seq
        offset += frame_bytes
    return stop(None)


def read_wal(path: Union[str, Path]) -> WalScan:
    """Read and :func:`scan_wal` a WAL file."""
    with open(path, "rb") as handle:
        return scan_wal(handle.read())


def truncate_wal(path: Union[str, Path], scan: WalScan) -> int:
    """Cut a scanned WAL back to its valid prefix; returns bytes removed.

    Recovery calls this before resuming appends so the next record lands
    directly after the last valid one instead of behind garbage that would
    poison every later scan.
    """
    removed = scan.tail_bytes
    if removed <= 0:
        return 0
    with open(path, "r+b") as handle:
        handle.truncate(scan.valid_bytes)
        handle.flush()
        os.fsync(handle.fileno())
    return removed


class WalWriter:
    """Appends self-checking frames to a WAL file.

    ``fsync`` picks the durability/throughput point: ``"always"`` syncs
    every append (each record survives an OS crash), ``"batch"`` syncs only
    on explicit :meth:`sync` calls, ``"none"`` never syncs (buffered;
    suitable for simulations where the artefact matters but mid-run power
    loss does not).  ``repro bench-wal`` measures all three.

    ``fileobj`` lets tests substitute a fault-injecting file (see
    :class:`~repro.core.durability.faults.FaultyFile`); the writer then
    neither opens nor owns the underlying descriptor's path.
    """

    FSYNC_POLICIES = ("none", "batch", "always")

    def __init__(self, path: Union[str, Path], fsync: str = "batch",
                 start_seq: int = 0,
                 fileobj: Optional[BinaryIO] = None) -> None:
        if fsync not in self.FSYNC_POLICIES:
            raise ValueError(f"fsync must be one of {self.FSYNC_POLICIES}, "
                             f"got {fsync!r}")
        if start_seq < 0:
            raise ValueError(f"start_seq must be >= 0, got {start_seq}")
        self.path = Path(path)
        self.fsync_policy = fsync
        self._last_seq = start_seq
        self._appended = 0
        if fileobj is not None:
            self._file: BinaryIO = fileobj
        else:
            self._file = open(self.path, "ab")
        self._closed = False
        if self._file.tell() == 0:
            self._file.write(wal_header())

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended record."""
        return self._last_seq

    @property
    def appended(self) -> int:
        """Records appended by this writer instance."""
        return self._appended

    def append(self, kind: str, payload: Dict[str, Any]) -> int:
        """Append one record; returns its sequence number."""
        if self._closed:
            raise ValueError("cannot append to a closed WAL writer")
        seq = self._last_seq + 1
        self._file.write(encode_record(seq, kind, payload))
        if self.fsync_policy == "always":
            self._sync_file()
        self._last_seq = seq
        self._appended += 1
        return seq

    def sync(self) -> None:
        """Flush buffers and fsync (the ``"batch"`` policy's boundary).

        Under ``"none"`` this only flushes to the OS — the policy promises
        the kernel never waits on the disk, even at explicit safe points.
        """
        if self._closed:
            return
        if self.fsync_policy == "none":
            self._file.flush()
        else:
            self._sync_file()

    def close(self) -> None:
        """Durably close the log (final fsync unless policy is "none")."""
        if self._closed:
            return
        if self.fsync_policy != "none":
            self._sync_file()
        else:
            self._file.flush()
        self._file.close()
        self._closed = True

    def _sync_file(self) -> None:
        self._file.flush()
        # FaultyFile intercepts fsync to inject kills at sync boundaries;
        # a plain file object goes through os.fsync.
        fsync = getattr(self._file, "fsync", None)
        if callable(fsync):
            fsync()
        else:
            os.fsync(self._file.fileno())

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

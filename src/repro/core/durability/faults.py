"""Storage fault injection for the durability tests.

The crash-recovery guarantee is only as good as the crashes it is tested
against, so this module makes the ugly ones cheap to stage:

* :class:`FaultyFile` wraps the WAL's file object and executes a
  :class:`CrashPlan` — die before/after the Nth ``write``, tear the Nth
  write in half, die before/after the Nth ``fsync``.  Because
  :class:`~repro.core.durability.wal.WalWriter` calls the file's own
  ``fsync`` method when one exists, every fsync boundary in the writer is
  interceptable without monkeypatching.
* :class:`SimulatedCrash` is what an injected death raises; tests (and the
  simulator's ``schedule_crash``) catch exactly it.
* :func:`flip_byte` / :func:`truncate_file` mangle files post-hoc, for
  bit-rot and torn-tail scenarios that happen *after* a clean shutdown.

Everything here is deterministic: a plan says exactly which operation dies
and how, so a failing case replays byte-for-byte.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

__all__ = ["SimulatedCrash", "CrashPlan", "FaultyFile", "flip_byte",
           "truncate_file"]


class SimulatedCrash(Exception):
    """An injected process death (torn write, kill at fsync, scheduled kill)."""


@dataclass
class CrashPlan:
    """Which I/O operation dies, and how.  Indices are 1-based; ``None``
    disables that fault.  At most one fault fires per plan — the first
    whose condition is met."""

    #: Die before the Nth ``write`` touches the file (nothing lands).
    crash_before_write: Optional[int] = None
    #: Die after the Nth ``write`` completed (buffered, flushed, unfsynced).
    crash_after_write: Optional[int] = None
    #: Tear the Nth ``write``: only a prefix of its bytes land, then die.
    torn_write_at: Optional[int] = None
    #: Bytes of the torn write that do land (default: half, at least 1).
    torn_write_keep: Optional[int] = None
    #: Die before the Nth ``fsync`` syncs (buffers flushed, not durable).
    crash_before_fsync: Optional[int] = None
    #: Die after the Nth ``fsync`` completed (everything so far durable).
    crash_after_fsync: Optional[int] = None


class FaultyFile:
    """A binary append file that executes a :class:`CrashPlan`.

    Duck-types the subset of the file API
    :class:`~repro.core.durability.wal.WalWriter` uses (``write``,
    ``flush``, ``tell``, ``close``, ``fileno``) plus ``fsync`` so the
    writer routes sync calls through the plan.  After an injected death the
    underlying file is closed — exactly like a killed process, later disk
    state is whatever the OS had.
    """

    def __init__(self, path: Union[str, Path],
                 plan: Optional[CrashPlan] = None) -> None:
        self.path = Path(path)
        self.plan = plan if plan is not None else CrashPlan()
        self.writes = 0
        self.fsyncs = 0
        self._file = open(self.path, "ab")

    # ------------------------------------------------------------------ #
    # File API used by WalWriter                                         #
    # ------------------------------------------------------------------ #

    def write(self, data: bytes) -> int:
        plan = self.plan
        self.writes += 1
        if plan.crash_before_write == self.writes:
            self._die(f"crash before write #{self.writes}")
        if plan.torn_write_at == self.writes:
            keep = plan.torn_write_keep
            if keep is None:
                keep = max(1, len(data) // 2)
            keep = max(0, min(keep, len(data)))
            self._file.write(data[:keep])
            self._file.flush()
            self._die(f"torn write #{self.writes}: "
                      f"{keep}/{len(data)} bytes landed")
        self._file.write(data)
        if plan.crash_after_write == self.writes:
            self._file.flush()
            self._die(f"crash after write #{self.writes}")
        return len(data)

    def fsync(self) -> None:
        plan = self.plan
        self.fsyncs += 1
        if plan.crash_before_fsync == self.fsyncs:
            self._file.flush()
            self._die(f"crash before fsync #{self.fsyncs}")
        self._file.flush()
        os.fsync(self._file.fileno())
        if plan.crash_after_fsync == self.fsyncs:
            self._die(f"crash after fsync #{self.fsyncs}")

    def flush(self) -> None:
        self._file.flush()

    def tell(self) -> int:
        return self._file.tell()

    def fileno(self) -> int:
        return self._file.fileno()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    @property
    def closed(self) -> bool:
        return self._file.closed

    def _die(self, reason: str) -> None:
        self._file.close()
        raise SimulatedCrash(reason)


def flip_byte(path: Union[str, Path], offset: int, mask: int = 0xFF) -> None:
    """XOR one byte of ``path`` in place (bit-rot injection)."""
    if not 1 <= mask <= 0xFF:
        raise ValueError(f"mask must be in [1, 255], got {mask}")
    with open(path, "r+b") as handle:
        handle.seek(offset)
        original = handle.read(1)
        if len(original) != 1:
            raise ValueError(f"offset {offset} is past the end of {path}")
        handle.seek(offset)
        handle.write(bytes([original[0] ^ mask]))
        handle.flush()
        os.fsync(handle.fileno())


def truncate_file(path: Union[str, Path], size: int) -> None:
    """Cut ``path`` to ``size`` bytes (post-hoc torn tail)."""
    if size < 0:
        raise ValueError(f"size must be >= 0, got {size}")
    with open(path, "r+b") as handle:
        handle.truncate(size)
        handle.flush()
        os.fsync(handle.fileno())

"""Crash recovery: latest good snapshot + WAL-tail replay.

Recovery rebuilds the exact pre-crash state in three steps:

1. **Snapshot.**  :class:`~repro.core.durability.snapshots.SnapshotStore`
   restores the newest generation that verifies; corrupt generations are
   quarantined and older ones tried.
2. **Replay.**  The WAL's longest valid prefix is scanned; every record
   with ``seq`` greater than the snapshot's ``last_seq`` is fed through
   ``system.apply_record`` — the *same* store mutators the live system
   used, so dirty-set tracking fires and the incremental pipeline patches
   matrices exactly as it would have live.  With
   ``REPRO_CHECK_INVARIANTS=1`` the pipeline cross-checks every patched
   refresh against a full rebuild, making "bit-identical recovery" a
   machine-checked property rather than a hope.
3. **Repair** (optional).  A torn WAL tail is truncated so appends can
   resume cleanly after the last valid record.

No step ever silently drops data: truncation lengths, quarantined
generations and the stop reason are all reported in
:class:`RecoveryResult` and mirrored to the recorder as
``recovery.replayed_records`` / ``recovery.truncated_tail`` metrics and
``recovery.*`` trace events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ...obs.recorder import NULL_RECORDER, NullRecorder
from ..reputation_system import MultiDimensionalReputationSystem
from .journal import WAL_FILENAME
from .snapshots import QuarantinedSnapshot, SnapshotStore
from .wal import WalScan, read_wal, truncate_wal

__all__ = ["RecoveryResult", "recover"]


@dataclass
class RecoveryResult:
    """Everything :func:`recover` did, for callers and for the CLI."""

    system: MultiDimensionalReputationSystem
    #: Generation the state was restored from.
    snapshot_path: Path
    #: Journal sequence the snapshot covered.
    snapshot_seq: int
    #: WAL records applied on top of the snapshot.
    replayed_records: int
    #: Final journal sequence of the recovered state.
    last_seq: int
    wal_path: Path
    #: ``None`` when no WAL file existed (snapshot-only recovery).
    wal_scan: Optional[WalScan]
    #: Bytes past the WAL's valid prefix (0 for a clean log).
    truncated_tail_bytes: int
    #: Why WAL decoding stopped early, when it did.
    truncation_reason: Optional[str]
    #: Generations quarantined on the way to a loadable snapshot.
    quarantined: List[QuarantinedSnapshot] = field(default_factory=list)
    #: True when a torn tail was physically truncated (``repair=True``).
    repaired: bool = False
    #: Replayed records per shard, from the shard annotation the sharded
    #: journal stamps on row-local records.  Empty for unsharded journals;
    #: records without a single owner (e.g. prunes) are not counted here.
    replayed_by_shard: Dict[int, int] = field(default_factory=dict)


def recover(directory: Union[str, Path],
            recorder: NullRecorder = NULL_RECORDER,
            repair: bool = False) -> RecoveryResult:
    """Rebuild the system state persisted under ``directory``.

    Raises :class:`FileNotFoundError` when the directory holds no
    durability state at all, and :class:`ValueError` when state exists but
    every snapshot generation failed verification — both are conditions a
    caller must see, not paper over.  Torn WAL tails and quarantined
    generations, by contrast, are *expected* crash debris: they are
    reported in the result, never raised.
    """
    directory = Path(directory)
    store = SnapshotStore(directory)
    loaded = store.load_latest()
    if loaded is None:
        raise FileNotFoundError(
            f"no snapshot generations in {directory}; nothing to recover "
            f"(a journalled run writes its baseline generation on attach)")
    for entry in loaded.quarantined:
        recorder.event("recovery.quarantined", file=entry.original.name,
                       reason=entry.reason)

    system = loaded.system
    wal_path = directory / WAL_FILENAME
    scan: Optional[WalScan] = None
    replayed = 0
    replayed_by_shard: Dict[int, int] = {}
    if wal_path.exists():
        scan = read_wal(wal_path)
        for record in scan.records:
            if record.seq <= loaded.last_seq:
                continue
            system.apply_record(record.kind, record.payload)
            replayed += 1
            shard = record.payload.get("shard")
            if isinstance(shard, int):
                replayed_by_shard[shard] = replayed_by_shard.get(shard, 0) + 1
        if replayed:
            system.recompute()

    truncated_tail = scan.tail_bytes if scan is not None else 0
    reason = scan.reason if scan is not None else None
    repaired = False
    if repair and scan is not None and truncated_tail > 0:
        truncate_wal(wal_path, scan)
        repaired = True

    last_seq = max(loaded.last_seq,
                   scan.last_seq if scan is not None else 0)
    recorder.inc("recovery.replayed_records", replayed)
    if truncated_tail:
        recorder.inc("recovery.truncated_tail", truncated_tail)
    recorder.event(
        "recovery.complete", snapshot=loaded.path.name,
        snapshot_seq=loaded.last_seq, replayed_records=replayed,
        last_seq=last_seq, truncated_tail_bytes=truncated_tail,
        truncation_reason=reason, repaired=repaired,
        quarantined=len(loaded.quarantined),
        shards_replayed=len(replayed_by_shard))

    return RecoveryResult(
        system=system, snapshot_path=loaded.path,
        snapshot_seq=loaded.last_seq, replayed_records=replayed,
        last_seq=last_seq, wal_path=wal_path, wal_scan=scan,
        truncated_tail_bytes=truncated_tail, truncation_reason=reason,
        quarantined=loaded.quarantined, repaired=repaired,
        replayed_by_shard=replayed_by_shard)

"""Wiring a live reputation system to its write-ahead log.

:func:`attach_journal` points all four behavioural stores (evaluations,
download ledger, user trust, incentive credits) at one sink; every store
mutator then emits its record *after* validation but *before* the mutation
lands — classic write-ahead ordering, so a crash between the append and the
in-memory apply costs at most one not-yet-applied record, which replay
re-applies.

:class:`DurabilityManager` owns the whole arrangement for one directory:
the :class:`~repro.core.durability.wal.WalWriter`, the
:class:`~repro.core.durability.snapshots.SnapshotStore`, and the policy for
when to cut a new snapshot generation.

**Safe points.**  Snapshots must never be cut from inside the journal sink:
at that moment the record is on disk but its mutation has not applied, so a
snapshot would stamp a ``last_seq`` it does not actually contain and replay
would wrongly skip that record.  :meth:`DurabilityManager.maybe_snapshot`
is therefore a *pull* API the owner calls between operations — the
simulator calls it on its maintenance tick.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, BinaryIO, Dict, Optional, Union

from ...obs.recorder import NULL_RECORDER, NullRecorder
from ..reputation_system import MultiDimensionalReputationSystem
from ..shard import ShardMap, shard_for_record
from .snapshots import SnapshotStore
from .wal import WalWriter

__all__ = ["DurabilityManager", "WAL_FILENAME", "attach_journal",
           "detach_journal"]

WAL_FILENAME = "journal.wal"


def attach_journal(system: MultiDimensionalReputationSystem,
                   sink: "Any") -> None:
    """Point every behavioural store of ``system`` at one journal sink."""
    system.evaluations.journal = sink
    system.ledger.journal = sink
    system.user_trust.journal = sink
    system.credits.journal = sink


def detach_journal(system: MultiDimensionalReputationSystem) -> None:
    """Stop journalling ``system`` (e.g. before a throwaway what-if run)."""
    system.evaluations.journal = None
    system.ledger.journal = None
    system.user_trust.journal = None
    system.credits.journal = None


class DurabilityManager:
    """WAL + snapshot lifecycle for one system in one directory.

    Layout inside ``directory``::

        journal.wal                     append-only record stream
        snapshot-<seq:020d>.json        generations, newest = authoritative
        snapshot-*.json.corrupt         quarantined (never re-read)

    ``snapshot_every`` counts journal records between generations; 0 means
    snapshots happen only when the owner calls :meth:`snapshot` explicitly.
    ``start_seq`` continues an existing journal (e.g. after recovery with a
    repaired WAL); a fresh directory starts at 0.
    """

    def __init__(self, system: MultiDimensionalReputationSystem,
                 directory: Union[str, Path], fsync: str = "batch",
                 snapshot_every: int = 0, keep_snapshots: int = 3,
                 recorder: NullRecorder = NULL_RECORDER,
                 start_seq: int = 0,
                 fileobj: Optional[BinaryIO] = None) -> None:
        if snapshot_every < 0:
            raise ValueError(
                f"snapshot_every must be >= 0, got {snapshot_every}")
        self.system = system
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.wal_path = self.directory / WAL_FILENAME
        self.snapshots = SnapshotStore(self.directory, keep=keep_snapshots)
        self.snapshot_every = snapshot_every
        self.recorder = recorder
        self._writer = WalWriter(self.wal_path, fsync=fsync,
                                 start_seq=start_seq, fileobj=fileobj)
        #: With a sharded pipeline, journal records carry the shard of the
        #: peer whose row-local state they mutate; unsharded systems write
        #: byte-identical records to what earlier builds produced.
        self._shard_map: Optional[ShardMap] = (
            ShardMap(system.config.shards)
            if system.config.shards > 1 else None)
        self._records_since_snapshot = 0
        self._attached = False
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle                                                          #
    # ------------------------------------------------------------------ #

    def attach(self) -> None:
        """Start journalling; writes the baseline generation if none exists.

        The baseline snapshot carries the config, so a directory that dies
        one record in is still recoverable — recovery never has to guess
        :class:`~repro.core.config.ReputationConfig` from thin air.
        """
        if self._closed:
            raise ValueError("cannot attach a closed DurabilityManager")
        attach_journal(self.system, self._journal)
        self._attached = True
        if not self.snapshots.generations():
            self.snapshot()

    def detach(self) -> None:
        detach_journal(self.system)
        self._attached = False

    def close(self, final_snapshot: bool = False) -> None:
        """Detach, optionally cut a last generation, and seal the WAL."""
        if self._closed:
            return
        if self._attached:
            self.detach()
        if final_snapshot:
            self.snapshot()
        self._writer.close()
        self._closed = True

    def __enter__(self) -> "DurabilityManager":
        self.attach()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Journal sink                                                       #
    # ------------------------------------------------------------------ #

    def _journal(self, kind: str, payload: Dict[str, Any]) -> None:
        if self._shard_map is not None:
            shard = shard_for_record(kind, payload, self._shard_map)
            if shard is not None:
                payload = dict(payload, shard=shard)
        self._writer.append(kind, payload)
        self._records_since_snapshot += 1
        self.recorder.inc("wal.appended")

    @property
    def last_seq(self) -> int:
        return self._writer.last_seq

    @property
    def records_since_snapshot(self) -> int:
        return self._records_since_snapshot

    # ------------------------------------------------------------------ #
    # Snapshots (safe-point only — see module docstring)                 #
    # ------------------------------------------------------------------ #

    def maybe_snapshot(self) -> Optional[Path]:
        """Cut a generation if ``snapshot_every`` records have accumulated."""
        if (self.snapshot_every
                and self._records_since_snapshot >= self.snapshot_every):
            return self.snapshot()
        return None

    def snapshot(self) -> Path:
        """Sync the WAL, then persist a generation stamped with its seq."""
        if self._closed:
            raise ValueError("cannot snapshot a closed DurabilityManager")
        self._writer.sync()
        path = self.snapshots.write(self.system, self._writer.last_seq)
        self._records_since_snapshot = 0
        self.recorder.inc("wal.snapshots")
        self.recorder.event("wal.snapshot", wal_seq=self._writer.last_seq,
                            file=path.name)
        return path

    def sync(self) -> None:
        """Fsync the WAL (the ``"batch"`` policy's durability boundary)."""
        self._writer.sync()

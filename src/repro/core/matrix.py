"""Sparse trust matrices.

Every one-step trust dimension (FM, DM, UM), the integrated matrix TM and
the multi-trust reputation matrix RM are row-indexed by the *trusting* user
and column-indexed by the *trusted* user.  Real P2P trust matrices are
extremely sparse (the paper's central "coverage" problem is precisely this
sparsity), so the canonical representation is a dict-of-dicts; a dense numpy
bridge is provided for eigen-analysis and fast matrix powers.
"""

from __future__ import annotations

import hashlib
import struct
from math import fsum
from types import MappingProxyType
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["TrustMatrix"]

#: Shared immutable empty row for :meth:`TrustMatrix.row_view` misses.
_EMPTY_ROW: Mapping[str, float] = MappingProxyType({})


class TrustMatrix:
    """A sparse matrix of trust values ``matrix[i][j] = trust of i in j``.

    The class is agnostic about normalisation; the Eq. 3/5/6 constructors in
    the dimension modules call :meth:`row_normalized` to produce the
    row-stochastic one-step matrices the paper uses.
    """

    def __init__(self, rows: Optional[Mapping[str, Mapping[str, float]]] = None):
        self._rows: Dict[str, Dict[str, float]] = {}
        if rows:
            for i, row in rows.items():
                for j, value in row.items():
                    self.set(i, j, value)

    # ------------------------------------------------------------------ #
    # Mutation                                                           #
    # ------------------------------------------------------------------ #

    def set(self, i: str, j: str, value: float) -> None:
        """Set entry (i, j); zero values are stored as absent."""
        if value < 0:
            raise ValueError(f"trust values must be >= 0, got {value} at ({i},{j})")
        if value == 0.0:
            row = self._rows.get(i)
            if row is not None:
                row.pop(j, None)
                if not row:
                    del self._rows[i]
            return
        self._rows.setdefault(i, {})[j] = value

    def add(self, i: str, j: str, delta: float) -> None:
        """Increment entry (i, j) by ``delta`` (clamped at zero below)."""
        current = self.get(i, j)
        self.set(i, j, max(current + delta, 0.0))

    def replace_row(self, i: str, values: Mapping[str, float]) -> None:
        """Replace row ``i`` wholesale; zero/negative entries are dropped.

        The incremental builders patch exactly the rows whose inputs went
        dirty; replacing the row in one call keeps the "no stored zeros, no
        empty rows" invariants without touching untouched rows.
        """
        row = {j: value for j, value in values.items() if value > 0.0}
        if row:
            self._rows[i] = row
        else:
            self._rows.pop(i, None)

    def copy_with_rows(self, updates: Mapping[str, Mapping[str, float]]
                       ) -> "TrustMatrix":
        """Row-level copy-on-write: a new matrix sharing unchanged rows.

        ``updates`` maps row ids to their new contents (empty mapping =
        remove the row).  Unchanged rows are *shared by reference* with
        ``self`` and are never mutated afterwards — each refresh that
        touches them again replaces them here the same way — so snapshots
        handed out earlier stay stable while a refresh publishes a fresh
        matrix identity.
        """
        result = TrustMatrix()
        result._rows = dict(self._rows)
        for i, values in updates.items():
            row = {j: value for j, value in values.items() if value > 0.0}
            if row:
                result._rows[i] = row
            else:
                result._rows.pop(i, None)
        return result

    # ------------------------------------------------------------------ #
    # Access                                                             #
    # ------------------------------------------------------------------ #

    def get(self, i: str, j: str) -> float:
        return self._rows.get(i, {}).get(j, 0.0)

    def row(self, i: str) -> Dict[str, float]:
        """A copy of row ``i`` (absent rows are empty)."""
        return dict(self._rows.get(i, {}))

    def rows(self) -> Iterator[Tuple[str, Dict[str, float]]]:
        for i, row in self._rows.items():
            yield i, dict(row)

    def row_view(self, i: str) -> Mapping[str, float]:
        """Read-only *live* view of row ``i`` — no copy.

        The observability layer samples full matrices at every mechanism
        refresh; copying each row per tick would dwarf the cost of the
        events themselves.  The view reflects later mutations; callers that
        need a stable snapshot should use :meth:`row`.
        """
        row = self._rows.get(i)
        return MappingProxyType(row) if row is not None else _EMPTY_ROW

    def iter_row_views(self) -> Iterator[Tuple[str, Mapping[str, float]]]:
        """(row id, read-only row view) pairs — no copying."""
        for i, row in self._rows.items():
            yield i, MappingProxyType(row)

    def row_ids(self) -> List[str]:
        return list(self._rows)

    def entry_count(self) -> int:
        """Number of non-zero entries."""
        return sum(len(row) for row in self._rows.values())

    def node_ids(self) -> List[str]:
        """All ids appearing as a row or column, sorted for determinism."""
        ids = set(self._rows)
        for row in self._rows.values():
            ids.update(row)
        return sorted(ids)

    def checksum(self) -> str:
        """Bit-exact sha256 digest of the matrix contents.

        Entries are hashed in sorted (row, column) order with each value's
        IEEE-754 byte representation, so two matrices have equal checksums
        iff they are exactly ``==`` — the digest recovery tests compare
        instead of shipping whole matrices around.
        """
        digest = hashlib.sha256()
        for i in sorted(self._rows):
            row = self._rows[i]
            digest.update(i.encode("utf-8") + b"\x00")
            for j in sorted(row):
                digest.update(j.encode("utf-8") + b"\x00")
                digest.update(struct.pack("<d", row[j]))
        return digest.hexdigest()

    def has_edge(self, i: str, j: str) -> bool:
        return self.get(i, j) > 0.0

    def density(self, node_ids: Optional[Sequence[str]] = None) -> float:
        """Fraction of possible off-diagonal edges present.

        ``node_ids`` fixes the universe (defaults to ids seen in the matrix);
        density over an n-node universe divides by ``n * (n - 1)``.
        """
        ids = list(node_ids) if node_ids is not None else self.node_ids()
        n = len(ids)
        if n < 2:
            return 0.0
        universe = set(ids)
        edges = sum(
            1
            for i, row in self._rows.items() if i in universe
            for j in row if j in universe and j != i
        )
        return edges / (n * (n - 1))

    # ------------------------------------------------------------------ #
    # Algebra                                                            #
    # ------------------------------------------------------------------ #

    def row_normalized(self) -> "TrustMatrix":
        """Return a copy whose non-empty rows sum to 1 (Eqs. 3, 5, 6).

        Row totals use ``math.fsum`` so the result depends only on the row's
        *values*, never on dict insertion order — the incremental builders
        re-derive single rows and must land on the same floats a full
        rebuild produces.
        """
        result = TrustMatrix()
        for i, row in self._rows.items():
            total = fsum(row.values())
            if total <= 0:
                continue
            for j, value in row.items():
                result.set(i, j, value / total)
        return result

    def scaled(self, factor: float) -> "TrustMatrix":
        """Return ``factor * self``."""
        if factor < 0:
            raise ValueError("scale factor must be >= 0")
        result = TrustMatrix()
        if factor == 0.0:
            return result
        for i, row in self._rows.items():
            for j, value in row.items():
                result.set(i, j, value * factor)
        return result

    @staticmethod
    def weighted_sum(terms: Iterable[Tuple[float, "TrustMatrix"]]) -> "TrustMatrix":
        """Eq. 7: ``sum_k w_k * M_k`` over (weight, matrix) pairs."""
        result = TrustMatrix()
        for weight, matrix in terms:
            if weight < 0:
                raise ValueError("weights must be >= 0")
            if weight == 0.0:
                continue
            for i, row in matrix._rows.items():
                for j, value in row.items():
                    result.add(i, j, weight * value)
        return result

    def matmul(self, other: "TrustMatrix") -> "TrustMatrix":
        """Sparse matrix product ``self @ other``.

        The inner loop walks ``self``'s row keys in sorted order so each
        output entry accumulates its products in a canonical sequence:
        value-equal operands give bit-identical products no matter how
        their row dicts were built (full rebuild vs incremental patch).
        """
        result = TrustMatrix()
        for i, row in self._rows.items():
            accumulator: Dict[str, float] = {}
            for k in sorted(row):
                other_row = other._rows.get(k)
                if not other_row:
                    continue
                v_ik = row[k]
                for j, v_kj in other_row.items():
                    accumulator[j] = accumulator.get(j, 0.0) + v_ik * v_kj
            for j, value in accumulator.items():
                if value > 0.0:
                    result.set(i, j, value)
        return result

    def power(self, n: int) -> "TrustMatrix":
        """Eq. 8: ``self ** n`` via repeated squaring (n >= 1)."""
        if n < 1:
            raise ValueError(f"matrix power requires n >= 1, got {n}")
        base = self
        result: Optional[TrustMatrix] = None
        while n:
            if n & 1:
                result = base if result is None else result.matmul(base)
            n >>= 1
            if n:
                base = base.matmul(base)
        assert result is not None
        return result

    # ------------------------------------------------------------------ #
    # Dense bridge                                                       #
    # ------------------------------------------------------------------ #

    def to_dense(self, node_ids: Optional[Sequence[str]] = None
                 ) -> Tuple[np.ndarray, List[str]]:
        """Return ``(array, ids)`` with ``array[a, b] = self[ids[a], ids[b]]``."""
        ids = list(node_ids) if node_ids is not None else self.node_ids()
        index = {node_id: position for position, node_id in enumerate(ids)}
        array = np.zeros((len(ids), len(ids)))
        for i, row in self._rows.items():
            a = index.get(i)
            if a is None:
                continue
            for j, value in row.items():
                b = index.get(j)
                if b is not None:
                    array[a, b] = value
        return array, ids

    @classmethod
    def from_dense(cls, array: np.ndarray, node_ids: Sequence[str]) -> "TrustMatrix":
        if array.shape != (len(node_ids), len(node_ids)):
            raise ValueError(
                f"array shape {array.shape} does not match {len(node_ids)} ids")
        result = cls()
        for a, i in enumerate(node_ids):
            for b, j in enumerate(node_ids):
                value = float(array[a, b])
                if value > 0.0:
                    result.set(i, j, value)
        return result

    # ------------------------------------------------------------------ #
    # Dunder                                                             #
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TrustMatrix):
            return NotImplemented
        return self._rows == other._rows

    def __repr__(self) -> str:
        return (f"TrustMatrix(rows={len(self._rows)}, "
                f"entries={self.entry_count()})")

"""The incremental trust pipeline: delta-in, patched-matrices-out.

The seed's façade cached ``TM``/``RM`` behind a boolean "something changed"
flag: any write threw every matrix away and the next query rebuilt the world.
:class:`TrustPipeline` replaces that with a delta pipeline:

1. the stores (:class:`~repro.core.evaluation.EvaluationStore`,
   :class:`~repro.core.volume_trust.DownloadLedger`,
   :class:`~repro.core.user_trust.UserTrustStore`) accumulate *dirty sets*
   — which files, downloaders and raters changed since the last refresh;
2. the per-dimension accumulators (:class:`FileTrustAccumulator`,
   :class:`VolumeTrustAccumulator`, :class:`UserTrustAccumulator`) re-derive
   only the rows/pairs incident to that dirt;
3. the integrated ``TM`` is patched row-wise (Eq. 7 re-applied to exactly
   the dirty rows) and published copy-on-write, so earlier snapshots stay
   stable while each refresh has a fresh matrix identity;
4. ``RM = TM^n`` (Eq. 8) goes through a pluggable
   :mod:`~repro.core.matrix_backend`; for the paper's default ``n = 1`` it
   *is* the patched ``TM`` and costs nothing.

The hard bar, enforceable at runtime behind ``REPRO_CHECK_INVARIANTS``:
an incremental refresh produces matrices **bit-identical** to a full
rebuild.  Every arithmetic path is shared with or order-canonicalised
against the full builders (fsum row totals, sorted-key accumulation), so
equality is exact ``==``, not tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..lint.contracts import (check_matrices_equal, check_row_stochastic,
                              check_simplex, contracts_enabled)
from ..obs.recorder import NULL_RECORDER, NullRecorder
from .config import DEFAULT_CONFIG, ReputationConfig
from .evaluation import EvaluationStore
from .file_trust import FileTrustAccumulator
from .matrix import TrustMatrix
from .matrix_backend import MatmulBackend, resolve_backend
from .multitrust import compute_reputation_matrix
from .user_trust import UserTrustAccumulator, UserTrustStore
from .volume_trust import DownloadLedger, VolumeTrustAccumulator

__all__ = ["TrustPipeline", "RefreshStats", "RefreshView",
           "combine_dimension_rows"]


def combine_dimension_rows(dimensions: Sequence[Tuple[float, TrustMatrix]],
                           rows: Iterable[str]
                           ) -> Dict[str, Dict[str, float]]:
    """Eq. 7 re-applied to exactly ``rows``: the shared row-patch arithmetic.

    Per-row accumulation adds the dimensions in the order given (FM, DM,
    UM) — the same per-entry addition sequence
    :meth:`TrustMatrix.weighted_sum` performs in the full builder, so a
    patched row carries the same floats.  Rows are processed in sorted
    order; both the monolithic :class:`TrustPipeline` and the sharded
    pipeline's serial patch path call this, and the multiprocessing worker
    path replicates the identical float-op sequence in numpy (see
    :mod:`~repro.core.shard_workers`).
    """
    updates: Dict[str, Dict[str, float]] = {}
    for i in sorted(rows):
        accumulator: Dict[str, float] = {}
        for weight, matrix in dimensions:
            for j, value in matrix.row_view(i).items():
                accumulator[j] = accumulator.get(j, 0.0) + weight * value
        updates[i] = accumulator
    return updates


@dataclass(frozen=True)
class RefreshView:
    """Zero-copy window onto the matrices of one refresh.

    Holds references to the pipeline's published ``TM`` and ``RM`` —
    building one allocates nothing beyond the dataclass itself, and
    consumers read rows through :meth:`TrustMatrix.row_view`.  The
    per-refresh timeline instrumentation samples reputations and trust
    edges through this view, so observability never copies full matrices.
    """

    trust: TrustMatrix
    reputation: TrustMatrix

    def top_trust_edges(self, per_row: int = 6, min_value: float = 1e-9
                        ) -> Iterator[Tuple[str, str, float]]:
        """Strongest ``per_row`` out-edges of ``TM`` per truster, sorted.

        Rows iterate in sorted truster order; within a row, edges sort by
        descending value then trustee id — fully deterministic.
        """
        if per_row < 1:
            raise ValueError(f"per_row must be >= 1, got {per_row}")
        for truster in sorted(self.trust.row_ids()):
            row = self.trust.row_view(truster)
            strongest = sorted(row.items(),
                               key=lambda item: (-item[1], item[0]))
            for trustee, value in strongest[:per_row]:
                if value >= min_value:
                    yield truster, trustee, value


@dataclass(frozen=True)
class RefreshStats:
    """What one :meth:`TrustPipeline.refresh` actually did.

    ``mode`` is ``"full"`` (first refresh or forced), ``"incremental"``
    (delta-driven patch) or ``"noop"`` (no dirt to consume).  Row counts
    refer to the integrated ``TM``; ``rebuild_ratio`` is the fraction of
    its rows the refresh re-derived — the number the incremental design
    exists to keep small.
    """

    mode: str
    backend: str
    dirty_files: int
    dirty_rows_file: int
    dirty_rows_volume: int
    dirty_rows_user: int
    rows_rebuilt: int
    total_rows: int

    @property
    def rebuild_ratio(self) -> float:
        if self.total_rows <= 0:
            return 0.0
        return min(self.rows_rebuilt / self.total_rows, 1.0)


class TrustPipeline:
    """Owns the incremental compute path from stores to ``TM``/``RM``.

    The pipeline never mutates a published matrix: each refresh patches
    through :meth:`TrustMatrix.copy_with_rows`, so callers holding a
    :class:`RefreshView` from an earlier refresh keep a stable snapshot
    while ``pipeline.trust`` moves on.  ``version`` increments on every
    refresh that consumed dirt — cache keys for derived structures (tier
    views, step-overridden RM powers) hang off it.
    """

    def __init__(self, evaluations: EvaluationStore, ledger: DownloadLedger,
                 user_trust: UserTrustStore,
                 config: ReputationConfig = DEFAULT_CONFIG,
                 recorder: NullRecorder = NULL_RECORDER):
        self.config = config
        self.recorder = recorder
        self.evaluations = evaluations
        self.ledger = ledger
        self.user_trust = user_trust
        self._file: Optional[FileTrustAccumulator] = (
            FileTrustAccumulator(config) if config.alpha > 0 else None)
        self._volume: Optional[VolumeTrustAccumulator] = (
            VolumeTrustAccumulator(config) if config.beta > 0 else None)
        self._user: Optional[UserTrustAccumulator] = (
            UserTrustAccumulator() if config.gamma > 0 else None)
        self._trust = TrustMatrix()
        self._reputation = TrustMatrix()
        #: RM powers for step overrides, keyed by ``steps``; cleared by
        #: every refresh that consumed dirt.
        self._power_cache: Dict[int, TrustMatrix] = {}
        self._initialized = False
        self._force_full = False
        #: Monotone refresh counter; bumps whenever matrices re-publish.
        self.version = 0
        self.last_stats: Optional[RefreshStats] = None

    # ------------------------------------------------------------------ #
    # Published state                                                    #
    # ------------------------------------------------------------------ #

    @property
    def trust(self) -> TrustMatrix:
        """The most recently published integrated ``TM`` (Eq. 7)."""
        return self._trust

    @property
    def reputation(self) -> TrustMatrix:
        """The most recently published ``RM = TM^n`` (Eq. 8)."""
        return self._reputation

    def view(self) -> RefreshView:
        """Zero-copy view of the current published pair (no refresh)."""
        return RefreshView(trust=self._trust, reputation=self._reputation)

    @property
    def has_dirty(self) -> bool:
        """Whether any store holds unconsumed deltas."""
        return (not self._initialized or self._force_full
                or self.evaluations.has_dirty or self.ledger.has_dirty
                or self.user_trust.has_dirty)

    def invalidate(self) -> None:
        """Force the next :meth:`refresh` to rebuild from scratch.

        Escape hatch for callers that mutated store internals without
        going through the dirty-marking mutators.
        """
        self._force_full = True

    def dimension_matrices(self) -> Dict[str, TrustMatrix]:
        """The current per-dimension one-step matrices, keyed by dimension.

        ``{"file": FM, "volume": DM, "user": UM}``; a dimension disabled by
        a zero weight maps to an empty matrix.  Shared accessor with the
        sharded pipeline (which merges shard fragments here) so tests and
        diagnostics never reach into accumulator internals.
        """
        empty = TrustMatrix()
        return {
            "file": self._file.matrix if self._file else empty,
            "volume": self._volume.matrix if self._volume else empty,
            "user": self._user.matrix if self._user else empty,
        }

    # ------------------------------------------------------------------ #
    # Refresh                                                            #
    # ------------------------------------------------------------------ #

    def refresh(self, force_full: bool = False) -> RefreshView:
        """Consume all accumulated deltas and publish fresh ``TM``/``RM``.

        With nothing to consume this is a no-op returning the current
        matrices *by identity*; otherwise both matrices get a new identity
        (copy-on-write), even if every value survived unchanged — callers
        use identity to detect "a refresh happened here".
        """
        dirty_files = self.evaluations.dirty_files()
        # A user's DM row re-weights when their evaluations move (Eq. 4
        # weighs downloaded bytes by the downloader's own evaluations).
        dirty_downloaders = (self.ledger.dirty_downloaders()
                             | self.evaluations.dirty_users())
        dirty_raters = self.user_trust.dirty_raters()
        full = force_full or self._force_full or not self._initialized
        if not (full or dirty_files or dirty_downloaders or dirty_raters):
            self.recorder.inc("pipeline.noop_refreshes")
            return self.view()

        with self.recorder.span("pipeline.refresh") as span:
            if full:
                file_rows = (self._file.rebuild(self.evaluations)
                             if self._file else set())
                volume_rows = (self._volume.rebuild(self.ledger,
                                                    self.evaluations)
                               if self._volume else set())
                user_rows = (self._user.rebuild(self.user_trust)
                             if self._user else set())
            else:
                file_rows = (self._file.refresh(self.evaluations, dirty_files)
                             if self._file else set())
                volume_rows = (self._volume.refresh(
                    self.ledger, self.evaluations, dirty_downloaders)
                    if self._volume else set())
                user_rows = (self._user.refresh(self.user_trust, dirty_raters)
                             if self._user else set())
            dirty_rows = file_rows | volume_rows | user_rows
            self._publish_trust(dirty_rows)
            backend = resolve_backend(self.config.matmul_backend, self._trust)
            self._publish_reputation(backend)
            span.count("rows_rebuilt", len(dirty_rows))
            span.count("dirty_files", len(dirty_files))

        self.evaluations.clear_dirty()
        self.ledger.clear_dirty()
        self.user_trust.clear_dirty()
        self._power_cache.clear()
        self._power_cache[self.config.multitrust_steps] = self._reputation
        self._force_full = False
        self._initialized = True
        self.version += 1

        stats = RefreshStats(
            mode="full" if full else "incremental",
            backend=backend.name,
            dirty_files=len(dirty_files),
            dirty_rows_file=len(file_rows),
            dirty_rows_volume=len(volume_rows),
            dirty_rows_user=len(user_rows),
            rows_rebuilt=len(dirty_rows),
            total_rows=len(self._trust.row_ids()),
        )
        self.last_stats = stats
        self._record(stats)
        if not full:
            self._verify_against_full_rebuild()
        return self.view()

    def checksums(self) -> Dict[str, str]:
        """Bit-exact digests of the published ``TM``/``RM`` pair.

        Two pipelines agree on these iff their matrices are exactly equal —
        the recovery tooling compares digests instead of shipping matrices,
        and ``repro recover`` prints them so a recovered node can be
        checked against a live one from the command line.
        """
        return {"trust": self._trust.checksum(),
                "reputation": self._reputation.checksum()}

    def reputation_at(self, steps: int) -> TrustMatrix:
        """``TM^steps`` for a step override, cached until the next refresh."""
        cached = self._power_cache.get(steps)
        if cached is None:
            backend = resolve_backend(self.config.matmul_backend, self._trust)
            cached = compute_reputation_matrix(
                self._trust, steps, self.config, recorder=self.recorder,
                backend=backend)
            self._power_cache[steps] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Internals                                                          #
    # ------------------------------------------------------------------ #

    def _dimensions(self) -> List[Tuple[float, TrustMatrix]]:
        """Active (weight, one-step matrix) pairs in Eq. 7 order."""
        dimensions: List[Tuple[float, TrustMatrix]] = []
        if self._file is not None:
            dimensions.append((self.config.alpha, self._file.matrix))
        if self._volume is not None:
            dimensions.append((self.config.beta, self._volume.matrix))
        if self._user is not None:
            dimensions.append((self.config.gamma, self._user.matrix))
        return dimensions

    def _publish_trust(self, dirty_rows: Set[str]) -> None:
        """Re-apply Eq. 7 to exactly ``dirty_rows``; publish copy-on-write.

        Per-row accumulation adds the dimensions in FM, DM, UM order —
        the same per-entry addition sequence
        :meth:`TrustMatrix.weighted_sum` performs in the full builder, so
        a patched row carries the same floats.
        """
        check_simplex((self.config.alpha, self.config.beta, self.config.gamma),
                      name="(alpha, beta, gamma)")
        updates = combine_dimension_rows(self._dimensions(), dirty_rows)
        self._trust = self._trust.copy_with_rows(updates)
        check_row_stochastic(self._trust, name="TM", strict=False)

    def _publish_reputation(self, backend: MatmulBackend) -> None:
        steps = self.config.multitrust_steps
        if steps == 1 and not self.recorder.enabled:
            # power(1) is the identity operation; RM *is* the patched TM.
            self._reputation = self._trust
            return
        self._reputation = compute_reputation_matrix(
            self._trust, None, self.config, recorder=self.recorder,
            backend=backend)

    def _verify_against_full_rebuild(self) -> None:
        """Contracts-gated hard bar: patched state == full rebuild, exactly."""
        if not contracts_enabled():
            return
        from .integration import build_one_step_matrix

        full_trust = build_one_step_matrix(
            self.evaluations, self.ledger, self.user_trust, self.config)
        check_matrices_equal(self._trust, full_trust, name="TM(incremental)")
        # Same backend as the incremental path: sparse and dense products
        # agree only to tolerance, and the bar here is exact equality.
        full_reputation = compute_reputation_matrix(
            full_trust, None, self.config,
            backend=resolve_backend(self.config.matmul_backend, full_trust))
        check_matrices_equal(self._reputation, full_reputation,
                             name="RM(incremental)")

    def _record(self, stats: RefreshStats) -> None:
        recorder = self.recorder
        if not recorder.enabled:
            return
        recorder.event("pipeline_refresh", mode=stats.mode,
                       backend=stats.backend, dirty_files=stats.dirty_files,
                       dirty_rows_file=stats.dirty_rows_file,
                       dirty_rows_volume=stats.dirty_rows_volume,
                       dirty_rows_user=stats.dirty_rows_user,
                       rows_rebuilt=stats.rows_rebuilt,
                       total_rows=stats.total_rows,
                       rebuild_ratio=stats.rebuild_ratio)
        recorder.inc("pipeline.refreshes")
        if stats.mode == "full":
            recorder.inc("pipeline.full_rebuilds")
        recorder.observe("pipeline.rows_rebuilt", stats.rows_rebuilt)
        recorder.observe("pipeline.rebuild_ratio", stats.rebuild_ratio)
        recorder.gauge("pipeline.total_rows", stats.total_rows)

"""Explainability: decompose *why* an observer trusts a target.

Reputation systems live or die by user trust in the *mechanism*; an opaque
score invites suspicion.  :func:`explain_reputation` decomposes an
observer->target reputation into the paper's ingredients:

* the per-dimension contributions to the one-step edge (Eq. 7 terms):
  how much comes from similar file evaluations (FM), from valid download
  volume (DM), from explicit ranks/friendship (UM);
* the supporting evidence behind each dimension: which co-evaluated files,
  how many valid bytes, what direct relationship;
* for multi-step reputation, the strongest indirect paths
  observer -> intermediary -> target with their weights.

The result renders to a human-readable report via
:meth:`ReputationExplanation.render`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .file_trust import file_trust
from .matrix import TrustMatrix
from .reputation_system import MultiDimensionalReputationSystem
from .user_trust import build_user_trust_matrix
from .volume_trust import valid_download_volume

__all__ = ["DimensionContribution", "TrustPath", "ReputationExplanation",
           "explain_reputation"]


@dataclass(frozen=True)
class DimensionContribution:
    """One Eq. 7 term of the direct edge, with its evidence."""

    dimension: str
    weight: float
    #: The dimension's normalised one-step value toward the target.
    value: float
    #: weight * value — the contribution to TM[observer][target].
    contribution: float
    evidence: str


@dataclass(frozen=True)
class TrustPath:
    """An indirect path observer -> via -> target with its mass."""

    via: str
    first_hop: float
    second_hop: float

    @property
    def mass(self) -> float:
        return self.first_hop * self.second_hop


@dataclass
class ReputationExplanation:
    """Full decomposition of one observer->target reputation."""

    observer: str
    target: str
    reputation: float
    direct_edge: float
    contributions: List[DimensionContribution] = field(default_factory=list)
    indirect_paths: List[TrustPath] = field(default_factory=list)
    blacklisted: bool = False

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"Why does {self.observer} trust {self.target}?",
            f"  reputation RM = {self.reputation:.4f} "
            f"(direct one-step edge {self.direct_edge:.4f})",
        ]
        if self.blacklisted:
            lines.append(f"  !! {self.target} is on "
                         f"{self.observer}'s blacklist: user trust is zero")
        for contribution in self.contributions:
            lines.append(
                f"  [{contribution.dimension:6s}] weight {contribution.weight:.2f}"
                f" x value {contribution.value:.4f}"
                f" = {contribution.contribution:.4f}  ({contribution.evidence})")
        if self.indirect_paths:
            lines.append("  strongest indirect paths:")
            for path in self.indirect_paths:
                lines.append(
                    f"    via {path.via}: {path.first_hop:.4f} x "
                    f"{path.second_hop:.4f} = {path.mass:.4f}")
        no_direct = all(contribution.contribution == 0.0
                        for contribution in self.contributions)
        if no_direct and not self.indirect_paths:
            lines.append("  no direct or indirect trust evidence at all")
        return "\n".join(lines)


def _dimension_value(matrix: TrustMatrix, observer: str, target: str) -> float:
    return matrix.get(observer, target)


def explain_reputation(system: MultiDimensionalReputationSystem,
                       observer: str, target: str,
                       max_paths: int = 3) -> ReputationExplanation:
    """Decompose ``system``'s reputation of ``target`` as seen by ``observer``."""
    config = system.config
    reputation = system.user_reputation(observer, target)
    one_step = system.one_step_matrix()
    direct = one_step.get(observer, target)

    contributions: List[DimensionContribution] = []

    # File dimension: FT plus the co-evaluated evidence.
    if config.alpha > 0:
        from .file_trust import build_file_trust_matrix
        fm = build_file_trust_matrix(system.evaluations, config)
        value = _dimension_value(fm, observer, target)
        shared = system.evaluations.shared_files(observer, target)
        raw = file_trust(system.evaluations, observer, target, config)
        evidence = (f"{len(shared)} co-evaluated files, "
                    f"similarity {raw:.3f}" if raw is not None
                    else "no co-evaluated files")
        contributions.append(DimensionContribution(
            "file", config.alpha, value, config.alpha * value, evidence))

    # Volume dimension.
    if config.beta > 0:
        from .volume_trust import build_volume_trust_matrix
        dm = build_volume_trust_matrix(system.ledger, system.evaluations,
                                       config)
        value = _dimension_value(dm, observer, target)
        volume = valid_download_volume(system.ledger, system.evaluations,
                                       observer, target)
        downloads = len(system.ledger.downloads(observer, target))
        evidence = (f"{downloads} downloads, "
                    f"{volume / 1e6:.1f} MB valid volume")
        contributions.append(DimensionContribution(
            "volume", config.beta, value, config.beta * value, evidence))

    # User dimension.
    if config.gamma > 0:
        um = build_user_trust_matrix(system.user_trust)
        value = _dimension_value(um, observer, target)
        if system.user_trust.is_blacklisted(observer, target):
            evidence = "blacklisted"
        elif system.user_trust.is_friend(observer, target):
            evidence = "friend"
        else:
            rating = system.user_trust.trust(observer, target)
            evidence = (f"rated {rating:.2f}" if rating is not None
                        else "no direct relationship")
        contributions.append(DimensionContribution(
            "user", config.gamma, value, config.gamma * value, evidence))

    # Indirect paths (only meaningful beyond one step, but informative
    # regardless: who would carry the trust if propagated).
    paths: List[TrustPath] = []
    observer_row = one_step.row(observer)
    for via, first_hop in observer_row.items():
        if via in (observer, target):
            continue
        second_hop = one_step.get(via, target)
        if second_hop > 0:
            paths.append(TrustPath(via=via, first_hop=first_hop,
                                   second_hop=second_hop))
    paths.sort(key=lambda path: -path.mass)

    return ReputationExplanation(
        observer=observer,
        target=target,
        reputation=reputation,
        direct_edge=direct,
        contributions=contributions,
        indirect_paths=paths[:max_paths],
        blacklisted=system.user_trust.is_blacklisted(observer, target),
    )

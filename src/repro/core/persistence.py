"""Persistence: save/restore the full reputation-system state as JSON.

A deployed client restarts; its trust state must survive.  This module
serialises everything behavioural the façade holds — evaluations (all three
channels), the download ledger, user trust (ratings/friends/blacklists) and
incentive credits — into one JSON document, and restores an equivalent
system from it.  Matrices are *not* persisted: they are derived state and
are rebuilt lazily on first query after restore.

The format is versioned; loading rejects unknown versions loudly rather
than guessing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from .config import ReputationConfig
from .incentive import IncentiveAction
from .reputation_system import MultiDimensionalReputationSystem

__all__ = ["system_to_dict", "system_from_dict", "save_system",
           "load_system", "FORMAT_VERSION"]

FORMAT_VERSION = 1

_CONFIG_FIELDS = [
    "eta", "rho", "alpha", "beta", "gamma", "multitrust_steps",
    "matmul_backend", "distance_metric", "fake_file_threshold",
    "retention_saturation_seconds", "evaluation_retention_interval",
    "min_overlap", "max_queue_offset_seconds", "min_bandwidth_quota",
    "max_bandwidth_quota", "upload_credit", "vote_credit", "rank_credit",
    "delete_fake_credit",
]


def system_to_dict(system: MultiDimensionalReputationSystem) -> dict:
    """Serialise the system's behavioural state to a JSON-safe dict."""
    evaluations: List[dict] = []
    for evaluation in system.evaluations:
        evaluations.append({
            "user": evaluation.user_id,
            "file": evaluation.file_id,
            "implicit": evaluation.implicit,
            "explicit": evaluation.explicit,
            "play_fraction": evaluation.play_fraction,
            "timestamp": evaluation.timestamp,
        })

    downloads: List[dict] = []
    for downloader, uploader in system.ledger.pairs():
        for file_id, size, timestamp in system.ledger.downloads_with_time(
                downloader, uploader):
            downloads.append({
                "downloader": downloader,
                "uploader": uploader,
                "file": file_id,
                "size": size,
                "timestamp": timestamp,
            })

    user_trust = {
        "ratings": [
            {"rater": rater, "ratee": ratee, "rating": rating}
            for (rater, ratee), rating in sorted(
                system.user_trust._ratings.items())
        ],
        "friends": {user: sorted(friends) for user, friends in
                    sorted(system.user_trust._friends.items()) if friends},
        "blacklists": {user: sorted(targets) for user, targets in
                       sorted(system.user_trust._blacklists.items())
                       if targets},
    }

    credits = {
        "balances": dict(sorted(system.credits.balances().items())),
        "counts": [
            {"user": user, "action": action.value, "count": count}
            for (user, action), count in sorted(
                system.credits._counts.items(),
                key=lambda kv: (kv[0][0], kv[0][1].value))
        ],
    }

    return {
        "format_version": FORMAT_VERSION,
        "config": {field: getattr(system.config, field)
                   for field in _CONFIG_FIELDS},
        "auto_refresh": system.auto_refresh,
        "evaluations": evaluations,
        "downloads": downloads,
        "user_trust": user_trust,
        "credits": credits,
    }


def system_from_dict(data: dict) -> MultiDimensionalReputationSystem:
    """Restore a system from :func:`system_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format_version {version!r}; "
            f"this build reads version {FORMAT_VERSION}")

    config = ReputationConfig(**data["config"])
    system = MultiDimensionalReputationSystem(
        config, auto_refresh=data.get("auto_refresh", True))

    for entry in data["evaluations"]:
        record = system.evaluations._upsert(
            entry["user"], entry["file"], entry["timestamp"],
            implicit=entry["implicit"], explicit=entry["explicit"])
        record.play_fraction = entry.get("play_fraction")
        record.timestamp = entry["timestamp"]

    for entry in data["downloads"]:
        system.ledger.record_download(
            entry["downloader"], entry["uploader"], entry["file"],
            entry["size"], entry["timestamp"])

    trust = data["user_trust"]
    for entry in trust["ratings"]:
        system.user_trust.rate(entry["rater"], entry["ratee"],
                               entry["rating"])
    for user, friends in trust["friends"].items():
        for friend in friends:
            system.user_trust.add_friend(user, friend)
    for user, targets in trust["blacklists"].items():
        for target in targets:
            system.user_trust.add_to_blacklist(user, target)

    system.credits._credits.update(data["credits"]["balances"])
    for entry in data["credits"]["counts"]:
        key = (entry["user"], IncentiveAction(entry["action"]))
        system.credits._counts[key] = entry["count"]

    system.recompute()
    return system


def save_system(system: MultiDimensionalReputationSystem,
                path: Union[str, Path]) -> None:
    """Write the system state as JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(system_to_dict(system), handle, indent=1, sort_keys=True)


def load_system(path: Union[str, Path]) -> MultiDimensionalReputationSystem:
    """Read a system saved by :func:`save_system`."""
    with open(path, "r", encoding="utf-8") as handle:
        return system_from_dict(json.load(handle))

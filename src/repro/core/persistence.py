"""Persistence: save/restore the full reputation-system state as JSON.

A deployed client restarts; its trust state must survive.  This module
serialises everything behavioural the façade holds — evaluations (all three
channels), the download ledger, user trust (ratings/friends/blacklists) and
incentive credits — into one JSON document, and restores an equivalent
system from it.  Matrices are *not* persisted: they are derived state and
are rebuilt lazily on first query after restore.

The format is versioned.  Version 2 added two durability fields on top of
version 1:

* ``"wal": {"last_seq": N}`` — the journal sequence number the snapshot is
  current through, letting :mod:`repro.core.durability.recovery` replay
  exactly the WAL records the snapshot has not absorbed;
* ``"checksum"`` — SHA-256 over the canonical dump (sorted keys, compact
  separators, checksum key excluded), so a bit-rotted or hand-mangled
  snapshot is rejected before any of it is trusted.

Version 3 (current) adds the sharded trust domain: the ``shards`` /
``shard_workers`` config knobs, and — only when ``shards > 1`` — a
``"sharding"`` metadata section recording the shard count, the assignment
hash algorithm and a digest of the peer→shard assignment, so a restore
onto a build with a different partitioning function fails loudly instead
of silently re-routing rows.

Version-1 and version-2 documents (no ``wal``/``checksum``; no sharding
knobs) still load, defaulting to the unsharded pipeline.  Unknown
versions, unknown/missing sections and unknown/missing config fields are
all rejected loudly — and the error names the offending field or section,
not just "bad file".
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .config import ReputationConfig
from .incentive import IncentiveAction
from .reputation_system import MultiDimensionalReputationSystem
from .shard import SHARD_HASH_ALGORITHM, ShardMap

__all__ = ["system_to_dict", "system_from_dict", "save_system",
           "load_system", "snapshot_checksum", "wal_last_seq",
           "FORMAT_VERSION", "SUPPORTED_VERSIONS"]

FORMAT_VERSION = 3
#: Versions :func:`system_from_dict` accepts (older ones load unchanged).
SUPPORTED_VERSIONS = (1, 2, 3)

_CONFIG_FIELDS = [
    "eta", "rho", "alpha", "beta", "gamma", "multitrust_steps",
    "matmul_backend", "shards", "shard_workers", "distance_metric",
    "fake_file_threshold", "retention_saturation_seconds",
    "evaluation_retention_interval", "min_overlap",
    "max_queue_offset_seconds", "min_bandwidth_quota", "max_bandwidth_quota",
    "upload_credit", "vote_credit", "rank_credit", "delete_fake_credit",
]

#: Config fields newer than v2 — absent in older documents, so they default
#: instead of failing the missing-field check.
_OPTIONAL_CONFIG_FIELDS = frozenset({"shards", "shard_workers"})

#: Sections every version must carry; their absence names the gap.
_REQUIRED_SECTIONS = ["config", "evaluations", "downloads", "user_trust",
                      "credits"]
#: Everything a v3 document may contain at the top level.
_KNOWN_KEYS = frozenset(_REQUIRED_SECTIONS) | {
    "format_version", "auto_refresh", "wal", "checksum", "sharding"}


def snapshot_checksum(data: Dict[str, Any]) -> str:
    """SHA-256 of the canonical dump of ``data`` minus its checksum key."""
    stripped = {key: value for key, value in data.items() if key != "checksum"}
    canonical = json.dumps(stripped, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _peer_ids(data: Dict[str, Any]) -> set:
    """Every peer id a serialised document mentions (for shard digests)."""
    ids = set()
    for entry in data["evaluations"]:
        ids.add(entry["user"])
    for entry in data["downloads"]:
        ids.add(entry["downloader"])
        ids.add(entry["uploader"])
    trust = data["user_trust"]
    for entry in trust["ratings"]:
        ids.add(entry["rater"])
        ids.add(entry["ratee"])
    for user, friends in trust["friends"].items():
        ids.add(user)
        ids.update(friends)
    for user, targets in trust["blacklists"].items():
        ids.add(user)
        ids.update(targets)
    ids.update(data["credits"]["balances"])
    return ids


def wal_last_seq(data: Dict[str, Any]) -> int:
    """Journal sequence the snapshot covers (0 for v1 / unjournalled)."""
    wal = data.get("wal")
    if wal is None:
        return 0
    if not isinstance(wal, dict) or not isinstance(wal.get("last_seq"), int):
        raise ValueError("snapshot section 'wal' must be an object with an "
                         "integer 'last_seq'")
    return wal["last_seq"]


def system_to_dict(system: MultiDimensionalReputationSystem,
                   last_seq: Optional[int] = None) -> dict:
    """Serialise the system's behavioural state to a JSON-safe dict.

    ``last_seq`` stamps the document as current through that journal
    sequence number; pass it whenever the system is journalled so recovery
    knows where snapshot coverage ends and WAL replay begins.
    """
    evaluations: List[dict] = []
    for evaluation in system.evaluations:
        evaluations.append({
            "user": evaluation.user_id,
            "file": evaluation.file_id,
            "implicit": evaluation.implicit,
            "explicit": evaluation.explicit,
            "play_fraction": evaluation.play_fraction,
            "timestamp": evaluation.timestamp,
        })

    downloads: List[dict] = []
    for downloader, uploader in system.ledger.pairs():
        for file_id, size, timestamp in system.ledger.downloads_with_time(
                downloader, uploader):
            downloads.append({
                "downloader": downloader,
                "uploader": uploader,
                "file": file_id,
                "size": size,
                "timestamp": timestamp,
            })

    user_trust = {
        "ratings": [
            {"rater": rater, "ratee": ratee, "rating": rating}
            for (rater, ratee), rating in sorted(
                system.user_trust._ratings.items())
        ],
        "friends": {user: sorted(friends) for user, friends in
                    sorted(system.user_trust._friends.items()) if friends},
        "blacklists": {user: sorted(targets) for user, targets in
                       sorted(system.user_trust._blacklists.items())
                       if targets},
    }

    credits = {
        "balances": dict(sorted(system.credits.balances().items())),
        "counts": [
            {"user": user, "action": action.value, "count": count}
            for (user, action), count in sorted(
                system.credits._counts.items(),
                key=lambda kv: (kv[0][0], kv[0][1].value))
        ],
    }

    data: Dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "config": {field: getattr(system.config, field)
                   for field in _CONFIG_FIELDS},
        "auto_refresh": system.auto_refresh,
        "evaluations": evaluations,
        "downloads": downloads,
        "user_trust": user_trust,
        "credits": credits,
    }
    if system.config.shards > 1:
        # Stamped only when sharded so unsharded documents stay
        # byte-identical to what earlier builds wrote.
        shard_map = ShardMap(system.config.shards)
        data["sharding"] = {
            "shards": system.config.shards,
            "hash": SHARD_HASH_ALGORITHM,
            "assignment_digest": shard_map.assignment_digest(_peer_ids(data)),
        }
    if last_seq is not None:
        data["wal"] = {"last_seq": last_seq}
    data["checksum"] = snapshot_checksum(data)
    return data


def _validate_document(data: Dict[str, Any]) -> None:
    """Reject a malformed document with an error naming the exact gap."""
    version = data.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported format_version {version!r}; this build reads "
            f"versions {', '.join(str(v) for v in SUPPORTED_VERSIONS)}")

    missing_sections = [section for section in _REQUIRED_SECTIONS
                        if section not in data]
    if missing_sections:
        raise ValueError("snapshot is missing required section(s): "
                         + ", ".join(repr(s) for s in missing_sections))
    unknown_keys = sorted(set(data) - _KNOWN_KEYS)
    if unknown_keys:
        raise ValueError("snapshot contains unknown top-level section(s): "
                         + ", ".join(repr(k) for k in unknown_keys))

    config = data["config"]
    if not isinstance(config, dict):
        raise ValueError("snapshot section 'config' must be an object")
    unknown_fields = sorted(set(config) - set(_CONFIG_FIELDS))
    if unknown_fields:
        raise ValueError("config contains unknown field(s): "
                         + ", ".join(repr(f) for f in unknown_fields))
    missing_fields = [f for f in _CONFIG_FIELDS if f not in config
                      and f not in _OPTIONAL_CONFIG_FIELDS]
    if missing_fields:
        raise ValueError("config is missing field(s): "
                         + ", ".join(repr(f) for f in missing_fields))

    sharding = data.get("sharding")
    if sharding is not None:
        if (not isinstance(sharding, dict)
                or not isinstance(sharding.get("shards"), int)):
            raise ValueError("snapshot section 'sharding' must be an object "
                             "with an integer 'shards'")
        algorithm = sharding.get("hash")
        if algorithm != SHARD_HASH_ALGORITHM:
            raise ValueError(
                f"snapshot shard assignment uses hash {algorithm!r}; this "
                f"build partitions with {SHARD_HASH_ALGORITHM!r} — restoring "
                f"would silently re-route peers to different shards")
        if sharding["shards"] != config.get("shards"):
            raise ValueError(
                f"sharding section says {sharding['shards']} shard(s) but "
                f"config says {config.get('shards')!r}")

    checksum = data.get("checksum")
    if checksum is not None:
        expected = snapshot_checksum(data)
        if checksum != expected:
            raise ValueError(
                f"snapshot checksum mismatch: stored {checksum[:12]}…, "
                f"recomputed {expected[:12]}… — the file is corrupt or was "
                f"edited without re-stamping")


def system_from_dict(data: dict) -> MultiDimensionalReputationSystem:
    """Restore a system from :func:`system_to_dict` output."""
    _validate_document(data)
    wal_last_seq(data)  # shape check; the value matters only to recovery

    sharding = data.get("sharding")
    if sharding is not None and "assignment_digest" in sharding:
        digest = ShardMap(sharding["shards"]).assignment_digest(
            _peer_ids(data))
        if digest != sharding["assignment_digest"]:
            raise ValueError(
                "shard assignment digest mismatch: the snapshot's peer→shard "
                "routing does not reproduce on this build")

    config = ReputationConfig(**data["config"])
    system = MultiDimensionalReputationSystem(
        config, auto_refresh=data.get("auto_refresh", True))

    for entry in data["evaluations"]:
        record = system.evaluations._upsert(
            entry["user"], entry["file"], entry["timestamp"],
            implicit=entry["implicit"], explicit=entry["explicit"])
        record.play_fraction = entry.get("play_fraction")
        record.timestamp = entry["timestamp"]

    for entry in data["downloads"]:
        system.ledger.record_download(
            entry["downloader"], entry["uploader"], entry["file"],
            entry["size"], entry["timestamp"])

    trust = data["user_trust"]
    for entry in trust["ratings"]:
        system.user_trust.rate(entry["rater"], entry["ratee"],
                               entry["rating"])
    for user, friends in trust["friends"].items():
        for friend in friends:
            system.user_trust.add_friend(user, friend)
    for user, targets in trust["blacklists"].items():
        for target in targets:
            system.user_trust.add_to_blacklist(user, target)

    system.credits._credits.update(data["credits"]["balances"])
    for entry in data["credits"]["counts"]:
        key = (entry["user"], IncentiveAction(entry["action"]))
        system.credits._counts[key] = entry["count"]

    system.recompute()
    return system


def save_system(system: MultiDimensionalReputationSystem,
                path: Union[str, Path],
                last_seq: Optional[int] = None) -> None:
    """Write the system state as JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(system_to_dict(system, last_seq=last_seq), handle,
                  indent=1, sort_keys=True)


def load_system(path: Union[str, Path]) -> MultiDimensionalReputationSystem:
    """Read a system saved by :func:`save_system`."""
    with open(path, "r", encoding="utf-8") as handle:
        return system_from_dict(json.load(handle))

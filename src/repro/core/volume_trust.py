"""Download-volume-based direct trust (Section 3.1.2, Eqs. 4-5).

If user ``i`` downloads real content from user ``j``, ``i`` has implicit
grounds to trust ``j``.  Valid download volume weights each downloaded file's
size by ``i``'s evaluation of it::

    VD_ij = sum_{k in D_ij} E_ik * S_k     (Eq. 4)
    DM_ij = VD_ij / sum_k VD_ik            (Eq. 5)

so a gigabyte of files the downloader later judged fake (evaluation ~0)
contributes almost nothing, while well-evaluated bytes contribute fully.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..lint.contracts import check_row_stochastic
from .config import DEFAULT_CONFIG, ReputationConfig
from .evaluation import EvaluationStore
from .matrix import TrustMatrix

__all__ = ["DownloadLedger", "valid_download_volume", "build_volume_trust_matrix"]


@dataclass(frozen=True)
class _DownloadEntry:
    file_id: str
    size_bytes: float
    timestamp: float


@dataclass
class DownloadLedger:
    """Record of who downloaded which file (with size) from whom.

    ``D_ij`` in Eq. 4 is exactly ``entries[(i, j)]``.
    """

    _entries: Dict[Tuple[str, str], List[_DownloadEntry]] = field(default_factory=dict)

    def record_download(self, downloader: str, uploader: str, file_id: str,
                        size_bytes: float, timestamp: float = 0.0) -> None:
        if size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {size_bytes}")
        if downloader == uploader:
            raise ValueError("a user cannot download from itself")
        self._entries.setdefault((downloader, uploader), []).append(
            _DownloadEntry(file_id=file_id, size_bytes=size_bytes,
                           timestamp=timestamp))

    def downloads(self, downloader: str, uploader: str) -> List[Tuple[str, float]]:
        """``(file_id, size)`` pairs downloaded by ``downloader`` from ``uploader``."""
        return [(entry.file_id, entry.size_bytes)
                for entry in self._entries.get((downloader, uploader), ())]

    def downloads_with_time(self, downloader: str,
                            uploader: str) -> List[Tuple[str, float, float]]:
        """``(file_id, size, timestamp)`` triples for the pair."""
        return [(entry.file_id, entry.size_bytes, entry.timestamp)
                for entry in self._entries.get((downloader, uploader), ())]

    def uploaders_of(self, downloader: str) -> List[str]:
        return [u for (d, u) in self._entries if d == downloader]

    def pairs(self) -> Iterable[Tuple[str, str]]:
        return self._entries.keys()

    def prune_older_than(self, cutoff_timestamp: float) -> int:
        """Drop download records last seen before ``cutoff_timestamp``."""
        removed = 0
        for key in list(self._entries):
            kept = [e for e in self._entries[key] if e.timestamp >= cutoff_timestamp]
            removed += len(self._entries[key]) - len(kept)
            if kept:
                self._entries[key] = kept
            else:
                del self._entries[key]
        return removed

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._entries.values())


def valid_download_volume(ledger: DownloadLedger, store: EvaluationStore,
                          downloader: str, uploader: str,
                          now: Optional[float] = None,
                          half_life: Optional[float] = None) -> float:
    """Eq. 4: evaluation-weighted bytes ``downloader`` got from ``uploader``.

    Files the downloader has not (yet) evaluated contribute zero — the paper
    counts only *valid* volume, and validity is established by evaluation.

    With ``now`` and ``half_life`` given, each download's contribution
    additionally decays exponentially with age (``0.5 ** (age/half_life)``)
    — a smooth extension of the Section 4.3 interval-pruning rule that lets
    trust track *recent* behaviour without a hard cliff.
    """
    if (half_life is None) != (now is None):
        raise ValueError("now and half_life must be given together")
    if half_life is not None and half_life <= 0:
        raise ValueError("half_life must be positive")
    total = 0.0
    for file_id, size_bytes, timestamp in ledger.downloads_with_time(
            downloader, uploader):
        evaluation = store.value(downloader, file_id)
        if evaluation is None:
            continue
        contribution = evaluation * size_bytes
        if half_life is not None:
            age = max(now - timestamp, 0.0)  # type: ignore[operator]
            contribution *= 0.5 ** (age / half_life)
        total += contribution
    return total


def build_volume_trust_matrix(ledger: DownloadLedger, store: EvaluationStore,
                              config: ReputationConfig = DEFAULT_CONFIG,
                              now: Optional[float] = None,
                              half_life: Optional[float] = None
                              ) -> TrustMatrix:
    """Eqs. 4-5: the row-normalised volume-based one-step matrix ``DM``.

    ``now``/``half_life`` enable the recency-decayed Eq. 4 variant (see
    :func:`valid_download_volume`).
    """
    raw = TrustMatrix()
    for downloader, uploader in ledger.pairs():
        volume = valid_download_volume(ledger, store, downloader, uploader,
                                       now=now, half_life=half_life)
        if volume > 0.0:
            raw.set(downloader, uploader, volume)
    matrix = raw.row_normalized()
    check_row_stochastic(matrix, name="DM")
    return matrix

"""Download-volume-based direct trust (Section 3.1.2, Eqs. 4-5).

If user ``i`` downloads real content from user ``j``, ``i`` has implicit
grounds to trust ``j``.  Valid download volume weights each downloaded file's
size by ``i``'s evaluation of it::

    VD_ij = sum_{k in D_ij} E_ik * S_k     (Eq. 4)
    DM_ij = VD_ij / sum_k VD_ik            (Eq. 5)

so a gigabyte of files the downloader later judged fake (evaluation ~0)
contributes almost nothing, while well-evaluated bytes contribute fully.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import fsum
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..lint.contracts import check_row_stochastic
from .config import DEFAULT_CONFIG, ReputationConfig
from .evaluation import EvaluationStore, JournalSink
from .matrix import TrustMatrix

__all__ = ["DownloadLedger", "valid_download_volume",
           "build_volume_trust_matrix", "VolumeTrustAccumulator"]


@dataclass(frozen=True)
class _DownloadEntry:
    file_id: str
    size_bytes: float
    timestamp: float


@dataclass
class DownloadLedger:
    """Record of who downloaded which file (with size) from whom.

    ``D_ij`` in Eq. 4 is exactly ``entries[(i, j)]``.
    """

    _entries: Dict[Tuple[str, str], List[_DownloadEntry]] = field(default_factory=dict)
    #: Downloader -> uploaders with at least one recorded entry; lets the
    #: incremental DM builder re-derive one downloader's row without
    #: scanning every (downloader, uploader) pair in the system.
    _uploaders: Dict[str, Set[str]] = field(default_factory=dict)
    #: Downloaders whose entries changed since the last :meth:`clear_dirty`.
    _dirty_downloaders: Set[str] = field(default_factory=set)
    #: Optional write-ahead hook (see :data:`~repro.core.evaluation
    #: .JournalSink`): mutators emit a record before the mutation lands.
    journal: Optional[JournalSink] = field(default=None, repr=False,
                                           compare=False)

    def record_download(self, downloader: str, uploader: str, file_id: str,
                        size_bytes: float, timestamp: float = 0.0) -> None:
        if size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {size_bytes}")
        if downloader == uploader:
            raise ValueError("a user cannot download from itself")
        if self.journal is not None:
            self.journal("ledger.download", {
                "downloader": downloader, "uploader": uploader,
                "file": file_id, "size": size_bytes, "timestamp": timestamp})
        self._entries.setdefault((downloader, uploader), []).append(
            _DownloadEntry(file_id=file_id, size_bytes=size_bytes,
                           timestamp=timestamp))
        self._uploaders.setdefault(downloader, set()).add(uploader)
        self._dirty_downloaders.add(downloader)

    def downloads(self, downloader: str, uploader: str) -> List[Tuple[str, float]]:
        """``(file_id, size)`` pairs downloaded by ``downloader`` from ``uploader``."""
        return [(entry.file_id, entry.size_bytes)
                for entry in self._entries.get((downloader, uploader), ())]

    def downloads_with_time(self, downloader: str,
                            uploader: str) -> List[Tuple[str, float, float]]:
        """``(file_id, size, timestamp)`` triples for the pair."""
        return [(entry.file_id, entry.size_bytes, entry.timestamp)
                for entry in self._entries.get((downloader, uploader), ())]

    def uploaders_of(self, downloader: str) -> List[str]:
        """Uploaders this downloader got files from, sorted for determinism."""
        return sorted(self._uploaders.get(downloader, ()))

    def pairs(self) -> Iterable[Tuple[str, str]]:
        return self._entries.keys()

    def prune_older_than(self, cutoff_timestamp: float) -> int:
        """Drop download records last seen before ``cutoff_timestamp``."""
        if self.journal is not None:
            self.journal("ledger.prune", {"cutoff": cutoff_timestamp})
        removed = 0
        for key in list(self._entries):
            kept = [e for e in self._entries[key] if e.timestamp >= cutoff_timestamp]
            dropped = len(self._entries[key]) - len(kept)
            if not dropped:
                continue
            removed += dropped
            downloader, uploader = key
            self._dirty_downloaders.add(downloader)
            if kept:
                self._entries[key] = kept
            else:
                del self._entries[key]
                uploaders = self._uploaders.get(downloader)
                if uploaders is not None:
                    uploaders.discard(uploader)
                    if not uploaders:
                        del self._uploaders[downloader]
        return removed

    # ------------------------------------------------------------------ #
    # Delta tracking                                                     #
    # ------------------------------------------------------------------ #

    def dirty_downloaders(self) -> Set[str]:
        """Downloaders whose DM row inputs changed since the last clear."""
        return set(self._dirty_downloaders)

    @property
    def has_dirty(self) -> bool:
        return bool(self._dirty_downloaders)

    def clear_dirty(self) -> None:
        self._dirty_downloaders.clear()

    # ------------------------------------------------------------------ #
    # Journal replay                                                     #
    # ------------------------------------------------------------------ #

    def apply_record(self, kind: str, payload: Mapping[str, Any]) -> None:
        """Replay one journalled mutation through the live ingest path.

        ``ledger.prune`` is journalled as the *call* (cutoff), not the
        individual deletions: pruning is a pure function of the entries
        already reconstructed by earlier records, so replaying the call
        deletes exactly the same ones.
        """
        if kind == "ledger.download":
            self.record_download(payload["downloader"], payload["uploader"],
                                 payload["file"], payload["size"],
                                 payload["timestamp"])
        elif kind == "ledger.prune":
            self.prune_older_than(payload["cutoff"])
        else:
            raise ValueError(f"unknown ledger record kind {kind!r}")

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._entries.values())


def valid_download_volume(ledger: DownloadLedger, store: EvaluationStore,
                          downloader: str, uploader: str,
                          now: Optional[float] = None,
                          half_life: Optional[float] = None) -> float:
    """Eq. 4: evaluation-weighted bytes ``downloader`` got from ``uploader``.

    Files the downloader has not (yet) evaluated contribute zero — the paper
    counts only *valid* volume, and validity is established by evaluation.

    With ``now`` and ``half_life`` given, each download's contribution
    additionally decays exponentially with age (``0.5 ** (age/half_life)``)
    — a smooth extension of the Section 4.3 interval-pruning rule that lets
    trust track *recent* behaviour without a hard cliff.
    """
    if (half_life is None) != (now is None):
        raise ValueError("now and half_life must be given together")
    if half_life is not None and half_life <= 0:
        raise ValueError("half_life must be positive")
    total = 0.0
    for file_id, size_bytes, timestamp in ledger.downloads_with_time(
            downloader, uploader):
        evaluation = store.value(downloader, file_id)
        if evaluation is None:
            continue
        contribution = evaluation * size_bytes
        if half_life is not None:
            age = max(now - timestamp, 0.0)  # type: ignore[operator]
            contribution *= 0.5 ** (age / half_life)
        total += contribution
    return total


def build_volume_trust_matrix(ledger: DownloadLedger, store: EvaluationStore,
                              config: ReputationConfig = DEFAULT_CONFIG,
                              now: Optional[float] = None,
                              half_life: Optional[float] = None
                              ) -> TrustMatrix:
    """Eqs. 4-5: the row-normalised volume-based one-step matrix ``DM``.

    ``now``/``half_life`` enable the recency-decayed Eq. 4 variant (see
    :func:`valid_download_volume`).
    """
    raw = TrustMatrix()
    for downloader, uploader in ledger.pairs():
        volume = valid_download_volume(ledger, store, downloader, uploader,
                                       now=now, half_life=half_life)
        if volume > 0.0:
            raw.set(downloader, uploader, volume)
    matrix = raw.row_normalized()
    check_row_stochastic(matrix, name="DM")
    return matrix


class VolumeTrustAccumulator:
    """Patch-based DM builder: re-derives only dirty downloaders' rows.

    A downloader's DM row (Eqs. 4-5) depends only on *their own* download
    entries and evaluations, so rows are independent: the accumulator keeps
    the normalised matrix between refreshes and recomputes exactly the rows
    named dirty.  Per-row arithmetic goes through the same
    :func:`valid_download_volume` + fsum-normalisation as the full builder,
    so a patched row is bit-identical to a freshly built one.

    The recency-decayed (``now``/``half_life``) Eq. 4 variant stays on the
    full :func:`build_volume_trust_matrix` path — under decay every row is a
    function of ``now``, and there is no delta to exploit.
    """

    def __init__(self, config: ReputationConfig = DEFAULT_CONFIG):
        self._config = config
        self.matrix = TrustMatrix()
        #: Rows changed by the most recent :meth:`refresh`.
        self.last_dirty_rows: Set[str] = set()

    def refresh(self, ledger: DownloadLedger, store: EvaluationStore,
                dirty_downloaders: Iterable[str]) -> Set[str]:
        """Re-derive the rows of ``dirty_downloaders``; returns rows touched."""
        touched: Set[str] = set()
        for downloader in sorted(set(dirty_downloaders)):
            raw_row: Dict[str, float] = {}
            for uploader in ledger.uploaders_of(downloader):
                volume = valid_download_volume(ledger, store, downloader,
                                               uploader)
                if volume > 0.0:
                    raw_row[uploader] = volume
            self._set_normalized_row(downloader, raw_row)
            touched.add(downloader)
        self.last_dirty_rows = touched
        check_row_stochastic(self.matrix, name="DM")
        return touched

    def rebuild(self, ledger: DownloadLedger,
                store: EvaluationStore) -> Set[str]:
        """Full pass: forget everything and re-derive every row."""
        stale_rows = set(self.matrix.row_ids())
        self.matrix = TrustMatrix()
        downloaders = {downloader for downloader, _ in ledger.pairs()}
        self.last_dirty_rows = self.refresh(ledger, store,
                                            downloaders) | stale_rows
        return self.last_dirty_rows

    def _set_normalized_row(self, downloader: str,
                            raw_row: Dict[str, float]) -> None:
        total = fsum(raw_row.values())
        if total > 0:
            self.matrix.replace_row(
                downloader, {j: value / total for j, value in raw_row.items()})
        else:
            self.matrix.replace_row(downloader, {})

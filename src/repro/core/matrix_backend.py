"""Pluggable matmul backends for :class:`~repro.core.matrix.TrustMatrix`.

``RM = TM^n`` (Eq. 8) is the pipeline's dominant cost once the one-step
matrices are patched incrementally.  The right algorithm depends on the
matrix: real P2P trust matrices are extremely sparse (the paper's coverage
problem), where the dict-of-dicts product wins; but the multi-dimensional
design *densifies* TM on purpose, and past ~30% density a BLAS-backed dense
product is an order of magnitude faster than hashing entry by entry.  In
between — large populations whose TM stays sparse — a compressed-sparse-row
product beats both.

This module extracts the seam:

* :class:`MatmulBackend` — the protocol (``matmul``, ``power``);
* :class:`SparseDictBackend` — the canonical dict-of-dicts implementation
  (delegates to :meth:`TrustMatrix.matmul` / :meth:`TrustMatrix.power`);
* :class:`DenseNumpyBackend` — bridges through :meth:`TrustMatrix.to_dense`
  over the sorted union of node ids and multiplies in numpy;
* :class:`CsrBackend` — scipy CSR product when scipy is importable, a
  blocked-numpy product otherwise (same protocol, no hard dependency);
* :func:`select_backend` — the density×size heuristic behind ``"auto"``;
* :class:`MatrixStats` + :func:`select_backend_from_stats` — the same
  heuristic decided from incrementally maintained counters, so the sharded
  pipeline never pays an O(entries) density scan per refresh;
* :func:`resolve_backend` — maps the config/CLI spelling (``"auto"`` /
  ``"sparse"`` / ``"dense"`` / ``"csr"``) to a concrete choice.

Backends are value-deterministic: two value-equal inputs produce the same
result matrix under the same backend, regardless of dict insertion order
(the sparse product iterates in canonical order; the dense and CSR bridges
index by sorted ids).  Different backends agree to float tolerance, not
bit-for-bit — accumulation orders differ — which is why the ``"auto"``
*decision* itself must be exactly reproducible from stats (see
:class:`MatrixStats`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from .matrix import TrustMatrix

__all__ = [
    "MatmulBackend",
    "SparseDictBackend",
    "DenseNumpyBackend",
    "CsrBackend",
    "SPARSE_BACKEND",
    "DENSE_BACKEND",
    "CSR_BACKEND",
    "BACKEND_SPECS",
    "DENSE_DENSITY_THRESHOLD",
    "DENSE_MIN_NODES",
    "CSR_MIN_NODES",
    "MatrixStats",
    "select_backend",
    "select_backend_from_stats",
    "resolve_backend",
    "resolve_backend_from_stats",
]

#: Density above which the dense product typically beats the sparse one.
DENSE_DENSITY_THRESHOLD = 0.3
#: Below this population the dict product wins regardless of density
#: (the dense bridge's conversion overhead dominates tiny matrices).
DENSE_MIN_NODES = 32
#: At or above this population a sparse matrix is worth the CSR conversion;
#: below it the dict product's zero conversion cost wins.  Deliberately
#: higher than :data:`DENSE_MIN_NODES` so the new regime cannot shift the
#: auto choice for any matrix the old two-way heuristic saw (n < 256 sparse
#: workloads keep picking ``sparse``).
CSR_MIN_NODES = 256

#: Config/CLI spellings accepted by :func:`resolve_backend`.
BACKEND_SPECS = ("auto", "sparse", "dense", "csr")


class MatmulBackend:
    """Protocol: how the pipeline multiplies and powers trust matrices."""

    name: str = "abstract"

    def matmul(self, left: TrustMatrix, right: TrustMatrix) -> TrustMatrix:
        raise NotImplementedError

    def power(self, matrix: TrustMatrix, n: int) -> TrustMatrix:
        raise NotImplementedError


class SparseDictBackend(MatmulBackend):
    """The canonical dict-of-dicts product (sparse-friendly, pure python)."""

    name = "sparse"

    def matmul(self, left: TrustMatrix, right: TrustMatrix) -> TrustMatrix:
        return left.matmul(right)

    def power(self, matrix: TrustMatrix, n: int) -> TrustMatrix:
        return matrix.power(n)


class DenseNumpyBackend(MatmulBackend):
    """Dense numpy product over the sorted union of both operands' ids.

    ``power(m, 1)`` returns ``m`` itself, mirroring the sparse fast path,
    so the default ``n = 1`` configuration allocates nothing.
    """

    name = "dense"

    @staticmethod
    def _ids(*matrices: TrustMatrix) -> List[str]:
        ids = set()
        for matrix in matrices:
            ids.update(matrix.node_ids())
        return sorted(ids)

    def matmul(self, left: TrustMatrix, right: TrustMatrix) -> TrustMatrix:
        ids = self._ids(left, right)
        if not ids:
            return TrustMatrix()
        dense_left, _ = left.to_dense(ids)
        dense_right, _ = right.to_dense(ids)
        return _from_dense_nonzero(dense_left @ dense_right, ids)

    def power(self, matrix: TrustMatrix, n: int) -> TrustMatrix:
        if n < 1:
            raise ValueError(f"matrix power requires n >= 1, got {n}")
        if n == 1:
            return matrix
        ids = self._ids(matrix)
        if not ids:
            return TrustMatrix()
        dense, _ = matrix.to_dense(ids)
        return _from_dense_nonzero(np.linalg.matrix_power(dense, n), ids)


def _scipy_sparse() -> Optional[Any]:
    """The ``scipy.sparse`` module, or ``None`` when scipy is absent."""
    try:
        from scipy import sparse
    except ImportError:
        return None
    return sparse


class CsrBackend(MatmulBackend):
    """Compressed-sparse-row product for large sparse matrices.

    With scipy importable the product runs through ``scipy.sparse``'s C
    CSR multiply; without it, a blocked dense-numpy product (row blocks of
    ``block_rows``, bounding temporary memory) provides the same protocol
    so the backend never becomes a hard dependency.  Both flavours convert
    through the sorted union of node ids with column-sorted rows, so the
    bridge is canonical regardless of dict insertion order.

    ``power(m, 1)`` returns ``m`` itself (the universal fast path); larger
    powers use repeated squaring in the native representation so only the
    final product pays the conversion back to :class:`TrustMatrix`.
    """

    name = "csr"

    def __init__(self, block_rows: int = 256):
        if block_rows < 1:
            raise ValueError(f"block_rows must be >= 1, got {block_rows}")
        self._block_rows = block_rows

    @property
    def flavor(self) -> str:
        """``"scipy"`` or ``"blocked-numpy"`` — which engine runs here."""
        return "scipy" if _scipy_sparse() is not None else "blocked-numpy"

    def matmul(self, left: TrustMatrix, right: TrustMatrix) -> TrustMatrix:
        ids = DenseNumpyBackend._ids(left, right)
        if not ids:
            return TrustMatrix()
        sparse = _scipy_sparse()
        if sparse is None:
            dense_left, _ = left.to_dense(ids)
            dense_right, _ = right.to_dense(ids)
            return _from_dense_nonzero(
                self._blocked_matmul(dense_left, dense_right), ids)
        product = _to_csr(left, ids, sparse) @ _to_csr(right, ids, sparse)
        return _from_csr(product, ids)

    def power(self, matrix: TrustMatrix, n: int) -> TrustMatrix:
        if n < 1:
            raise ValueError(f"matrix power requires n >= 1, got {n}")
        if n == 1:
            return matrix
        ids = DenseNumpyBackend._ids(matrix)
        if not ids:
            return TrustMatrix()
        sparse = _scipy_sparse()
        if sparse is None:
            dense, _ = matrix.to_dense(ids)
            result = dense
            for _ in range(n - 1):
                result = self._blocked_matmul(result, dense)
            return _from_dense_nonzero(result, ids)
        base = _to_csr(matrix, ids, sparse)
        result = None
        remaining = n
        while remaining:
            if remaining & 1:
                result = base if result is None else result @ base
            remaining >>= 1
            if remaining:
                base = base @ base
        assert result is not None
        return _from_csr(result, ids)

    def _blocked_matmul(self, left: "np.ndarray",
                        right: "np.ndarray") -> "np.ndarray":
        """``left @ right`` one row block at a time (bounded temporaries)."""
        out = np.empty_like(left)
        for start in range(0, left.shape[0], self._block_rows):
            stop = start + self._block_rows
            out[start:stop] = left[start:stop] @ right
        return out


def _to_csr(matrix: TrustMatrix, ids: Sequence[str], sparse: Any) -> Any:
    """Canonical CSR over ``ids``: rows in id order, columns sorted."""
    index = {node_id: position for position, node_id in enumerate(ids)}
    indptr = [0]
    indices: List[int] = []
    data: List[float] = []
    for i in ids:
        row = matrix.row_view(i)
        # Sorted column ids land in ascending index order (ids is sorted),
        # giving scipy its canonical format without a sort_indices pass.
        for j in sorted(row):
            indices.append(index[j])
            data.append(row[j])
        indptr.append(len(indices))
    return sparse.csr_matrix(
        (np.asarray(data, dtype=np.float64),
         np.asarray(indices, dtype=np.int64),
         np.asarray(indptr, dtype=np.int64)),
        shape=(len(ids), len(ids)))


def _from_csr(result: Any, ids: Sequence[str]) -> TrustMatrix:
    """CSR product back to a :class:`TrustMatrix` (positive entries only)."""
    result = result.tocsr()
    result.sum_duplicates()
    result.sort_indices()
    out = TrustMatrix()
    indptr = result.indptr
    indices = result.indices
    data = result.data
    for a, i in enumerate(ids):
        start, stop = int(indptr[a]), int(indptr[a + 1])
        if start == stop:
            continue
        cols = indices[start:stop].tolist()
        values = data[start:stop].tolist()
        row = {ids[b]: value for b, value in zip(cols, values) if value > 0.0}
        out.replace_row(i, row)
    return out


def _from_dense_nonzero(array: "np.ndarray", ids: Sequence[str]
                        ) -> TrustMatrix:
    """``TrustMatrix.from_dense`` touching only the non-zero entries."""
    result = TrustMatrix()
    rows, cols = np.nonzero(array > 0.0)
    values = array[rows, cols].tolist()
    for a, b, value in zip(rows.tolist(), cols.tolist(), values):
        result.set(ids[a], ids[b], value)
    return result


SPARSE_BACKEND = SparseDictBackend()
DENSE_BACKEND = DenseNumpyBackend()
CSR_BACKEND = CsrBackend()


class MatrixStats:
    """Incrementally maintained node/entry counters of one matrix.

    The monolithic pipeline's ``"auto"`` backend choice scans the whole
    matrix per refresh (``node_ids()`` + ``density()`` are both O(entries)
    — the very O(n²) wall sharding exists to break).  The sharded pipeline
    instead folds each row replacement into these counters, paying
    O(row size) per patched row, and decides the backend from them.

    The decision **must** match the matrix-scan path exactly (backends
    agree only to tolerance, so a diverging choice breaks bit-identity
    with the monolith): ``nodes`` replicates ``len(matrix.node_ids())``
    via per-id reference counts (one ref per non-empty row owned, one per
    column occurrence) and ``density()`` computes the same
    ``off_diagonal / (n * (n - 1))`` quotient over the same integers as
    :meth:`TrustMatrix.density`.
    """

    __slots__ = ("_refs", "entries", "diagonal", "rows")

    def __init__(self) -> None:
        self._refs: Dict[str, int] = {}
        self.entries = 0
        self.diagonal = 0
        self.rows = 0

    def _retain(self, node_id: str) -> None:
        self._refs[node_id] = self._refs.get(node_id, 0) + 1

    def _release(self, node_id: str) -> None:
        count = self._refs[node_id] - 1
        if count:
            self._refs[node_id] = count
        else:
            del self._refs[node_id]

    def replace_row(self, row_id: str, old_row: Mapping[str, float],
                    new_row: Mapping[str, float]) -> None:
        """Fold one row replacement into the counters.

        Both mappings must reflect *stored* rows (no zero values — the
        caller filters exactly like :meth:`TrustMatrix.replace_row` does).
        """
        if old_row:
            self._release(row_id)
            for j in old_row:
                self._release(j)
            self.entries -= len(old_row)
            self.rows -= 1
            if row_id in old_row:
                self.diagonal -= 1
        if new_row:
            self._retain(row_id)
            for j in new_row:
                self._retain(j)
            self.entries += len(new_row)
            self.rows += 1
            if row_id in new_row:
                self.diagonal += 1

    @property
    def nodes(self) -> int:
        """``len(matrix.node_ids())`` without building the list."""
        return len(self._refs)

    @property
    def off_diagonal(self) -> int:
        return self.entries - self.diagonal

    def density(self) -> float:
        """Same quotient as :meth:`TrustMatrix.density` over all ids."""
        n = self.nodes
        if n < 2:
            return 0.0
        return self.off_diagonal / (n * (n - 1))

    @classmethod
    def of(cls, matrix: TrustMatrix) -> "MatrixStats":
        """Counters for an existing matrix (O(entries), for seeding/tests)."""
        stats = cls()
        for i, row in matrix.iter_row_views():
            stats.replace_row(i, {}, row)
        return stats


def _choose_auto(nodes: int, density: float, density_threshold: float,
                 min_nodes: int, csr_min_nodes: int) -> MatmulBackend:
    """The shared three-regime decision; both selection paths land here."""
    if nodes < min_nodes:
        return SPARSE_BACKEND
    if density >= density_threshold:
        return DENSE_BACKEND
    if nodes >= csr_min_nodes:
        return CSR_BACKEND
    return SPARSE_BACKEND


def select_backend(matrix: TrustMatrix,
                   density_threshold: float = DENSE_DENSITY_THRESHOLD,
                   min_nodes: int = DENSE_MIN_NODES,
                   csr_min_nodes: int = CSR_MIN_NODES) -> MatmulBackend:
    """The ``"auto"`` heuristic: three regimes over density × size.

    * below ``min_nodes``: the dict product's zero conversion cost wins;
    * density ≥ ``density_threshold``: the BLAS dense product wins;
    * otherwise, at or above ``csr_min_nodes``: large-and-sparse — CSR;
    * otherwise sparse.
    """
    ids = matrix.node_ids()
    return _choose_auto(len(ids), matrix.density(ids), density_threshold,
                        min_nodes, csr_min_nodes)


def select_backend_from_stats(stats: MatrixStats,
                              density_threshold: float = DENSE_DENSITY_THRESHOLD,
                              min_nodes: int = DENSE_MIN_NODES,
                              csr_min_nodes: int = CSR_MIN_NODES
                              ) -> MatmulBackend:
    """:func:`select_backend` decided from counters — O(1), no matrix scan.

    Guaranteed to pick the same backend as :func:`select_backend` would on
    the matrix the stats track (same integers, same quotient, same
    comparisons); ``tests/core/test_matrix_backend.py`` pins the lockstep.
    """
    return _choose_auto(stats.nodes, stats.density(), density_threshold,
                        min_nodes, csr_min_nodes)


def resolve_backend(spec: str, matrix: TrustMatrix,
                    density_threshold: float = DENSE_DENSITY_THRESHOLD,
                    min_nodes: int = DENSE_MIN_NODES) -> MatmulBackend:
    """Map a config/CLI backend spelling to a concrete backend.

    ``"sparse"`` / ``"dense"`` / ``"csr"`` force the named backend;
    ``"auto"`` applies :func:`select_backend` to the matrix at hand.
    """
    forced = _forced_backend(spec)
    if forced is not None:
        return forced
    if spec == "auto":
        return select_backend(matrix, density_threshold, min_nodes)
    raise ValueError(
        f"unknown matmul backend {spec!r}; expected one of {BACKEND_SPECS}")


def resolve_backend_from_stats(spec: str, stats: MatrixStats,
                               density_threshold: float = DENSE_DENSITY_THRESHOLD,
                               min_nodes: int = DENSE_MIN_NODES
                               ) -> MatmulBackend:
    """:func:`resolve_backend` with the ``"auto"`` case decided from stats."""
    forced = _forced_backend(spec)
    if forced is not None:
        return forced
    if spec == "auto":
        return select_backend_from_stats(stats, density_threshold, min_nodes)
    raise ValueError(
        f"unknown matmul backend {spec!r}; expected one of {BACKEND_SPECS}")


def _forced_backend(spec: str) -> Optional[MatmulBackend]:
    if spec == "sparse":
        return SPARSE_BACKEND
    if spec == "dense":
        return DENSE_BACKEND
    if spec == "csr":
        return CSR_BACKEND
    return None

"""Pluggable matmul backends for :class:`~repro.core.matrix.TrustMatrix`.

``RM = TM^n`` (Eq. 8) is the pipeline's dominant cost once the one-step
matrices are patched incrementally.  The right algorithm depends on the
matrix: real P2P trust matrices are extremely sparse (the paper's coverage
problem), where the dict-of-dicts product wins; but the multi-dimensional
design *densifies* TM on purpose, and past ~30% density a BLAS-backed dense
product is an order of magnitude faster than hashing entry by entry.

This module extracts the seam:

* :class:`MatmulBackend` — the protocol (``matmul``, ``power``);
* :class:`SparseDictBackend` — the canonical dict-of-dicts implementation
  (delegates to :meth:`TrustMatrix.matmul` / :meth:`TrustMatrix.power`);
* :class:`DenseNumpyBackend` — bridges through :meth:`TrustMatrix.to_dense`
  over the sorted union of node ids and multiplies in numpy;
* :func:`select_backend` — the density×size heuristic behind ``"auto"``;
* :func:`resolve_backend` — maps the config/CLI spelling (``"auto"`` /
  ``"sparse"`` / ``"dense"``) to a concrete choice for a given matrix.

Backends are value-deterministic: two value-equal inputs produce the same
result matrix under the same backend, regardless of dict insertion order
(the sparse product iterates in canonical order; the dense bridge indexes
by sorted ids).  Sparse and dense results agree to float tolerance, not
bit-for-bit — accumulation orders differ.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .matrix import TrustMatrix

__all__ = [
    "MatmulBackend",
    "SparseDictBackend",
    "DenseNumpyBackend",
    "SPARSE_BACKEND",
    "DENSE_BACKEND",
    "BACKEND_SPECS",
    "DENSE_DENSITY_THRESHOLD",
    "DENSE_MIN_NODES",
    "select_backend",
    "resolve_backend",
]

#: Density above which the dense product typically beats the sparse one.
DENSE_DENSITY_THRESHOLD = 0.3
#: Below this population the dict product wins regardless of density
#: (the dense bridge's conversion overhead dominates tiny matrices).
DENSE_MIN_NODES = 32

#: Config/CLI spellings accepted by :func:`resolve_backend`.
BACKEND_SPECS = ("auto", "sparse", "dense")


class MatmulBackend:
    """Protocol: how the pipeline multiplies and powers trust matrices."""

    name: str = "abstract"

    def matmul(self, left: TrustMatrix, right: TrustMatrix) -> TrustMatrix:
        raise NotImplementedError

    def power(self, matrix: TrustMatrix, n: int) -> TrustMatrix:
        raise NotImplementedError


class SparseDictBackend(MatmulBackend):
    """The canonical dict-of-dicts product (sparse-friendly, pure python)."""

    name = "sparse"

    def matmul(self, left: TrustMatrix, right: TrustMatrix) -> TrustMatrix:
        return left.matmul(right)

    def power(self, matrix: TrustMatrix, n: int) -> TrustMatrix:
        return matrix.power(n)


class DenseNumpyBackend(MatmulBackend):
    """Dense numpy product over the sorted union of both operands' ids.

    ``power(m, 1)`` returns ``m`` itself, mirroring the sparse fast path,
    so the default ``n = 1`` configuration allocates nothing.
    """

    name = "dense"

    @staticmethod
    def _ids(*matrices: TrustMatrix) -> List[str]:
        ids = set()
        for matrix in matrices:
            ids.update(matrix.node_ids())
        return sorted(ids)

    def matmul(self, left: TrustMatrix, right: TrustMatrix) -> TrustMatrix:
        ids = self._ids(left, right)
        if not ids:
            return TrustMatrix()
        dense_left, _ = left.to_dense(ids)
        dense_right, _ = right.to_dense(ids)
        return _from_dense_nonzero(dense_left @ dense_right, ids)

    def power(self, matrix: TrustMatrix, n: int) -> TrustMatrix:
        if n < 1:
            raise ValueError(f"matrix power requires n >= 1, got {n}")
        if n == 1:
            return matrix
        ids = self._ids(matrix)
        if not ids:
            return TrustMatrix()
        dense, _ = matrix.to_dense(ids)
        return _from_dense_nonzero(np.linalg.matrix_power(dense, n), ids)


def _from_dense_nonzero(array: "np.ndarray", ids: Sequence[str]
                        ) -> TrustMatrix:
    """``TrustMatrix.from_dense`` touching only the non-zero entries."""
    result = TrustMatrix()
    rows, cols = np.nonzero(array > 0.0)
    for a, b in zip(rows.tolist(), cols.tolist()):
        result.set(ids[a], ids[b], float(array[a, b]))
    return result


SPARSE_BACKEND = SparseDictBackend()
DENSE_BACKEND = DenseNumpyBackend()


def select_backend(matrix: TrustMatrix,
                   density_threshold: float = DENSE_DENSITY_THRESHOLD,
                   min_nodes: int = DENSE_MIN_NODES) -> MatmulBackend:
    """The ``"auto"`` heuristic: dense when the matrix is big *and* dense.

    ``density × size``: below ``min_nodes`` the conversion overhead always
    loses; above it, the dense product wins once more than
    ``density_threshold`` of the off-diagonal edges exist.
    """
    ids = matrix.node_ids()
    if len(ids) < min_nodes:
        return SPARSE_BACKEND
    if matrix.density(ids) >= density_threshold:
        return DENSE_BACKEND
    return SPARSE_BACKEND


def resolve_backend(spec: str, matrix: TrustMatrix,
                    density_threshold: float = DENSE_DENSITY_THRESHOLD,
                    min_nodes: int = DENSE_MIN_NODES) -> MatmulBackend:
    """Map a config/CLI backend spelling to a concrete backend.

    ``"sparse"`` / ``"dense"`` force the named backend; ``"auto"`` applies
    :func:`select_backend` to the matrix at hand.
    """
    if spec == "sparse":
        return SPARSE_BACKEND
    if spec == "dense":
        return DENSE_BACKEND
    if spec == "auto":
        return select_backend(matrix, density_threshold, min_nodes)
    raise ValueError(
        f"unknown matmul backend {spec!r}; expected one of {BACKEND_SPECS}")

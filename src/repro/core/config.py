"""Configuration for the multi-dimensional reputation system.

The paper leaves several knobs open ("we need to do more experiments to
improve the equations and choose the weight values"); this module collects
every such knob in one validated, immutable configuration object so that the
ablation benchmarks (A1-A3 in DESIGN.md) can sweep them systematically.

Weights and their roles:

* ``eta`` / ``rho`` -- Eq. 1 blend of implicit and explicit file evaluation
  (``eta + rho == 1``).
* ``alpha`` / ``beta`` / ``gamma`` -- Eq. 7 blend of the file-based (FM),
  download-volume-based (DM) and user-based (UM) one-step matrices
  (``alpha + beta + gamma == 1``).
* ``multitrust_steps`` -- the ``n`` in ``RM = TM ** n`` (Eq. 8).  The paper
  chooses ``n = 1`` for Maze because the multi-dimensional one-step matrix is
  dense enough; sparser deployments need larger ``n``.
* ``fake_file_threshold`` -- per-user download threshold on Eq. 9's file
  reputation ("he can judge whether to download this file by the threshold
  set by himself").
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = ["ReputationConfig", "ConfigError", "DEFAULT_CONFIG"]

_WEIGHT_TOLERANCE = 1e-9


class ConfigError(ValueError):
    """Raised when a :class:`ReputationConfig` violates a paper invariant."""


def _require_unit(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must lie in [0, 1], got {value!r}")


@dataclass(frozen=True)
class ReputationConfig:
    """All tunable parameters of the reputation system.

    Instances are immutable; use :meth:`replace` to derive variants during
    parameter sweeps.
    """

    # Eq. 1 -- implicit vs. explicit evaluation blend.
    eta: float = 0.4
    rho: float = 0.6

    # Eq. 7 -- dimension weights: file trust, volume trust, user trust.
    alpha: float = 0.5
    beta: float = 0.3
    gamma: float = 0.2

    # Eq. 8 -- number of multi-trust steps (n).
    multitrust_steps: int = 1

    # Matmul backend for RM = TM^n: "sparse" (dict-of-dicts), "dense"
    # (numpy bridge), "csr" (scipy CSR / blocked-numpy fallback) or "auto"
    # (density x size heuristic; see repro.core.matrix_backend).
    # Irrelevant while multitrust_steps == 1.
    matmul_backend: str = "auto"

    # Sharded trust domain (repro.core.sharded_pipeline): number of shards
    # the peer space is partitioned into, and the worker-process count for
    # parallel row patching.  shards == 1 selects the monolithic
    # TrustPipeline; shard_workers == 1 keeps patching on the serial
    # in-process path (byte-identical to the monolith either way).
    shards: int = 1
    shard_workers: int = 1

    # Eq. 2 -- distance metric between evaluation vectors.  One of
    # "l1" (paper default), "euclidean", "kl".
    distance_metric: str = "l1"

    # Eq. 9 -- default per-user threshold for rejecting a file as fake.
    fake_file_threshold: float = 0.5

    # Implicit evaluation: retention time (seconds) at which a retained file
    # saturates to an implicit evaluation of 1.0.  Files deleted immediately
    # score near 0.  30 days, matching the paper's log window.
    retention_saturation_seconds: float = 30 * 24 * 3600.0

    # Section 4.3 -- evaluations older than this interval are pruned
    # ("users only need to preserve the evaluations within an interval").
    evaluation_retention_interval: float = 30 * 24 * 3600.0

    # Minimum co-evaluated files for a file-based trust edge to exist.  The
    # paper requires a non-empty intersection (m >= 1).
    min_overlap: int = 1

    # Incentive mechanism (Section 3.4): the request-time offset granted to
    # the *highest* reputation user, in seconds (applied negatively), and the
    # bandwidth quota (bytes/sec) applied to the *lowest* reputation user.
    max_queue_offset_seconds: float = 60.0
    min_bandwidth_quota: float = 16 * 1024.0
    max_bandwidth_quota: float = 1024 * 1024.0

    # Reputation credit granted for each incentivised action (Section 3.4:
    # "uploading real files, voting on files and ranking other users honestly
    # and even deleting fake files quicker can increase a user's reputation").
    upload_credit: float = 1.0
    vote_credit: float = 0.25
    rank_credit: float = 0.1
    delete_fake_credit: float = 0.5

    def __post_init__(self) -> None:
        for name in ("eta", "rho", "alpha", "beta", "gamma",
                     "fake_file_threshold"):
            _require_unit(name, getattr(self, name))
        if abs(self.eta + self.rho - 1.0) > _WEIGHT_TOLERANCE:
            raise ConfigError(
                f"eta + rho must equal 1 (Eq. 1), got {self.eta + self.rho}")
        total = self.alpha + self.beta + self.gamma
        if abs(total - 1.0) > _WEIGHT_TOLERANCE:
            raise ConfigError(
                f"alpha + beta + gamma must equal 1 (Eq. 7), got {total}")
        if self.multitrust_steps < 1:
            raise ConfigError(
                f"multitrust_steps must be >= 1, got {self.multitrust_steps}")
        if self.distance_metric not in ("l1", "euclidean", "kl"):
            raise ConfigError(
                f"unknown distance_metric {self.distance_metric!r}; "
                "expected 'l1', 'euclidean' or 'kl'")
        if self.matmul_backend not in ("auto", "sparse", "dense", "csr"):
            raise ConfigError(
                f"unknown matmul_backend {self.matmul_backend!r}; "
                "expected 'auto', 'sparse', 'dense' or 'csr'")
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards}")
        if self.shard_workers < 1:
            raise ConfigError(
                f"shard_workers must be >= 1, got {self.shard_workers}")
        if self.retention_saturation_seconds <= 0:
            raise ConfigError("retention_saturation_seconds must be positive")
        if self.evaluation_retention_interval <= 0:
            raise ConfigError("evaluation_retention_interval must be positive")
        if self.min_overlap < 1:
            raise ConfigError(f"min_overlap must be >= 1, got {self.min_overlap}")
        if self.min_bandwidth_quota <= 0:
            raise ConfigError("min_bandwidth_quota must be positive")
        if self.max_bandwidth_quota < self.min_bandwidth_quota:
            raise ConfigError(
                "max_bandwidth_quota must be >= min_bandwidth_quota")
        if self.max_queue_offset_seconds < 0:
            raise ConfigError("max_queue_offset_seconds must be >= 0")
        for name in ("upload_credit", "vote_credit", "rank_credit",
                     "delete_fake_credit"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")

    def replace(self, **changes: object) -> "ReputationConfig":
        """Return a copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def with_dimension_weights(cls, alpha: float, beta: float,
                               gamma: float) -> "ReputationConfig":
        """Convenience constructor for Eq. 7 weight sweeps."""
        return cls(alpha=alpha, beta=beta, gamma=gamma)

    @classmethod
    def file_trust_only(cls) -> "ReputationConfig":
        """A configuration that uses only the file-based dimension (FM)."""
        return cls(alpha=1.0, beta=0.0, gamma=0.0)

    @classmethod
    def volume_trust_only(cls) -> "ReputationConfig":
        """A configuration that uses only the volume-based dimension (DM)."""
        return cls(alpha=0.0, beta=1.0, gamma=0.0)

    @classmethod
    def user_trust_only(cls) -> "ReputationConfig":
        """A configuration that uses only the user-based dimension (UM)."""
        return cls(alpha=0.0, beta=0.0, gamma=1.0)


DEFAULT_CONFIG = ReputationConfig()

"""The DHT ring: membership, stabilisation and key ownership.

An in-process Chord-style network.  Membership changes (join/leave/fail) are
followed by :meth:`DHTNetwork.stabilize`, which rebuilds successor,
predecessor and finger pointers from the current alive set — the in-process
equivalent of Chord's periodic stabilisation converging.  Lookup routing
itself lives in :mod:`repro.dht.routing` and uses only finger/successor
pointers, so hop counts match a real ring (O(log n)).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from .id_space import ID_BITS, ID_SPACE
from .node import DHTNode
from .storage import StoredRecord

__all__ = ["DHTNetwork"]


class DHTNetwork:
    """Tracks ring membership and provides key-ownership queries."""

    def __init__(self, finger_count: int = ID_BITS):
        if not 1 <= finger_count <= ID_BITS:
            raise ValueError(f"finger_count must be in [1, {ID_BITS}]")
        self.finger_count = finger_count
        self._nodes: Dict[str, DHTNode] = {}
        self._sorted_ids: List[int] = []
        self._by_id: Dict[int, DHTNode] = {}

    # ------------------------------------------------------------------ #
    # Membership                                                         #
    # ------------------------------------------------------------------ #

    def join(self, user_id: str) -> DHTNode:
        """Add a node for ``user_id`` (idempotent for alive nodes).

        Rejoining after a death is a *fresh* incarnation: any stale entry
        left by an unclean crash (dead node still registered) is purged so
        the new node starts with empty storage and clean pointers instead
        of resurrecting pre-crash state.
        """
        existing = self._nodes.get(user_id)
        if existing is not None:
            if existing.alive:
                return existing
            self._purge_stale(existing)
        node = DHTNode(user_id=user_id)
        stale = self._by_id.get(node.node_id)
        if stale is not None:
            if stale.alive:
                raise ValueError(f"node id collision for {user_id!r}")
            self._purge_stale(stale)
        self._nodes[user_id] = node
        self._by_id[node.node_id] = node
        bisect.insort(self._sorted_ids, node.node_id)
        self.stabilize()
        return node

    def leave(self, user_id: str) -> None:
        """Graceful leave: hand stored records to the successor, then go."""
        node = self._require(user_id)
        successor = self.successor_of(node)
        if successor is not None and successor is not node:
            for record in list(node.storage.records()):
                successor.storage.put_record(record)
        self._remove(node)

    def fail(self, user_id: str) -> None:
        """Abrupt failure: stored records are lost."""
        node = self._require(user_id)
        self._remove(node)

    def _purge_stale(self, node: DHTNode) -> None:
        """Drop every trace of a dead-but-registered node (unclean crash)."""
        self._nodes.pop(node.user_id, None)
        if self._by_id.get(node.node_id) is node:
            self._by_id.pop(node.node_id, None)
            index = bisect.bisect_left(self._sorted_ids, node.node_id)
            if (index < len(self._sorted_ids)
                    and self._sorted_ids[index] == node.node_id):
                self._sorted_ids.pop(index)

    def _remove(self, node: DHTNode) -> None:
        node.alive = False
        self._nodes.pop(node.user_id, None)
        self._by_id.pop(node.node_id, None)
        index = bisect.bisect_left(self._sorted_ids, node.node_id)
        if index < len(self._sorted_ids) and self._sorted_ids[index] == node.node_id:
            self._sorted_ids.pop(index)
        self.stabilize()

    def _require(self, user_id: str) -> DHTNode:
        node = self._nodes.get(user_id)
        if node is None:
            raise KeyError(f"no alive node for {user_id!r}")
        return node

    # ------------------------------------------------------------------ #
    # Topology                                                           #
    # ------------------------------------------------------------------ #

    def stabilize(self) -> None:
        """Rebuild successor/predecessor/finger pointers for all nodes."""
        if not self._sorted_ids:
            return
        for node in self._nodes.values():
            node.successor = self._first_at_or_after(node.node_id + 1)
            node.predecessor = self._last_before(node.node_id)
            node.fingers = [
                self._first_at_or_after(node.finger_start(i))
                for i in range(self.finger_count)
            ]

    def _first_at_or_after(self, target: int) -> DHTNode:
        target %= ID_SPACE
        index = bisect.bisect_left(self._sorted_ids, target)
        if index == len(self._sorted_ids):
            index = 0
        return self._by_id[self._sorted_ids[index]]

    def _last_before(self, target: int) -> DHTNode:
        target %= ID_SPACE
        index = bisect.bisect_left(self._sorted_ids, target) - 1
        return self._by_id[self._sorted_ids[index]]

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #

    def owner_of(self, key: int) -> Optional[DHTNode]:
        """The node responsible for ``key`` (its successor on the ring)."""
        if not self._sorted_ids:
            return None
        return self._first_at_or_after(key)

    def replica_nodes(self, key: int, count: int) -> List[DHTNode]:
        """The ``count`` distinct successors of ``key`` (replica set)."""
        if count < 1:
            raise ValueError("count must be >= 1")
        if not self._sorted_ids:
            return []
        replicas: List[DHTNode] = []
        node = self.owner_of(key)
        seen = set()
        while node is not None and node.node_id not in seen and len(replicas) < count:
            replicas.append(node)
            seen.add(node.node_id)
            node = self.successor_of(node)
        return replicas

    def repair_replicas(self, replication: int, now: float) -> int:
        """Re-replicate under-replicated records (post-failure repair).

        For every live record anywhere in the network, ensure each of the
        key's current ``replication`` replica nodes holds a copy.  Copies
        preserve the original ``stored_at``/``ttl`` (repair is not
        republication: it cannot extend a record's life).  Returns the
        number of replica copies created.
        """
        if replication < 1:
            raise ValueError("replication must be >= 1")
        repaired = 0
        #: freshest record per (key, owner) across all holders.
        freshest: Dict[Tuple[int, str], StoredRecord] = {}
        for node in self.nodes():
            for record in node.storage.records():
                if record.expired(now):
                    continue
                slot = (record.key, record.owner_id)
                best = freshest.get(slot)
                if best is None or record.stored_at > best.stored_at:
                    freshest[slot] = record
        for (key, owner_id), record in sorted(
                freshest.items(), key=lambda kv: (kv[0][0], kv[0][1])):
            for replica in self.replica_nodes(key, replication):
                if not replica.storage.contains(key, owner_id, now):
                    replica.storage.put_record(record)
                    repaired += 1
        return repaired

    def successor_of(self, node: DHTNode) -> Optional[DHTNode]:
        if not self._sorted_ids:
            return None
        return self._first_at_or_after(node.node_id + 1)

    def node(self, user_id: str) -> DHTNode:
        return self._require(user_id)

    def has_node(self, user_id: str) -> bool:
        return user_id in self._nodes

    def nodes(self) -> List[DHTNode]:
        return [self._by_id[node_id] for node_id in self._sorted_ids]

    def any_node(self) -> Optional[DHTNode]:
        if not self._sorted_ids:
            return None
        return self._by_id[self._sorted_ids[0]]

    def __len__(self) -> int:
        return len(self._sorted_ids)

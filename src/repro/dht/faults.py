"""Seeded fault injection for the DHT overlay: the network gets hostile.

The seed reproduction ran every DHT benchmark over a perfect transport —
messages always arrived, instantly, and nodes only died when the churn
model said so.  :class:`FaultPlan` injects the failure modes a deployed
overlay actually sees, deterministically (one private seeded RNG, never the
global ``random`` module):

* **message loss** — each RPC drops with ``drop_probability``;
* **latency** — delivered RPCs take ``base_latency_seconds`` plus an
  exponential tail, so retries and timeouts have realistic cost;
* **crash-mid-RPC** — with ``crash_probability`` the *contacted* node dies
  while serving the call (the caller sees a timeout, the node's records are
  gone);
* **partitions** — nodes mapped to different partition groups cannot
  exchange messages at all; retries cannot save a partitioned RPC.

``FaultPlan.none()`` is the zero-cost default: ``active`` is ``False`` and
every fault-aware code path short-circuits to the seed behaviour, so
fault-free runs stay byte-identical to the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Tuple

__all__ = ["RPCOutcome", "FaultPlan"]


class RPCOutcome(Enum):
    """What the fault plan decided for one RPC."""

    DELIVERED = "delivered"
    DROPPED = "dropped"
    PARTITIONED = "partitioned"
    CRASHED = "crashed"


@dataclass
class FaultPlan:
    """A deterministic schedule of network faults for one run."""

    drop_probability: float = 0.0
    crash_probability: float = 0.0
    base_latency_seconds: float = 0.0
    mean_latency_jitter_seconds: float = 0.0
    #: user_id -> partition group; nodes in different groups are mutually
    #: unreachable.  Unlisted nodes share the implicit default group.
    partitions: Dict[str, int] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        if not 0.0 <= self.crash_probability < 1.0:
            raise ValueError("crash_probability must be in [0, 1)")
        if self.base_latency_seconds < 0:
            raise ValueError("base_latency_seconds must be >= 0")
        if self.mean_latency_jitter_seconds < 0:
            raise ValueError("mean_latency_jitter_seconds must be >= 0")
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------ #
    # Constructors / queries                                             #
    # ------------------------------------------------------------------ #

    @classmethod
    def none(cls) -> "FaultPlan":
        """The fault-free plan: ``active`` is False, nothing is injected."""
        return cls()

    @property
    def active(self) -> bool:
        """Whether any fault dimension is configured."""
        return bool(self.drop_probability > 0.0
                    or self.crash_probability > 0.0
                    or self.base_latency_seconds > 0.0
                    or self.mean_latency_jitter_seconds > 0.0
                    or self.partitions)

    @property
    def rng(self) -> random.Random:
        """The plan's private RNG (shared with retry jitter for determinism)."""
        return self._rng

    def partition_of(self, user_id: str) -> int:
        return self.partitions.get(user_id, 0)

    def reachable(self, src_user: str, dst_user: str) -> bool:
        """Whether the two nodes sit in the same partition group."""
        if not self.partitions:
            return True
        return self.partition_of(src_user) == self.partition_of(dst_user)

    # ------------------------------------------------------------------ #
    # The fault oracle                                                   #
    # ------------------------------------------------------------------ #

    def transmit(self, src_user: str, dst_user: str
                 ) -> Tuple[RPCOutcome, float]:
        """Decide the fate of one RPC; returns ``(outcome, latency)``.

        Latency is the simulated wall time the caller observed: delivery
        latency for successes, the timeout-equivalent latency for drops and
        crashes (the caller waited the full window before giving up).
        """
        if not self.reachable(src_user, dst_user):
            return RPCOutcome.PARTITIONED, 0.0
        if self.drop_probability > 0.0 \
                and self._rng.random() < self.drop_probability:
            return RPCOutcome.DROPPED, self.sample_latency()
        if self.crash_probability > 0.0 \
                and self._rng.random() < self.crash_probability:
            return RPCOutcome.CRASHED, self.sample_latency()
        return RPCOutcome.DELIVERED, self.sample_latency()

    def sample_latency(self) -> float:
        """One latency draw: base plus an exponential jitter tail."""
        latency = self.base_latency_seconds
        if self.mean_latency_jitter_seconds > 0.0:
            latency += self._rng.expovariate(
                1.0 / self.mean_latency_jitter_seconds)
        return latency

    # ------------------------------------------------------------------ #
    # Partition helpers                                                  #
    # ------------------------------------------------------------------ #

    def partition(self, group_a: Optional[set] = None,
                  group_b: Optional[set] = None) -> None:
        """Split the network: ``group_b`` users move to partition 1."""
        for user in group_a or ():
            self.partitions[user] = 0
        for user in group_b or ():
            self.partitions[user] = 1

    def heal_partitions(self) -> None:
        """Dissolve all partitions (every node reachable again)."""
        self.partitions.clear()

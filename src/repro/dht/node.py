"""A DHT node: identifier, finger table and local storage."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .id_space import ID_BITS, ID_SPACE, hash_key
from .storage import NodeStorage

__all__ = ["DHTNode"]


@dataclass
class DHTNode:
    """One node in the ring.

    The finger table holds, for each ``i``, the first alive node whose id
    is >= ``node_id + 2**i`` (mod the space) — Chord's standard layout.
    Fingers are filled by :class:`~repro.dht.ring.DHTNetwork.stabilize`.
    """

    user_id: str
    node_id: int = field(default=-1)
    alive: bool = True
    storage: NodeStorage = field(default_factory=NodeStorage)
    fingers: List["DHTNode"] = field(default_factory=list, repr=False)
    successor: Optional["DHTNode"] = field(default=None, repr=False)
    predecessor: Optional["DHTNode"] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.node_id < 0:
            self.node_id = hash_key(f"node:{self.user_id}")
        if not 0 <= self.node_id < ID_SPACE:
            raise ValueError(f"node_id out of range: {self.node_id}")

    def finger_start(self, index: int) -> int:
        """The ideal id targeted by finger ``index``."""
        if not 0 <= index < ID_BITS:
            raise ValueError(f"finger index out of range: {index}")
        return (self.node_id + (1 << index)) % ID_SPACE

    def __hash__(self) -> int:
        return hash(self.node_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DHTNode):
            return NotImplemented
        return self.node_id == other.node_id

"""The DHT identifier space: a 160-bit ring with clockwise distance.

Node and key identifiers are SHA-1 hashes (160 bits), as in Chord; all
arithmetic is modulo ``2**160``.  Deterministic helpers hash arbitrary
strings into the space.
"""

from __future__ import annotations

import hashlib

__all__ = ["ID_BITS", "ID_SPACE", "hash_key", "distance", "in_interval"]

ID_BITS = 160
ID_SPACE = 1 << ID_BITS


def hash_key(value: str) -> int:
    """Map an arbitrary string into the identifier space (SHA-1)."""
    digest = hashlib.sha1(value.encode("utf-8")).digest()
    return int.from_bytes(digest, "big")


def distance(from_id: int, to_id: int) -> int:
    """Clockwise ring distance from ``from_id`` to ``to_id``."""
    return (to_id - from_id) % ID_SPACE


def in_interval(value: int, start: int, end: int,
                inclusive_end: bool = False) -> bool:
    """Is ``value`` in the clockwise interval (start, end) on the ring?

    Handles wrap-around.  With ``inclusive_end`` the interval is
    ``(start, end]`` — the form Chord uses for successor ownership.
    """
    value %= ID_SPACE
    start %= ID_SPACE
    end %= ID_SPACE
    if start == end:
        # The interval covers the whole ring (excluding start itself).
        return value != start or inclusive_end
    if start < end:
        return (start < value < end) or (inclusive_end and value == end)
    return (value > start or value < end) or (inclusive_end and value == end)

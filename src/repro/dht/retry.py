"""Typed DHT failures and retry discipline (timeouts, capped backoff).

Real overlays never get to assume delivery: every RPC can time out, and the
caller must decide how often to retry and how long to wait.  This module
provides the two pieces the rest of :mod:`repro.dht` builds on:

* a :class:`DHTError` exception hierarchy so callers can distinguish "the
  network is empty" from "routing diverged" from "the retry budget ran dry"
  (the seed used bare ``assert``/``RuntimeError``, which vanish under
  ``python -O`` and are indistinguishable to callers);
* :class:`RetryPolicy` — timeout + capped exponential backoff with jitter,
  plus a per-operation :class:`RetryBudget` so a single lookup cannot retry
  forever on a partitioned target.

``DHTError`` deliberately subclasses :class:`RuntimeError`: existing callers
(and tests) that caught ``RuntimeError`` keep working, while new callers can
catch the precise subtype.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = [
    "DHTError",
    "EmptyNetworkError",
    "RoutingError",
    "NetworkPartitionError",
    "RetryBudgetExhausted",
    "RetryPolicy",
    "RetryBudget",
    "DEFAULT_RETRY_POLICY",
]


class DHTError(RuntimeError):
    """Base class for all DHT overlay failures."""


class EmptyNetworkError(DHTError):
    """An operation was attempted against a network with no alive nodes."""


class RoutingError(DHTError):
    """Routing diverged (stale pointers, no successor, hop bound exceeded)."""


class NetworkPartitionError(DHTError):
    """Source and destination sit in different network partitions."""


class RetryBudgetExhausted(DHTError):
    """The operation's retry budget drained before it could complete."""


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout + capped exponential backoff with jitter.

    ``max_attempts`` bounds tries against *one* target; ``retry_budget``
    bounds total retries across a whole operation (a lookup may contact many
    nodes, each with its own attempts, but shares one budget).
    """

    max_attempts: int = 4
    base_delay_seconds: float = 0.05
    backoff_factor: float = 2.0
    max_delay_seconds: float = 2.0
    jitter_fraction: float = 0.1
    retry_budget: int = 48

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_seconds < 0:
            raise ValueError("base_delay_seconds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_delay_seconds < self.base_delay_seconds:
            raise ValueError("max_delay_seconds must be >= base_delay_seconds")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be in [0, 1]")
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")

    def backoff_delay(self, attempt: int, rng: random.Random) -> float:
        """Delay before retry number ``attempt`` (0-based), jittered.

        Deterministic for a given ``rng`` state — chaos sweeps stay
        reproducible because the fault plan owns the only RNG.
        """
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        raw = min(self.base_delay_seconds * self.backoff_factor ** attempt,
                  self.max_delay_seconds)
        if self.jitter_fraction == 0.0 or raw == 0.0:
            return raw
        spread = self.jitter_fraction * (2.0 * rng.random() - 1.0)
        return max(raw * (1.0 + spread), 0.0)


#: The policy used when callers do not supply one.
DEFAULT_RETRY_POLICY = RetryPolicy()


class RetryBudget:
    """Mutable per-operation retry counter drawn down by each retry."""

    def __init__(self, policy: RetryPolicy):
        self.policy = policy
        self.remaining = policy.retry_budget
        self.spent = 0

    def try_consume(self) -> bool:
        """Consume one retry; ``False`` when the budget is exhausted."""
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        self.spent += 1
        return True

    @property
    def exhausted(self) -> bool:
        return self.remaining <= 0

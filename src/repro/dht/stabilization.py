"""Round-based Chord stabilisation: eventual consistency made explicit.

:class:`~repro.dht.ring.DHTNetwork` stabilises instantly and globally —
convenient, but it hides the property real Chord relies on: pointers are
repaired *gradually* by periodic local stabilisation, and lookups stay
correct (via successor traversal) even while fingers are stale.

:class:`StabilizingDHTNetwork` makes that explicit.  Membership changes do
NOT rebuild anything; instead each :meth:`stabilize_round` performs one
round of local repairs per node, Chord-style:

1. successor repair — if a node's successor is dead, fall through its
   successor list to the first alive candidate;
2. ``stabilize()`` — ask the successor for its predecessor and adopt it if
   it sits between us and the successor; ``notify`` the successor;
3. fix one finger per round (round-robin over finger indices), resolved
   through the node's *own current* pointers, not an oracle.

The tests drive churn bursts and verify the eventual-consistency contract:
after enough rounds, every lookup agrees with the ideal ring.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .id_space import in_interval
from .node import DHTNode
from .retry import RoutingError
from .ring import DHTNetwork

__all__ = ["StabilizingDHTNetwork"]

#: Finger-table size used by the incremental network.  2**16 node-id space
#: coverage per finger is plenty for test-scale rings and keeps rounds fast.
_FINGERS = 24
#: Successor-list length (Chord's resilience parameter r).
_SUCCESSOR_LIST = 4


class StabilizingDHTNetwork(DHTNetwork):
    """A DHTNetwork whose pointers converge only through stabilise rounds."""

    def __init__(self):
        super().__init__(finger_count=_FINGERS)
        self._successor_lists: Dict[int, List[DHTNode]] = {}
        self._next_finger: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Membership: local effects only                                     #
    # ------------------------------------------------------------------ #

    def join(self, user_id: str) -> DHTNode:
        """Join via an existing node's lookup; no global repair.

        As in the base ring, rejoining after a death is a fresh incarnation:
        stale dead-node bookkeeping is purged, never resurrected.
        """
        existing = self._nodes.get(user_id)
        if existing is not None:
            if existing.alive:
                return existing
            self._purge_stale(existing)
        node = DHTNode(user_id=user_id)
        stale = self._by_id.get(node.node_id)
        if stale is not None:
            if stale.alive:
                raise ValueError(f"node id collision for {user_id!r}")
            self._purge_stale(stale)

        bootstrap = self.any_node()
        self._register(node)
        if bootstrap is None:
            node.successor = node
            node.predecessor = node
            node.fingers = [node] * self.finger_count
        else:
            successor = self._walk_to_owner(bootstrap, node.node_id)
            node.successor = successor
            node.predecessor = None
            node.fingers = [successor] * self.finger_count
        self._successor_lists[node.node_id] = [node.successor]
        self._next_finger[node.node_id] = 0
        return node

    def _register(self, node: DHTNode) -> None:
        import bisect
        self._nodes[node.user_id] = node
        self._by_id[node.node_id] = node
        bisect.insort(self._sorted_ids, node.node_id)

    def fail(self, user_id: str) -> None:
        """Abrupt failure: nothing is repaired until stabilise rounds run."""
        node = self._nodes.get(user_id)
        if node is None:
            raise KeyError(f"no alive node for {user_id!r}")
        import bisect
        node.alive = False
        self._nodes.pop(user_id, None)
        self._by_id.pop(node.node_id, None)
        index = bisect.bisect_left(self._sorted_ids, node.node_id)
        if (index < len(self._sorted_ids)
                and self._sorted_ids[index] == node.node_id):
            self._sorted_ids.pop(index)
        self._successor_lists.pop(node.node_id, None)
        self._next_finger.pop(node.node_id, None)

    def leave(self, user_id: str) -> None:
        """Graceful leave still hands data off, but repairs are deferred."""
        node = self._nodes.get(user_id)
        if node is None:
            raise KeyError(f"no alive node for {user_id!r}")
        successor = self._first_alive(self._successor_chain(node))
        if successor is not None and successor is not node:
            for record in list(node.storage.records()):
                successor.storage.put_record(record)
        self.fail(user_id)

    def stabilize(self) -> None:
        """Override the oracle: one incremental round instead."""
        self.stabilize_round()

    def _purge_stale(self, node: DHTNode) -> None:
        super()._purge_stale(node)
        self._successor_lists.pop(node.node_id, None)
        self._next_finger.pop(node.node_id, None)

    # ------------------------------------------------------------------ #
    # Churn recovery                                                     #
    # ------------------------------------------------------------------ #

    def recover_from_churn(self, replication: int, now: float,
                           max_rounds: int = 64) -> int:
        """Full resilience sweep: converge pointers, then repair replicas.

        The order matters — replica placement consults ring ownership, so
        repairing against stale pointers would replicate to the wrong
        successors.  Returns the number of replica copies re-created.
        """
        self.stabilize_until_consistent(max_rounds=max_rounds)
        return self.repair_replicas(replication, now)

    # ------------------------------------------------------------------ #
    # Incremental repair                                                 #
    # ------------------------------------------------------------------ #

    def stabilize_round(self) -> None:
        """One Chord stabilisation round across all alive nodes."""
        for node in self.nodes():
            self._repair_successor(node)
            self._stabilize_node(node)
            self._fix_one_finger(node)

    def stabilize_until_consistent(self, max_rounds: int = 64) -> int:
        """Run rounds until pointers match the ideal ring; return rounds."""
        for round_number in range(1, max_rounds + 1):
            self.stabilize_round()
            if self._is_consistent():
                return round_number
        raise RoutingError(
            f"stabilisation did not converge in {max_rounds} rounds")

    def _is_consistent(self) -> bool:
        nodes = self.nodes()
        for node in nodes:
            ideal_successor = self._first_at_or_after(node.node_id + 1)
            if node.successor is not ideal_successor:
                return False
            for index in range(self.finger_count):
                ideal = self._first_at_or_after(node.finger_start(index))
                if node.fingers[index] is not ideal:
                    return False
        return True

    # --- local repairs ------------------------------------------------ #

    def _successor_chain(self, node: DHTNode) -> List[DHTNode]:
        chain = [node.successor] if node.successor is not None else []
        chain += self._successor_lists.get(node.node_id, [])
        return chain

    def _first_alive(self, candidates: List[DHTNode]) -> Optional[DHTNode]:
        for candidate in candidates:
            if candidate is not None and candidate.alive:
                return candidate
        return None

    def _repair_successor(self, node: DHTNode) -> None:
        if node.successor is not None and node.successor.alive:
            return
        replacement = self._first_alive(self._successor_chain(node))
        if replacement is None or replacement is node.successor:
            # Last resort: walk the finger table for any alive node.
            replacement = self._first_alive(list(node.fingers)) or node
        node.successor = replacement

    def _stabilize_node(self, node: DHTNode) -> None:
        successor = node.successor
        if successor is None or not successor.alive:
            return
        candidate = successor.predecessor
        if (candidate is not None and candidate.alive
                and in_interval(candidate.node_id, node.node_id,
                                successor.node_id)):
            node.successor = candidate
            successor = candidate
        # notify: the successor adopts us as predecessor if we are closer.
        predecessor = successor.predecessor
        if (successor is not node
                and (predecessor is None or not predecessor.alive
                     or in_interval(node.node_id, predecessor.node_id,
                                    successor.node_id))):
            successor.predecessor = node
        # refresh the successor list from the (new) successor's list.
        chain = [successor] + [
            entry for entry in self._successor_lists.get(
                successor.node_id, []) if entry.alive
        ]
        self._successor_lists[node.node_id] = chain[:_SUCCESSOR_LIST]

    def _fix_one_finger(self, node: DHTNode) -> None:
        index = self._next_finger.get(node.node_id, 0)
        target = node.finger_start(index)
        owner = self._walk_to_owner(node, target)
        if owner is not None:
            while len(node.fingers) < self.finger_count:
                node.fingers.append(node.successor or node)
            node.fingers[index] = owner
        self._next_finger[node.node_id] = (index + 1) % self.finger_count

    def _walk_to_owner(self, start: DHTNode, key: int
                       ) -> Optional[DHTNode]:
        """Find the key's owner using only local pointers (no oracle).

        Greedy finger steps with successor fallback; bounded walk.
        """
        current = start
        for _ in range(4 * max(len(self), 4)):
            successor = current.successor
            if successor is None or not successor.alive:
                successor = self._first_alive(self._successor_chain(current))
                if successor is None:
                    return current
                current.successor = successor
            if current is successor:
                return current
            if in_interval(key, current.node_id, successor.node_id,
                           inclusive_end=True):
                return successor
            next_node = None
            for finger in reversed(current.fingers):
                if (finger is not None and finger.alive
                        and in_interval(finger.node_id, current.node_id,
                                        key)):
                    next_node = finger
                    break
            current = next_node if next_node is not None else successor
        return current

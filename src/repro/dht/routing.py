"""Iterative finger-table routing with hop accounting.

``Lookup(key, ...)`` — the "basic operation" of Section 4 — walks the ring
greedily: from the current node, take the farthest finger that does not
overshoot the key, until the key's owner (the first node at or past the key)
is reached.  Hop counts are returned so benchmarks can verify the O(log n)
routing cost and measure the message overhead of the evaluation layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .id_space import ID_SPACE, in_interval
from .node import DHTNode
from .ring import DHTNetwork

__all__ = ["LookupResult", "lookup"]

#: Safety bound: no sane lookup takes more hops than nodes.
_MAX_HOPS_FACTOR = 2


@dataclass(frozen=True)
class LookupResult:
    """Outcome of a lookup: the owner node and the route taken."""

    key: int
    owner: DHTNode
    hops: int
    path: List[str]


def lookup(network: DHTNetwork, key: int,
           start: Optional[DHTNode] = None) -> LookupResult:
    """Route from ``start`` (default: an arbitrary node) to ``key``'s owner."""
    if len(network) == 0:
        raise RuntimeError("cannot look up in an empty network")
    key %= ID_SPACE
    current = start if start is not None else network.any_node()
    assert current is not None
    expected_owner = network.owner_of(key)
    assert expected_owner is not None

    path = [current.user_id]
    hops = 0
    max_hops = max(len(network) * _MAX_HOPS_FACTOR, 8)
    while current.node_id != expected_owner.node_id:
        next_node = _closest_preceding(current, key)
        if next_node is None or next_node.node_id == current.node_id:
            # No finger makes progress: fall through to the successor.
            next_node = current.successor
        if next_node is None:
            raise RuntimeError("routing failed: node has no successor")
        current = next_node
        hops += 1
        path.append(current.user_id)
        if hops > max_hops:
            raise RuntimeError(
                f"routing did not converge after {hops} hops "
                "(stale finger tables? call stabilize())")
    return LookupResult(key=key, owner=current, hops=hops, path=path)


def _closest_preceding(node: DHTNode, key: int) -> Optional[DHTNode]:
    """The farthest finger strictly between ``node`` and ``key`` (Chord).

    Additionally, if the node's direct successor already owns the key,
    route straight to it.
    """
    successor = node.successor
    if successor is not None and in_interval(
            key, node.node_id, successor.node_id, inclusive_end=True):
        return successor
    for finger in reversed(node.fingers):
        if finger is None or not finger.alive:
            continue
        if in_interval(finger.node_id, node.node_id, key):
            return finger
    return successor

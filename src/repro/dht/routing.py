"""Iterative finger-table routing with hop accounting and fault tolerance.

``Lookup(key, ...)`` — the "basic operation" of Section 4 — walks the ring
greedily: from the current node, take the farthest finger that does not
overshoot the key, until the key's owner (the first node at or past the key)
is reached.  Hop counts are returned so benchmarks can verify the O(log n)
routing cost and measure the message overhead of the evaluation layer.

Routing is *iterative and oracle-free*: termination is decided purely from
the pointers of the nodes on the route (a node owns the key when the key
falls in ``(predecessor, node]``; a successor owns it when the key falls in
``(node, successor]``), never by consulting global ring state.  Stale
fingers are tolerated via successor fallback.

When a :class:`~repro.dht.faults.FaultPlan` is supplied every hop becomes a
real RPC that can drop, crash the contacted node, or be partitioned away.
Drops are retried under a :class:`~repro.dht.retry.RetryPolicy` (capped
exponential backoff with jitter, a shared per-lookup retry budget); nodes
that stay unreachable are routed around.  When the budget drains, the
lookup returns a *typed failure* (``result.error``) instead of raising, so
degraded callers can serve partial results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set

from ..obs.recorder import NULL_RECORDER, NullRecorder
from .faults import FaultPlan, RPCOutcome
from .id_space import ID_SPACE, in_interval
from .messages import MessageKind, MessageTally
from .node import DHTNode
from .retry import (DEFAULT_RETRY_POLICY, DHTError, EmptyNetworkError,
                    NetworkPartitionError, RetryBudget, RetryBudgetExhausted,
                    RetryPolicy, RoutingError)
from .ring import DHTNetwork

__all__ = ["LookupResult", "lookup"]

#: Safety bound: no sane lookup takes more hops than nodes.
_MAX_HOPS_FACTOR = 2


@dataclass(frozen=True)
class LookupResult:
    """Outcome of a lookup: the owner node and the route taken.

    ``owner`` is ``None`` exactly when ``error`` is set — a typed failure
    (retry budget exhausted, partition, divergence) under fault injection.
    """

    key: int
    owner: Optional[DHTNode]
    hops: int
    path: List[str]
    error: Optional[DHTError] = None
    #: RPCs that timed out (dropped or crashed mid-RPC).
    timeouts: int = 0
    #: Retries spent recovering from those timeouts.
    retries: int = 0
    #: Simulated wall-clock latency accumulated over the route.
    latency: float = field(default=0.0, compare=False)

    @property
    def ok(self) -> bool:
        return self.error is None


def lookup(network: DHTNetwork, key: int,
           start: Optional[DHTNode] = None,
           faults: Optional[FaultPlan] = None,
           retry_policy: Optional[RetryPolicy] = None,
           tally: Optional[MessageTally] = None,
           recorder: NullRecorder = NULL_RECORDER) -> LookupResult:
    """Route from ``start`` (default: an arbitrary node) to ``key``'s owner.

    Raises :class:`EmptyNetworkError` on an empty network and
    :class:`RoutingError` on divergence when no fault plan is active; with
    an active plan, routing failures come back as ``result.error`` instead
    so chaos runs degrade rather than crash.

    With span tracing enabled, every lookup runs inside a ``dht.lookup``
    span whose cost is the route's simulated latency (wire time plus retry
    backoff) and whose counters carry hops/retries/timeouts — the
    per-query attribution the flat ``dht_lookup`` event cannot give.
    """
    with recorder.request_span("dht.lookup") as span:
        result = _lookup_impl(network, key, start, faults, retry_policy,
                              tally, recorder)
        span.add_cost(result.latency)
        span.count("hops", result.hops)
        span.count("retries", result.retries)
        span.count("timeouts", result.timeouts)
        span.annotate(ok=result.ok)
    return result


def _lookup_impl(network: DHTNetwork, key: int,
                 start: Optional[DHTNode],
                 faults: Optional[FaultPlan],
                 retry_policy: Optional[RetryPolicy],
                 tally: Optional[MessageTally],
                 recorder: NullRecorder) -> LookupResult:
    if len(network) == 0:
        raise EmptyNetworkError("cannot look up in an empty network")
    key %= ID_SPACE
    current = start if start is not None else network.any_node()
    if current is None:
        raise EmptyNetworkError("network has no alive start node")

    injecting = faults is not None and faults.active
    policy = retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
    budget = RetryBudget(policy)
    path = [current.user_id]
    hops = 0
    timeouts = 0
    retries = 0
    latency = 0.0
    max_hops = max(len(network) * _MAX_HOPS_FACTOR, 8)
    #: Nodes that proved unreachable this lookup; fingers to them are skipped.
    unreachable: Set[int] = set()

    def _emit(result: LookupResult) -> LookupResult:
        """Record the lookup's cost before handing the result back."""
        if recorder.enabled:
            recorder.event(
                "dht_lookup", key=f"{key:#x}", hops=result.hops,
                retries=result.retries, timeouts=result.timeouts,
                fallbacks=len(unreachable), ok=result.ok,
                error=(type(result.error).__name__
                       if result.error is not None else None))
            recorder.observe("dht.lookup.hops", result.hops)
            recorder.observe("dht.lookup.retries", result.retries)
            recorder.inc("dht.lookups")
            if not result.ok:
                recorder.inc("dht.lookup.failures")
        return result

    def _fail(error: DHTError) -> LookupResult:
        if not injecting:
            raise error
        return _emit(LookupResult(key=key, owner=None, hops=hops, path=path,
                                  error=error, timeouts=timeouts,
                                  retries=retries, latency=latency))

    while True:
        if _owns_key(current, key):
            return _emit(LookupResult(key=key, owner=current, hops=hops,
                                      path=path, timeouts=timeouts,
                                      retries=retries, latency=latency))
        next_node = _closest_preceding(current, key, frozenset(unreachable))
        if next_node is None or next_node.node_id == current.node_id:
            # No finger makes progress: fall through to the successor.
            next_node = current.successor
        if next_node is None:
            return _fail(RoutingError("routing failed: node has no successor"))
        if next_node.node_id in unreachable:
            return _fail(RoutingError(
                f"no reachable route past {current.user_id} "
                f"toward key {key:#x}"))

        if injecting:
            delivered, cost = _contact(network, faults, policy, budget,
                                       current, next_node, tally)
            latency += cost.latency
            timeouts += cost.timeouts
            retries += cost.retries
            if not delivered:
                if cost.partitioned:
                    return _fail(NetworkPartitionError(
                        f"{next_node.user_id} unreachable across partition"))
                if budget.exhausted:
                    return _fail(RetryBudgetExhausted(
                        f"retry budget drained after {budget.spent} retries "
                        f"en route to key {key:#x}"))
                # Target stayed dark: route around it from where we stand.
                unreachable.add(next_node.node_id)
                continue

        current = next_node
        hops += 1
        path.append(current.user_id)
        if hops > max_hops:
            return _fail(RoutingError(
                f"routing did not converge after {hops} hops "
                "(stale finger tables? call stabilize())"))


def _owns_key(node: DHTNode, key: int) -> bool:
    """Oracle-free ownership: the key falls in ``(predecessor, node]``.

    Requires an alive predecessor pointer; when it is missing or dead the
    route keeps walking and terminates via the successor interval instead.
    """
    predecessor = node.predecessor
    return (predecessor is not None and predecessor.alive
            and in_interval(key, predecessor.node_id, node.node_id,
                            inclusive_end=True))


@dataclass
class _ContactCost:
    latency: float = 0.0
    timeouts: int = 0
    retries: int = 0
    partitioned: bool = False


def _contact(network: DHTNetwork, faults: FaultPlan, policy: RetryPolicy,
             budget: RetryBudget, src: DHTNode, dst: DHTNode,
             tally: Optional[MessageTally]) -> "tuple[bool, _ContactCost]":
    """One fault-subjected RPC with per-target retries under a shared budget."""
    cost = _ContactCost()
    if not dst.alive:
        # A finger to an already-dead node: instant timeout, no wire time.
        cost.timeouts += 1
        if tally is not None:
            tally.record(MessageKind.TIMEOUT, 0)
        return False, cost
    for attempt in range(policy.max_attempts):
        outcome, wire_latency = faults.transmit(src.user_id, dst.user_id)
        cost.latency += wire_latency
        if outcome is RPCOutcome.DELIVERED:
            return True, cost
        if outcome is RPCOutcome.PARTITIONED:
            cost.partitioned = True
            if tally is not None:
                tally.record(MessageKind.DROP, 0)
            return False, cost
        if outcome is RPCOutcome.CRASHED and dst.alive:
            # The contacted node dies mid-RPC; its records go with it.
            network.fail(dst.user_id)
        cost.timeouts += 1
        if tally is not None:
            tally.record(MessageKind.DROP if outcome is RPCOutcome.DROPPED
                         else MessageKind.TIMEOUT, 0)
        if outcome is RPCOutcome.CRASHED:
            return False, cost
        if attempt + 1 >= policy.max_attempts or not budget.try_consume():
            return False, cost
        cost.retries += 1
        cost.latency += policy.backoff_delay(attempt, faults.rng)
        if tally is not None:
            tally.record(MessageKind.RETRY, 0)
    return False, cost


def _closest_preceding(node: DHTNode, key: int,
                       avoid: FrozenSet[int] = frozenset()
                       ) -> Optional[DHTNode]:
    """The farthest finger strictly between ``node`` and ``key`` (Chord).

    Additionally, if the node's direct successor already owns the key,
    route straight to it.  Fingers in ``avoid`` (proven unreachable this
    lookup) are skipped — stale-finger tolerance.
    """
    successor = node.successor
    if successor is not None and successor.node_id not in avoid \
            and in_interval(key, node.node_id, successor.node_id,
                            inclusive_end=True):
        return successor
    for finger in reversed(node.fingers):
        if finger is None or not finger.alive or finger.node_id in avoid:
            continue
        if in_interval(finger.node_id, node.node_id, key):
            return finger
    return successor

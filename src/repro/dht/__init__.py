"""Chord-style DHT substrate for the Section 4 deployment."""

from .crypto import KeyAuthority, SignatureError
from .deployment import DHTBackedMechanism
from .faults import FaultPlan, RPCOutcome
from .id_space import ID_BITS, ID_SPACE, distance, hash_key, in_interval
from .retry import (DEFAULT_RETRY_POLICY, DHTError, EmptyNetworkError,
                    NetworkPartitionError, RetryBudget, RetryBudgetExhausted,
                    RetryPolicy, RoutingError)
from .messages import (EvaluationInfo, IndexRecord, MessageEnvelope,
                       MessageKind, MessageTally)
from .node import DHTNode
from .overlay_service import EvaluationOverlay, RetrievedEvaluations
from .ring import DHTNetwork
from .routing import LookupResult, lookup
from .stabilization import StabilizingDHTNetwork
from .security import (ExaminationReport, ProactiveExaminer,
                       attempt_forged_publication, make_mimic_responder)
from .storage import NodeStorage, StoredRecord

__all__ = [
    "KeyAuthority",
    "SignatureError",
    "DHTBackedMechanism",
    "FaultPlan",
    "RPCOutcome",
    "DEFAULT_RETRY_POLICY",
    "DHTError",
    "EmptyNetworkError",
    "NetworkPartitionError",
    "RetryBudget",
    "RetryBudgetExhausted",
    "RetryPolicy",
    "RoutingError",
    "ID_BITS",
    "ID_SPACE",
    "distance",
    "hash_key",
    "in_interval",
    "EvaluationInfo",
    "IndexRecord",
    "MessageEnvelope",
    "MessageKind",
    "MessageTally",
    "DHTNode",
    "EvaluationOverlay",
    "RetrievedEvaluations",
    "DHTNetwork",
    "StabilizingDHTNetwork",
    "LookupResult",
    "lookup",
    "ExaminationReport",
    "ProactiveExaminer",
    "attempt_forged_publication",
    "make_mimic_responder",
    "NodeStorage",
    "StoredRecord",
]

"""Section 4.2 security machinery.

Attack 1 (forged/distorted third-party evaluations) is prevented by the
signatures in :mod:`repro.dht.crypto` — :func:`attempt_forged_publication`
demonstrates the rejection path end to end.

Attack 3 (a user forging his *own* evaluations to mirror a reputable user
and steal their trust) cannot be caught by signatures — the forger signs his
own lies.  Following Swamynathan et al. [14], a **virtual user** examines a
suspect's evaluation list repeatedly under fresh identities; "if there are
great differences between two examinations, it means this user has forged
his evaluations".  An honest user answers every querier identically from a
stable local store; a mimic that tailors its list to whoever asks (the
profitable strategy, since matching the querier maximises Eq. 2 similarity)
answers two different probes very differently — and is flagged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .messages import EvaluationInfo
from .overlay_service import EvaluationOverlay

__all__ = ["attempt_forged_publication", "make_mimic_responder",
           "ExaminationReport", "ProactiveExaminer"]


def attempt_forged_publication(overlay: EvaluationOverlay, attacker_id: str,
                               victim_id: str, file_id: str,
                               forged_evaluation: float,
                               now: float) -> bool:
    """Attacker publishes an evaluation *as the victim*; returns acceptance.

    The attacker cannot produce the victim's signature, so the record is
    stored with an invalid signature and dropped at retrieval (step 3
    verification).  Returns True if the forged evaluation survived — which
    a correct deployment must never allow.
    """
    info = EvaluationInfo(file_id=file_id, owner_id=victim_id,
                          evaluation=forged_evaluation)
    # The best the attacker can do is sign with his *own* key.
    forged = info.with_signature(
        overlay.authority.sign(attacker_id, info.payload()))
    from .id_space import hash_key  # local import to avoid cycle at top
    from .messages import IndexRecord
    key = hash_key(f"file:{file_id}")
    record = IndexRecord(file_id=file_id, owner_id=victim_id,
                         evaluation=forged)
    for replica in overlay.network.replica_nodes(key, overlay.replication):
        replica.storage.put(key, victim_id, record, now, overlay.record_ttl)
    retrieved = overlay.retrieve(attacker_id, file_id, now)
    return victim_id in retrieved.evaluations


def make_mimic_responder(overlay: EvaluationOverlay):
    """The attack-3 strategy: answer each querier with the querier's list.

    Mirroring the *querier* maximises file-trust similarity (Eq. 2 distance
    zero), making this the strongest evaluation-forgery strategy against
    pairwise trust.
    """
    def responder(querier_id: str) -> Dict[str, float]:
        return overlay.local_list(querier_id)
    return responder


@dataclass(frozen=True)
class ExaminationReport:
    """Result of proactively examining one suspect."""

    suspect_id: str
    #: Mean absolute difference between answers given to the two probes on
    #: commonly-reported files; None when the probes shared no files.
    divergence: Optional[float]
    #: Jaccard overlap of the file sets reported to the two probes.
    overlap: float
    flagged: bool


class ProactiveExaminer:
    """Virtual-user examination of evaluation lists (Swamynathan-style)."""

    def __init__(self, overlay: EvaluationOverlay,
                 divergence_threshold: float = 0.3,
                 overlap_threshold: float = 0.5,
                 seed: int = 17):
        if not 0.0 <= divergence_threshold <= 1.0:
            raise ValueError("divergence_threshold must be in [0,1]")
        if not 0.0 <= overlap_threshold <= 1.0:
            raise ValueError("overlap_threshold must be in [0,1]")
        self.overlay = overlay
        self.divergence_threshold = divergence_threshold
        self.overlap_threshold = overlap_threshold
        self._rng = random.Random(seed)
        self._probe_counter = 0

    def _fresh_probe_identity(self, catalog_files: Sequence[str]) -> str:
        """Create a virtual user with a random plausible evaluation list."""
        self._probe_counter += 1
        probe_id = f"__probe-{self._probe_counter:04d}"
        self.overlay.register_user(probe_id)
        sample_size = min(len(catalog_files),
                          max(3, len(catalog_files) // 4))
        sampled = self._rng.sample(list(catalog_files), sample_size)
        now = 0.0
        for file_id in sampled:
            self.overlay.publish(probe_id, file_id,
                                 self._rng.random(), now)
        return probe_id

    def examine(self, suspect_id: str,
                catalog_files: Sequence[str]) -> ExaminationReport:
        """Probe ``suspect_id`` twice under fresh identities and compare."""
        probe_a = self._fresh_probe_identity(catalog_files)
        probe_b = self._fresh_probe_identity(catalog_files)
        answer_a = self.overlay.fetch_evaluation_list(probe_a, suspect_id)
        answer_b = self.overlay.fetch_evaluation_list(probe_b, suspect_id)

        files_a, files_b = set(answer_a), set(answer_b)
        union = files_a | files_b
        common = files_a & files_b
        overlap = len(common) / len(union) if union else 1.0
        divergence: Optional[float] = None
        if common:
            divergence = sum(abs(answer_a[f] - answer_b[f])
                             for f in common) / len(common)

        flagged = overlap < self.overlap_threshold or (
            divergence is not None
            and divergence > self.divergence_threshold)
        if not answer_a and not answer_b:
            # Nothing to examine; an empty list is not evidence of forgery.
            flagged = False
        return ExaminationReport(suspect_id=suspect_id,
                                 divergence=divergence,
                                 overlap=overlap, flagged=flagged)

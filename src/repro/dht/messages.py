"""DHT message/record types and message-cost accounting.

Section 4.1 defines the published record: ``EvaluationInfo = <FileID,
OwnerID, Evaluation, Signature>``.  We pair it with the plain index record
(file metadata + owner) it piggybacks on, and a :class:`MessageTally` that
counts lookups/publications/retrievals so benchmark F2 can report the
paper's claim that piggybacking evaluations "will not need more lookup
messages ... though it will increase the size of the information slightly".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

__all__ = ["EvaluationInfo", "IndexRecord", "MessageKind", "MessageTally"]


@dataclass(frozen=True)
class EvaluationInfo:
    """A signed evaluation as published to the index peer."""

    file_id: str
    owner_id: str
    evaluation: float
    signature: bytes = b""

    def __post_init__(self) -> None:
        if not 0.0 <= self.evaluation <= 1.0:
            raise ValueError(
                f"evaluation must be in [0,1], got {self.evaluation}")

    def payload(self) -> bytes:
        """Canonical byte serialisation covered by the signature."""
        return json.dumps(
            {"file_id": self.file_id, "owner_id": self.owner_id,
             "evaluation": round(self.evaluation, 9)},
            sort_keys=True).encode("utf-8")

    def with_signature(self, signature: bytes) -> "EvaluationInfo":
        return EvaluationInfo(file_id=self.file_id, owner_id=self.owner_id,
                              evaluation=self.evaluation, signature=signature)

    def size_bytes(self) -> int:
        """Wire size estimate (payload + signature)."""
        return len(self.payload()) + len(self.signature)


@dataclass(frozen=True)
class IndexRecord:
    """A file's index entry: which owner holds it (plus metadata)."""

    file_id: str
    owner_id: str
    filename: str = ""
    size_bytes: float = 0.0
    #: The piggybacked evaluation, if the owner published one.
    evaluation: Optional[EvaluationInfo] = None

    def wire_size(self) -> int:
        base = len(self.file_id) + len(self.owner_id) + len(self.filename) + 16
        if self.evaluation is not None:
            base += self.evaluation.size_bytes()
        return base


class MessageKind(Enum):
    LOOKUP = "lookup"
    LOOKUP_HOP = "lookup_hop"
    PUBLISH = "publish"
    RETRIEVE = "retrieve"
    REPUBLISH = "republish"
    EVALUATION_LIST = "evaluation_list"
    #: Fault-injection observability (see :mod:`repro.dht.faults`).
    DROP = "drop"
    TIMEOUT = "timeout"
    RETRY = "retry"
    REPAIR = "repair"


@dataclass
class MessageTally:
    """Counts messages and bytes by kind."""

    counts: Dict[MessageKind, int] = field(default_factory=dict)
    bytes_sent: Dict[MessageKind, int] = field(default_factory=dict)

    def record(self, kind: MessageKind, size_bytes: int = 0) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.bytes_sent[kind] = self.bytes_sent.get(kind, 0) + size_bytes

    def count(self, kind: MessageKind) -> int:
        return self.counts.get(kind, 0)

    @property
    def drops(self) -> int:
        """Messages lost to injected faults (drops + partition refusals)."""
        return self.count(MessageKind.DROP)

    @property
    def timeouts(self) -> int:
        """RPCs that timed out (dead targets, crash-mid-RPC)."""
        return self.count(MessageKind.TIMEOUT)

    @property
    def retries(self) -> int:
        """Retries spent recovering from drops/timeouts."""
        return self.count(MessageKind.RETRY)

    @property
    def repairs(self) -> int:
        """Replica copies re-created by the repair sweep."""
        return self.count(MessageKind.REPAIR)

    def total_messages(self) -> int:
        return sum(self.counts.values())

    def total_bytes(self) -> int:
        return sum(self.bytes_sent.values())

    def snapshot(self) -> Dict[str, int]:
        return {kind.value: count for kind, count in sorted(
            self.counts.items(), key=lambda kv: kv[0].value)}

"""DHT message/record types and message-cost accounting.

Section 4.1 defines the published record: ``EvaluationInfo = <FileID,
OwnerID, Evaluation, Signature>``.  We pair it with the plain index record
(file metadata + owner) it piggybacks on, and a :class:`MessageTally` that
counts lookups/publications/retrievals so benchmark F2 can report the
paper's claim that piggybacking evaluations "will not need more lookup
messages ... though it will increase the size of the information slightly".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

__all__ = ["EvaluationInfo", "IndexRecord", "MessageKind", "MessageTally",
           "MessageEnvelope"]


@dataclass(frozen=True)
class EvaluationInfo:
    """A signed evaluation as published to the index peer."""

    file_id: str
    owner_id: str
    evaluation: float
    signature: bytes = b""

    def __post_init__(self) -> None:
        if not 0.0 <= self.evaluation <= 1.0:
            raise ValueError(
                f"evaluation must be in [0,1], got {self.evaluation}")

    def payload(self) -> bytes:
        """Canonical byte serialisation covered by the signature."""
        return json.dumps(
            {"file_id": self.file_id, "owner_id": self.owner_id,
             "evaluation": round(self.evaluation, 9)},
            sort_keys=True).encode("utf-8")

    def with_signature(self, signature: bytes) -> "EvaluationInfo":
        return EvaluationInfo(file_id=self.file_id, owner_id=self.owner_id,
                              evaluation=self.evaluation, signature=signature)

    def size_bytes(self) -> int:
        """Wire size estimate (payload + signature)."""
        return len(self.payload()) + len(self.signature)


@dataclass(frozen=True)
class IndexRecord:
    """A file's index entry: which owner holds it (plus metadata)."""

    file_id: str
    owner_id: str
    filename: str = ""
    size_bytes: float = 0.0
    #: The piggybacked evaluation, if the owner published one.
    evaluation: Optional[EvaluationInfo] = None

    def wire_size(self) -> int:
        base = len(self.file_id) + len(self.owner_id) + len(self.filename) + 16
        if self.evaluation is not None:
            base += self.evaluation.size_bytes()
        return base


class MessageKind(Enum):
    LOOKUP = "lookup"
    LOOKUP_HOP = "lookup_hop"
    PUBLISH = "publish"
    RETRIEVE = "retrieve"
    REPUBLISH = "republish"
    EVALUATION_LIST = "evaluation_list"
    #: Fault-injection observability (see :mod:`repro.dht.faults`).
    DROP = "drop"
    TIMEOUT = "timeout"
    RETRY = "retry"
    REPAIR = "repair"


@dataclass(frozen=True)
class MessageEnvelope:
    """Wire framing around one DHT message: kind, payload size, causality.

    ``span_id``/``trace_id`` are the optional causal-span context of the
    sender (see :mod:`repro.obs.spans`): in the simulated overlay they ride
    along so message accounting can attribute bytes to a trace, and in the
    future networked mode they are the wire fields that let a receiving
    peer link its own spans to the sender's trace.  When absent the
    envelope adds zero bytes — causality costs nothing unless span tracing
    is on (the paper's "increase the size ... slightly" trade, made
    opt-in).
    """

    kind: MessageKind
    payload_bytes: int = 0
    span_id: Optional[int] = None
    trace_id: Optional[int] = None

    def wire_size(self) -> int:
        """Payload plus 8 bytes per causal id actually carried."""
        overhead = 0
        if self.span_id is not None:
            overhead += 8
        if self.trace_id is not None:
            overhead += 8
        return self.payload_bytes + overhead

    def to_wire(self) -> str:
        """Canonical JSON framing (compact, sorted keys; ids omitted when
        absent) — the format the networked mode will put on the socket."""
        frame: Dict[str, object] = {"kind": self.kind.value,
                                    "payload_bytes": self.payload_bytes}
        if self.span_id is not None:
            frame["span"] = self.span_id
        if self.trace_id is not None:
            frame["trace"] = self.trace_id
        return json.dumps(frame, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_wire(cls, data: str) -> "MessageEnvelope":
        frame = json.loads(data)
        if not isinstance(frame, dict):
            raise ValueError("envelope frame must be a JSON object")
        try:
            kind = MessageKind(frame["kind"])
            payload_bytes = int(frame["payload_bytes"])
        except (KeyError, ValueError, TypeError) as error:
            raise ValueError(f"malformed envelope frame: {error}") from None
        span = frame.get("span")
        trace = frame.get("trace")
        return cls(kind=kind, payload_bytes=payload_bytes,
                   span_id=int(span) if span is not None else None,
                   trace_id=int(trace) if trace is not None else None)


@dataclass
class MessageTally:
    """Counts messages and bytes by kind."""

    counts: Dict[MessageKind, int] = field(default_factory=dict)
    bytes_sent: Dict[MessageKind, int] = field(default_factory=dict)

    def record(self, kind: MessageKind, size_bytes: int = 0) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.bytes_sent[kind] = self.bytes_sent.get(kind, 0) + size_bytes

    def record_envelope(self, envelope: MessageEnvelope) -> None:
        """Account one enveloped message (payload + causal-id overhead)."""
        self.record(envelope.kind, envelope.wire_size())

    def count(self, kind: MessageKind) -> int:
        return self.counts.get(kind, 0)

    @property
    def drops(self) -> int:
        """Messages lost to injected faults (drops + partition refusals)."""
        return self.count(MessageKind.DROP)

    @property
    def timeouts(self) -> int:
        """RPCs that timed out (dead targets, crash-mid-RPC)."""
        return self.count(MessageKind.TIMEOUT)

    @property
    def retries(self) -> int:
        """Retries spent recovering from drops/timeouts."""
        return self.count(MessageKind.RETRY)

    @property
    def repairs(self) -> int:
        """Replica copies re-created by the repair sweep."""
        return self.count(MessageKind.REPAIR)

    def total_messages(self) -> int:
        return sum(self.counts.values())

    def total_bytes(self) -> int:
        return sum(self.bytes_sent.values())

    def snapshot(self) -> Dict[str, int]:
        return {kind.value: count for kind, count in sorted(
            self.counts.items(), key=lambda kv: kv[0].value)}

"""Simulated signatures for evaluation integrity (Section 4.2, attack 1).

"A user may forge or distort other user's evaluation ... This can be solved
by digital signature."  The simulation needs unforgeability *within the
model*, not cryptographic strength, so we use HMAC-SHA256 with per-user
secret keys held by a :class:`KeyAuthority`.  A forger who does not hold the
victim's key cannot produce a valid signature over altered content — which
is exactly the property the security benchmarks exercise.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Dict

__all__ = ["KeyAuthority", "SignatureError"]


class SignatureError(Exception):
    """Raised when a signature fails verification."""


@dataclass(frozen=True)
class _KeyPair:
    user_id: str
    secret: bytes


class KeyAuthority:
    """Issues per-user keys and signs/verifies byte payloads.

    In a deployment each user holds their own private key and publishes the
    public key; collapsing that into one in-process authority preserves the
    *behavioural* property (only the owner can sign as themselves) without
    real asymmetric crypto.
    """

    def __init__(self, seed: bytes = b"repro-dht"):
        self._seed = seed
        self._keys: Dict[str, _KeyPair] = {}

    def register(self, user_id: str) -> None:
        """Issue a key for ``user_id`` (idempotent, deterministic per seed)."""
        if user_id not in self._keys:
            secret = hashlib.sha256(self._seed + user_id.encode("utf-8")).digest()
            self._keys[user_id] = _KeyPair(user_id=user_id, secret=secret)

    def is_registered(self, user_id: str) -> bool:
        return user_id in self._keys

    def sign(self, user_id: str, payload: bytes) -> bytes:
        """Sign ``payload`` as ``user_id``; the user must be registered."""
        pair = self._keys.get(user_id)
        if pair is None:
            raise SignatureError(f"no key registered for {user_id!r}")
        return hmac.new(pair.secret, payload, hashlib.sha256).digest()

    def verify(self, user_id: str, payload: bytes, signature: bytes) -> bool:
        """True iff ``signature`` is valid for ``payload`` under ``user_id``."""
        pair = self._keys.get(user_id)
        if pair is None:
            return False
        expected = hmac.new(pair.secret, payload, hashlib.sha256).digest()
        return hmac.compare_digest(expected, signature)

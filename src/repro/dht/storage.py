"""Per-node storage with TTL expiry and republication bookkeeping.

DHT entries are soft state: a record lives ``ttl`` seconds past its last
(re-)publication and is dropped afterwards, so data owned by departed users
ages out naturally — the standard technique for handling churn that
Section 4.3 alludes to ("a user will publish index information to
multi-users regularly").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, Iterator, List, Optional, TypeVar

__all__ = ["StoredRecord", "NodeStorage"]

T = TypeVar("T")


@dataclass
class StoredRecord(Generic[T]):
    """One stored value plus its freshness metadata."""

    key: int
    owner_id: str
    value: T
    stored_at: float
    ttl: float

    def expires_at(self) -> float:
        return self.stored_at + self.ttl

    def expired(self, now: float) -> bool:
        return now >= self.expires_at()


class NodeStorage(Generic[T]):
    """Key -> per-owner records.  One owner holds one record per key."""

    def __init__(self, default_ttl: float = 24 * 3600.0):
        if default_ttl <= 0:
            raise ValueError("default_ttl must be positive")
        self.default_ttl = default_ttl
        self._records: Dict[int, Dict[str, StoredRecord[T]]] = {}

    def put(self, key: int, owner_id: str, value: T, now: float,
            ttl: Optional[float] = None) -> StoredRecord[T]:
        """Store/refresh ``owner_id``'s record under ``key``."""
        record = StoredRecord(key=key, owner_id=owner_id, value=value,
                              stored_at=now,
                              ttl=ttl if ttl is not None else self.default_ttl)
        self._records.setdefault(key, {})[owner_id] = record
        return record

    def put_record(self, record: StoredRecord[T]) -> StoredRecord[T]:
        """Adopt an existing record verbatim, preserving its freshness.

        Used by graceful-leave hand-off and replica repair: the copy must
        keep the original ``stored_at``/``ttl`` so repair never extends a
        record's life beyond what its publisher paid for.  An existing
        *fresher* record for the same (key, owner) is never overwritten.
        """
        per_owner = self._records.setdefault(record.key, {})
        current = per_owner.get(record.owner_id)
        if current is not None and current.stored_at >= record.stored_at:
            return current
        copied = StoredRecord(key=record.key, owner_id=record.owner_id,
                              value=record.value, stored_at=record.stored_at,
                              ttl=record.ttl)
        per_owner[record.owner_id] = copied
        return copied

    def contains(self, key: int, owner_id: str, now: float) -> bool:
        """Whether a live record for ``(key, owner_id)`` is held here."""
        return self.get_owner(key, owner_id, now) is not None

    def get(self, key: int, now: float) -> List[StoredRecord[T]]:
        """All live records under ``key`` (expired ones are dropped)."""
        self._expire_key(key, now)
        per_owner = self._records.get(key, {})
        return sorted(per_owner.values(), key=lambda r: r.owner_id)

    def get_owner(self, key: int, owner_id: str,
                  now: float) -> Optional[StoredRecord[T]]:
        self._expire_key(key, now)
        return self._records.get(key, {}).get(owner_id)

    def remove(self, key: int, owner_id: str) -> bool:
        per_owner = self._records.get(key)
        if per_owner and owner_id in per_owner:
            del per_owner[owner_id]
            if not per_owner:
                del self._records[key]
            return True
        return False

    def expire_all(self, now: float) -> int:
        """Drop every expired record; returns the number removed."""
        removed = 0
        for key in list(self._records):
            removed += self._expire_key(key, now)
        return removed

    def _expire_key(self, key: int, now: float) -> int:
        per_owner = self._records.get(key)
        if not per_owner:
            return 0
        stale = [owner for owner, record in per_owner.items()
                 if record.expired(now)]
        for owner in stale:
            del per_owner[owner]
        if not per_owner:
            del self._records[key]
        return len(stale)

    def keys(self) -> List[int]:
        return sorted(self._records)

    def records(self) -> Iterator[StoredRecord[T]]:
        for per_owner in self._records.values():
            yield from per_owner.values()

    def __len__(self) -> int:
        return sum(len(per_owner) for per_owner in self._records.values())

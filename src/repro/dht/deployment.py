"""DHT-backed deployment of the reputation mechanism.

The paper's future work: "deploy this framework in a real system".
:class:`DHTBackedMechanism` is that deployment inside the simulator: it
behaves like :class:`~repro.baselines.multidimensional.MultiDimensionalMechanism`
for trust computation (each user's trust state is local knowledge, exactly
as Section 4 step 4 prescribes), but every *evaluation* flows through a
live :class:`~repro.dht.overlay_service.EvaluationOverlay`:

* votes and retention-derived implicit evaluations are **published** to the
  file's index peers, signed (steps 1-2);
* file judgements (Eq. 9) use only the evaluations actually **retrievable**
  from the DHT at that moment (step 3+5) — TTL expiry and node churn
  degrade what a requester can see, which is precisely the deployment
  effect worth measuring;
* ``refresh()`` doubles as the republication tick (step 2) and recomputes
  the trust matrices.

The overlay's :class:`~repro.dht.messages.MessageTally` keeps the full
message bill of the deployment.
"""

from __future__ import annotations

from typing import Optional, Set

from ..baselines.multidimensional import MultiDimensionalMechanism
from ..core.config import DEFAULT_CONFIG, ReputationConfig
from ..core.file_reputation import file_reputation
from .crypto import KeyAuthority
from .faults import FaultPlan
from .overlay_service import EvaluationOverlay
from .retry import RetryPolicy
from .ring import DHTNetwork

__all__ = ["DHTBackedMechanism"]


class DHTBackedMechanism(MultiDimensionalMechanism):
    """The paper's system with evaluations stored and fetched over a DHT."""

    name = "multidimensional-dht"

    def __init__(self, config: ReputationConfig = DEFAULT_CONFIG,
                 overlay: Optional[EvaluationOverlay] = None,
                 replication: int = 2,
                 record_ttl: float = 24 * 3600.0,
                 faults: Optional[FaultPlan] = None,
                 retry_policy: Optional[RetryPolicy] = None):
        super().__init__(config)
        self.overlay = overlay if overlay is not None else EvaluationOverlay(
            DHTNetwork(), KeyAuthority(), config=config,
            replication=replication, record_ttl=record_ttl,
            faults=faults, retry_policy=retry_policy)
        self._known_users: Set[str] = set()
        self._now = 0.0

    # ------------------------------------------------------------------ #
    # Membership                                                         #
    # ------------------------------------------------------------------ #

    def _ensure_user(self, user_id: str) -> None:
        if user_id not in self._known_users:
            self.overlay.register_user(user_id)
            self._known_users.add(user_id)

    def _touch(self, timestamp: float) -> None:
        self._now = max(self._now, timestamp)

    def on_peer_online(self, user: str, timestamp: float = 0.0) -> None:
        """(Re)join the ring and immediately republish own records.

        Re-publication on rejoin is the paper's §4.3 availability technique
        ("a user will publish index information to multi-users regularly"):
        whatever the node's death took down comes back with the user.
        """
        self._touch(timestamp)
        self.overlay.register_user(user)
        self._known_users.add(user)
        self.overlay.republish_all(user, timestamp)

    def on_peer_offline(self, user: str, timestamp: float = 0.0) -> None:
        """Abrupt departure: the DHT node fails, its stored records die."""
        self._touch(timestamp)
        if self.overlay.network.has_node(user):
            self.overlay.network.fail(user)
        self._known_users.discard(user)

    # ------------------------------------------------------------------ #
    # Signals: forward to the facade AND the overlay                     #
    # ------------------------------------------------------------------ #

    def record_download(self, downloader: str, uploader: str, file_id: str,
                        size_bytes: float, timestamp: float = 0.0) -> None:
        self._ensure_user(downloader)
        self._ensure_user(uploader)
        self._touch(timestamp)
        super().record_download(downloader, uploader, file_id, size_bytes,
                                timestamp)
        # Step 1 (index half): the new holder announces holdership.
        self.overlay.publish_index_only(downloader, file_id, timestamp,
                                        size_bytes=size_bytes)

    def record_vote(self, voter: str, file_id: str, vote: float,
                    timestamp: float = 0.0) -> None:
        self._ensure_user(voter)
        self._touch(timestamp)
        super().record_vote(voter, file_id, vote, timestamp)
        self._publish_current_evaluation(voter, file_id, timestamp)

    def record_retention(self, user: str, file_id: str,
                         retention_seconds: float,
                         timestamp: float = 0.0) -> None:
        self._ensure_user(user)
        self._touch(timestamp)
        super().record_retention(user, file_id, retention_seconds, timestamp)
        self._publish_current_evaluation(user, file_id, timestamp)

    def record_deletion(self, user: str, file_id: str,
                        timestamp: float = 0.0) -> None:
        self._ensure_user(user)
        self._touch(timestamp)
        super().record_deletion(user, file_id, timestamp)
        self._publish_current_evaluation(user, file_id, timestamp)

    def _publish_current_evaluation(self, user_id: str, file_id: str,
                                    timestamp: float) -> None:
        """Publish the user's Eq. 1 evaluation of the file (steps 1-2)."""
        value = self.system.evaluations.value(user_id, file_id)
        if value is not None:
            self.overlay.publish(user_id, file_id,
                                 min(max(value, 0.0), 1.0), timestamp)

    # ------------------------------------------------------------------ #
    # Maintenance                                                        #
    # ------------------------------------------------------------------ #

    def refresh(self) -> None:
        """Republication tick + trust-matrix recomputation.

        Under fault injection the tick also runs the replica-repair sweep:
        writes lost to drops and records lost to crashes get re-replicated.
        The sweep is skipped on the fault-free path so seed runs stay
        byte-identical.
        """
        for user_id in sorted(self._known_users):
            self.overlay.republish_all(user_id, self._now)
        self.overlay.expire_all(self._now)
        faults = self.overlay.faults
        if faults is not None and faults.active:
            self.overlay.repair_replicas(self._now)
        super().refresh()

    @property
    def availability(self) -> float:
        """Fraction of DHT retrievals that met their read quorum."""
        return self.overlay.availability

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #

    def file_score(self, observer: str, file_id: str) -> Optional[float]:
        """Eq. 9 over what the DHT can actually serve right now (steps 3+5).

        Unlike the in-process adapter, evaluations of departed or expired
        publishers are invisible — the deployment pays for churn with
        blinder judgements, never with wrong trust weighting.
        """
        self._ensure_user(observer)
        retrieved = self.overlay.retrieve(observer, file_id, self._now)
        if not retrieved.evaluations:
            return None
        reputation = self.system.reputation_matrix()
        return file_reputation(reputation, observer, retrieved.evaluations)

"""The Section 4.1 framework: evaluations stored and served over the DHT.

Implements the six steps of Figure 2:

1. **Publication** — a file's evaluation is piggybacked on its index
   publication: ``EvaluationInfo = <FileID, OwnerID, Evaluation,
   Signature>`` stored at the file's index peer(s).
2. **Update** — regular republication refreshes the soft state.
3. **Retrieval** — a prospective downloader looks up the file's index peer
   and receives the owner list *plus* the array of signed evaluations
   (invalid signatures are dropped).
4. **User reputation** — the user fetches a target's evaluation list
   directly from the target and computes TM, then RM with multi-trust.
5. **File reputation** — Eq. 9 over the retrieved evaluation array,
   weighted by the requester's RM row.
6. **Service differentiation** — requester reputation maps to a bandwidth
   quota and queue position via the core incentive machinery.

All message costs flow into a :class:`~repro.dht.messages.MessageTally`, so
benchmark F2 can check the paper's cost claim: piggybacking evaluations adds
*no* extra lookups, only bytes.

**Resilience.**  When constructed with an active
:class:`~repro.dht.faults.FaultPlan`, every publication write and retrieval
read becomes a fault-subjected RPC with retries
(:class:`~repro.dht.retry.RetryPolicy`).  Retrieval degrades gracefully: it
reads from the key's whole replica set, merges the freshest record per
owner, and returns a *partial* :class:`RetrievedEvaluations` whose
``complete`` flag says whether the read quorum was met — callers keep
working with whatever survived.  :meth:`EvaluationOverlay.repair_replicas`
re-replicates under-replicated records after node failures.  With the
default ``faults=None`` all of this is dormant and the overlay behaves
exactly like the fault-free seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..core.config import DEFAULT_CONFIG, ReputationConfig
from ..core.evaluation import EvaluationStore
from ..core.file_reputation import file_reputation
from ..core.file_trust import build_file_trust_matrix
from ..core.incentive import ServiceDifferentiator, ServiceLevel
from ..core.matrix import TrustMatrix
from ..core.multitrust import compute_reputation_matrix
from ..obs.recorder import NULL_RECORDER, NullRecorder
from ..obs.spans import NULL_SPAN, NullSpan
from .crypto import KeyAuthority
from .faults import FaultPlan, RPCOutcome
from .id_space import hash_key
from .messages import (EvaluationInfo, IndexRecord, MessageEnvelope,
                       MessageKind, MessageTally)
from .node import DHTNode
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy
from .ring import DHTNetwork
from .routing import LookupResult, lookup
from .storage import StoredRecord

__all__ = ["EvaluationOverlay", "RetrievedEvaluations"]

#: Strategy answering "what is your evaluation list?"; lets attack models
#: (mimics) answer differently per querier.  Maps querier_id -> {file: eval}.
ListResponder = Callable[[str], Dict[str, float]]


@dataclass
class RetrievedEvaluations:
    """Step 3 result: owners plus verified evaluations for one file.

    Under fault injection the result may be *partial*: ``complete`` says
    whether at least ``quorum`` of the key's replicas answered.  The
    fault-free path always reports a complete single-replica read, so the
    defaults keep seed behaviour bit-for-bit.
    """

    file_id: str
    owners: List[str]
    evaluations: Dict[str, float]
    #: Records whose signature failed verification (dropped).
    rejected: int
    lookup_hops: int
    #: Whether the read met its replica quorum (always True without faults).
    complete: bool = True
    #: Replicas that actually answered the read.
    replicas_contacted: int = 1
    #: Replicas that had to answer for the read to count as complete.
    quorum: int = 1


class EvaluationOverlay:
    """Evaluation publication/retrieval service over a :class:`DHTNetwork`."""

    def __init__(self, network: DHTNetwork, authority: KeyAuthority,
                 config: ReputationConfig = DEFAULT_CONFIG,
                 replication: int = 2,
                 record_ttl: float = 24 * 3600.0,
                 faults: Optional[FaultPlan] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 read_quorum: Optional[int] = None,
                 recorder: NullRecorder = NULL_RECORDER):
        if replication < 1:
            raise ValueError("replication must be >= 1")
        if read_quorum is not None and not 1 <= read_quorum <= replication:
            raise ValueError("read_quorum must be in [1, replication]")
        self.network = network
        self.authority = authority
        self.config = config
        self.replication = replication
        self.record_ttl = record_ttl
        self.faults = faults
        self.retry_policy = (retry_policy if retry_policy is not None
                             else DEFAULT_RETRY_POLICY)
        #: Replicas that must answer a fault-injected read (default:
        #: majority of the replica set).
        self.read_quorum = (read_quorum if read_quorum is not None
                            else replication // 2 + 1)
        self.tally = MessageTally()
        #: Observability sink; NULL_RECORDER keeps the overlay unmetered.
        self.recorder = recorder
        #: Availability accounting: retrievals attempted / met quorum.
        self.retrievals_total = 0
        self.retrievals_complete = 0
        # Each user's true local evaluation list (their own store).
        self._local_lists: Dict[str, Dict[str, float]] = {}
        # Pluggable responders for attack modelling; default: honest.
        self._responders: Dict[str, ListResponder] = {}
        # Everything a user has published, for republication.
        self._published: Dict[str, List[IndexRecord]] = {}
        # Every identity that ever joined, so rejoins are distinguishable
        # from first joins (the whitewashing detector keys on this flag).
        self._ever_registered: set = set()

    # ------------------------------------------------------------------ #
    # Membership passthrough                                             #
    # ------------------------------------------------------------------ #

    def register_user(self, user_id: str) -> DHTNode:
        """Join the DHT and provision a signing key."""
        rejoined = user_id in self._ever_registered
        self._ever_registered.add(user_id)
        self.authority.register(user_id)
        node = self.network.join(user_id)
        if self.recorder.enabled:
            self.recorder.event("dht_node_join", user=user_id,
                                rejoined=rejoined)
            self.recorder.inc("dht.node_joins")
        return node

    # ------------------------------------------------------------------ #
    # Step 1 & 2: publication / update                                   #
    # ------------------------------------------------------------------ #

    def publish(self, user_id: str, file_id: str, evaluation: float,
                now: float, filename: str = "",
                size_bytes: float = 0.0) -> int:
        """Publish the index record with piggybacked signed evaluation.

        Returns the number of lookup hops used (one lookup regardless of the
        evaluation — the paper's "no more lookup messages" property).
        """
        info = EvaluationInfo(file_id=file_id, owner_id=user_id,
                              evaluation=evaluation)
        info = info.with_signature(self.authority.sign(user_id, info.payload()))
        record = IndexRecord(file_id=file_id, owner_id=user_id,
                             filename=filename, size_bytes=size_bytes,
                             evaluation=info)
        hops = self._store(record, user_id, now, MessageKind.PUBLISH)
        self._local_lists.setdefault(user_id, {})[file_id] = evaluation
        published = self._published.setdefault(user_id, [])
        published[:] = [r for r in published if r.file_id != file_id]
        published.append(record)
        return hops

    def publish_index_only(self, user_id: str, file_id: str, now: float,
                           filename: str = "",
                           size_bytes: float = 0.0) -> int:
        """Publish holdership without an evaluation (user hasn't judged)."""
        record = IndexRecord(file_id=file_id, owner_id=user_id,
                             filename=filename, size_bytes=size_bytes)
        hops = self._store(record, user_id, now, MessageKind.PUBLISH)
        published = self._published.setdefault(user_id, [])
        published[:] = [r for r in published if r.file_id != file_id]
        published.append(record)
        return hops

    def republish_all(self, user_id: str, now: float) -> int:
        """Step 2: refresh all of the user's records (returns record count)."""
        records = self._published.get(user_id, [])
        for record in records:
            self._store(record, user_id, now, MessageKind.REPUBLISH)
        return len(records)

    @property
    def _injecting(self) -> bool:
        return self.faults is not None and self.faults.active

    def _lookup_from(self, user_id: str, key: int) -> LookupResult:
        start = (self.network.node(user_id)
                 if self.network.has_node(user_id) else None)
        if not self._injecting:
            return lookup(self.network, key, start=start,
                          recorder=self.recorder)
        return lookup(self.network, key, start=start, faults=self.faults,
                      retry_policy=self.retry_policy, tally=self.tally,
                      recorder=self.recorder)

    def _rpc(self, src_user: str, dst: DHTNode,
             span: NullSpan = NULL_SPAN) -> bool:
        """One fault-subjected overlay RPC with per-target retries.

        The simulated wire latency of every attempt is attributed to
        ``span`` (a no-op for the default null span).
        """
        if not dst.alive:
            self.tally.record(MessageKind.TIMEOUT, 0)
            span.count("timeouts")
            return False
        for attempt in range(self.retry_policy.max_attempts):
            outcome, wire_latency = self.faults.transmit(src_user,
                                                         dst.user_id)
            span.add_cost(wire_latency)
            if outcome is RPCOutcome.DELIVERED:
                return True
            if outcome is RPCOutcome.PARTITIONED:
                self.tally.record(MessageKind.DROP, 0)
                return False
            if outcome is RPCOutcome.CRASHED:
                if dst.alive:
                    self.network.fail(dst.user_id)
                self.tally.record(MessageKind.TIMEOUT, 0)
                span.count("timeouts")
                return False
            self.tally.record(MessageKind.DROP, 0)
            if attempt + 1 < self.retry_policy.max_attempts:
                self.tally.record(MessageKind.RETRY, 0)
                span.count("retries")
        return False

    def _store(self, record: IndexRecord, user_id: str, now: float,
               kind: MessageKind) -> int:
        with self.recorder.request_span("dht.publish",
                                        message=kind.value) as span:
            return self._store_impl(record, user_id, now, kind, span)

    def _store_impl(self, record: IndexRecord, user_id: str, now: float,
                    kind: MessageKind, span: NullSpan) -> int:
        key = hash_key(f"file:{record.file_id}")
        result = self._lookup_from(user_id, key)
        self.tally.record(MessageKind.LOOKUP, 0)
        self.tally.record(MessageKind.LOOKUP_HOP, 0)
        for _ in range(result.hops):
            self.tally.record(MessageKind.LOOKUP_HOP, 0)
        if self.recorder.enabled:
            self.recorder.event("dht_publish", t=now, user=user_id,
                                file=record.file_id, hops=result.hops,
                                message=kind.value,
                                ok=result.error is None)
            self.recorder.inc("dht.publishes", kind=kind.value)
        if result.error is not None:
            # Routing never reached the index peers; the record stays in
            # ``_published`` and the next republication/repair retries it.
            return result.hops
        for replica in self.network.replica_nodes(key, self.replication):
            if self._injecting and replica is not result.owner \
                    and not self._rpc(user_id, replica, span):
                continue  # write lost; repair/republication will catch up
            replica.storage.put(key, record.owner_id, record, now,
                                self.record_ttl)
            # The sender's causal context rides on the envelope, so the
            # tally charges the (opt-in) span overhead to the right kind.
            self.tally.record_envelope(MessageEnvelope(
                kind=kind, payload_bytes=record.wire_size(),
                span_id=span.span_id, trace_id=span.trace_id))
            span.count("writes")
        return result.hops

    # ------------------------------------------------------------------ #
    # Step 3: retrieval                                                  #
    # ------------------------------------------------------------------ #

    def retrieve(self, requester_id: str, file_id: str,
                 now: float) -> RetrievedEvaluations:
        """Fetch the owner list + verified evaluation array for a file.

        Fault-free: a single read from the key's owner, as in the seed.
        Under an active fault plan the read fans out over the whole replica
        set, merges the freshest record per owner, and reports a partial
        result (``complete=False``) when fewer than ``read_quorum``
        replicas answered — graceful degradation instead of an exception.
        """
        with self.recorder.request_span("dht.retrieve") as span:
            retrieved = self._retrieve_impl(requester_id, file_id, now, span)
            span.count("replicas", retrieved.replicas_contacted)
            span.annotate(complete=retrieved.complete)
        return retrieved

    def _retrieve_impl(self, requester_id: str, file_id: str, now: float,
                       span: NullSpan) -> RetrievedEvaluations:
        key = hash_key(f"file:{file_id}")
        result = self._lookup_from(requester_id, key)
        self.tally.record(MessageKind.LOOKUP, 0)
        self.tally.record(MessageKind.RETRIEVE, 0)
        self.retrievals_total += 1

        if result.error is not None:
            return self._record_retrieve(RetrievedEvaluations(
                file_id=file_id, owners=[], evaluations={}, rejected=0,
                lookup_hops=result.hops, complete=False,
                replicas_contacted=0, quorum=self.read_quorum),
                requester_id, now)

        if not self._injecting:
            stored_records = list(result.owner.storage.get(key, now))
            contacted, quorum, complete = 1, 1, True
        else:
            stored_records, contacted = self._quorum_read(
                requester_id, key, result, now, span)
            quorum = self.read_quorum
            complete = contacted >= quorum

        if complete:
            self.retrievals_complete += 1
        owners: List[str] = []
        evaluations: Dict[str, float] = {}
        rejected = 0
        for stored in stored_records:
            record = stored.value
            owners.append(record.owner_id)
            info = record.evaluation
            if info is None:
                continue
            if not self.authority.verify(info.owner_id, info.payload(),
                                         info.signature):
                rejected += 1
                continue
            evaluations[info.owner_id] = info.evaluation
        return self._record_retrieve(
            RetrievedEvaluations(file_id=file_id, owners=sorted(set(owners)),
                                 evaluations=evaluations,
                                 rejected=rejected,
                                 lookup_hops=result.hops,
                                 complete=complete,
                                 replicas_contacted=contacted,
                                 quorum=quorum),
            requester_id, now)

    def _record_retrieve(self, retrieved: RetrievedEvaluations,
                         requester_id: str,
                         now: float) -> RetrievedEvaluations:
        if self.recorder.enabled:
            self.recorder.event(
                "dht_retrieve", t=now, requester=requester_id,
                file=retrieved.file_id, hops=retrieved.lookup_hops,
                complete=retrieved.complete,
                replicas=retrieved.replicas_contacted,
                quorum=retrieved.quorum, rejected=retrieved.rejected)
            self.recorder.inc("dht.retrievals")
            if not retrieved.complete:
                self.recorder.inc("dht.retrievals_incomplete")
        return retrieved

    def _quorum_read(self, requester_id: str, key: int, result: LookupResult,
                     now: float, span: NullSpan = NULL_SPAN
                     ) -> Tuple[List[StoredRecord], int]:
        """Read the replica set under faults; freshest record per owner."""
        freshest: Dict[str, StoredRecord] = {}
        contacted = 0
        for replica in self.network.replica_nodes(key, self.replication):
            if replica is not result.owner \
                    and not self._rpc(requester_id, replica, span):
                continue
            contacted += 1
            for stored in replica.storage.get(key, now):
                best = freshest.get(stored.owner_id)
                if best is None or stored.stored_at > best.stored_at:
                    freshest[stored.owner_id] = stored
        records = sorted(freshest.values(), key=lambda r: r.owner_id)
        return records, contacted

    # ------------------------------------------------------------------ #
    # Step 4: user reputation                                            #
    # ------------------------------------------------------------------ #

    def set_responder(self, user_id: str, responder: ListResponder) -> None:
        """Install an attack-model responder for ``user_id``'s list."""
        self._responders[user_id] = responder

    def fetch_evaluation_list(self, requester_id: str,
                              target_id: str) -> Dict[str, float]:
        """Ask ``target_id`` for its evaluation list (step 4 first half)."""
        self.tally.record(MessageKind.EVALUATION_LIST, 0)
        responder = self._responders.get(target_id)
        if responder is not None:
            return dict(responder(requester_id))
        return dict(self._local_lists.get(target_id, {}))

    def local_list(self, user_id: str) -> Dict[str, float]:
        """The user's true local evaluation list (not an RPC)."""
        return dict(self._local_lists.get(user_id, {}))

    def compute_reputation_matrix(self, requester_id: str,
                                  targets: Iterable[str]) -> TrustMatrix:
        """Step 4 second half: fetch lists, build TM (file dimension), RM.

        Over the DHT only the file-based dimension is computable from
        remote evaluation lists; download-volume and user trust are local
        knowledge integrated by the full system (see ``repro.core``).
        """
        store = EvaluationStore(config=self.config)
        own = self._local_lists.get(requester_id, {})
        for file_id, evaluation in own.items():
            store.record_implicit(requester_id, file_id, evaluation)
        for target_id in targets:
            if target_id == requester_id:
                continue
            for file_id, evaluation in self.fetch_evaluation_list(
                    requester_id, target_id).items():
                store.record_implicit(target_id, file_id,
                                      min(max(evaluation, 0.0), 1.0))
        one_step = build_file_trust_matrix(store, self.config)
        return compute_reputation_matrix(one_step, config=self.config)

    # ------------------------------------------------------------------ #
    # Step 5: file reputation                                            #
    # ------------------------------------------------------------------ #

    def file_reputation(self, requester_id: str, file_id: str,
                        now: float) -> Tuple[Optional[float], RetrievedEvaluations]:
        """Eq. 9 over the retrieved evaluation array."""
        retrieved = self.retrieve(requester_id, file_id, now)
        reputation = self.compute_reputation_matrix(
            requester_id, retrieved.evaluations)
        score = file_reputation(reputation, requester_id,
                                retrieved.evaluations)
        return score, retrieved

    # ------------------------------------------------------------------ #
    # Step 6: service differentiation                                    #
    # ------------------------------------------------------------------ #

    def service_level(self, uploader_id: str,
                      requester_id: str) -> ServiceLevel:
        """What service should ``uploader_id`` grant ``requester_id``?"""
        reputation = self.compute_reputation_matrix(
            uploader_id, [requester_id])
        row = reputation.row(uploader_id)
        reference = max(row.values()) if row else 1.0
        differentiator = ServiceDifferentiator(
            self.config, reference_reputation=max(reference, 1e-12))
        return differentiator.service_level(
            requester_id, reputation.get(uploader_id, requester_id))

    # ------------------------------------------------------------------ #
    # Churn helpers                                                      #
    # ------------------------------------------------------------------ #

    def expire_all(self, now: float) -> int:
        """Expire stale records on every node (maintenance sweep)."""
        return sum(node.storage.expire_all(now)
                   for node in self.network.nodes())

    def repair_replicas(self, now: float) -> int:
        """Re-replicate under-replicated records after node failures.

        Every live record is pushed back out to the key's current replica
        set (preserving ``stored_at``, so repair never outlives the
        publisher's TTL).  Returns the number of replica copies created;
        each one is tallied as a :attr:`MessageKind.REPAIR` message.
        """
        with self.recorder.request_span("dht.repair") as span:
            repaired = self.network.repair_replicas(self.replication, now)
            for _ in range(repaired):
                self.tally.record(MessageKind.REPAIR, 0)
            span.count("repaired", repaired)
        if self.recorder.enabled:
            self.recorder.event("dht_repair", t=now, repaired=repaired)
            self.recorder.inc("dht.repairs", repaired)
        return repaired

    @property
    def availability(self) -> float:
        """Fraction of retrievals that met their read quorum."""
        if self.retrievals_total == 0:
            return 1.0
        return self.retrievals_complete / self.retrievals_total

"""Streaming anomaly detectors over the observability event stream.

Each detector is a small state machine fed one event at a time (live via a
recorder subscription, or offline from a saved ``events.jsonl``) and emits
:class:`~repro.obs.alerts.Alert` objects.  All state derives exclusively
from event fields keyed by *simulation* time, so an offline replay of a
trace reproduces the live alert stream byte for byte.

The catalogue maps the attacks and failure modes the paper (and the
random-walk / Absolute-Trust line of work) says are visible in the trust
graph and interaction stream:

* :class:`ConvergenceStallDetector` — ``RM = TM^n`` power iterations whose
  L∞ residual stops shrinking (Eq. 8 not converging);
* :class:`FakeOutbreakDetector` — windowed fake-download fraction spiking
  over its trailing baseline (Eq. 9 filtering losing ground);
* :class:`CollusionRingDetector` — mutual-trust cliques in the one-step
  matrix whose internal trust mass dwarfs their trust of outsiders;
* :class:`WhitewashDetector` — identity shedding, rejoin abuse, and
  whitewashed identities whose reputation resets *above* the newcomer
  prior (the attack paid off);
* :class:`StarvationDetector` — honest peers pinned in the lowest service
  class across consecutive refreshes (incentive mechanism misfiring).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from .alerts import Alert, Severity

__all__ = ["Detector", "ConvergenceStallDetector", "FakeOutbreakDetector",
           "CollusionRingDetector", "WhitewashDetector",
           "StarvationDetector", "default_detectors"]


class Detector:
    """Base class: feed events with :meth:`observe`, flush with :meth:`finish`."""

    #: Name stamped on every alert this detector raises.
    name = "detector"

    def observe(self, event: Mapping) -> List[Alert]:
        """Consume one event; return any alerts it triggers."""
        return []

    def finish(self, t: float) -> List[Alert]:
        """End of stream at simulation time ``t``; flush pending state."""
        return []


class ConvergenceStallDetector(Detector):
    """Eq. 8 power iterations whose residual is not shrinking.

    ``multitrust_iteration`` events arrive as runs of ``iteration=2..n``
    per computation; a new run starts whenever the iteration number does
    not increase.  A computation stalls when its final L∞ residual is
    still above ``residual_floor`` *and* the last step shrank the residual
    by less than ``min_shrink`` (multiplicatively).
    """

    name = "convergence_stall"

    def __init__(self, residual_floor: float = 0.01,
                 min_shrink: float = 0.95):
        self.residual_floor = residual_floor
        self.min_shrink = min_shrink
        self._residuals: List[float] = []
        self._last_iteration = 0
        self._last_t = 0.0

    def observe(self, event: Mapping) -> List[Alert]:
        if event.get("event") != "multitrust_iteration":
            return []
        iteration = int(event.get("iteration", 0))
        residual = event.get("residual")
        if not isinstance(residual, (int, float)):
            return []
        alerts: List[Alert] = []
        if iteration <= self._last_iteration:
            alerts.extend(self._close(self._last_t))
        self._residuals.append(float(residual))
        self._last_iteration = iteration
        self._last_t = float(event.get("t", 0.0))
        return alerts

    def finish(self, t: float) -> List[Alert]:
        return self._close(t)

    def _close(self, t: float) -> List[Alert]:
        residuals, self._residuals = self._residuals, []
        self._last_iteration = 0
        if len(residuals) < 2:
            return []
        final, previous = residuals[-1], residuals[-2]
        if final <= self.residual_floor:
            return []
        if previous > 0 and final < self.min_shrink * previous:
            return []
        return [Alert(
            t=t, detector=self.name, severity=Severity.WARNING,
            message=(f"multitrust residual stalled at {final:.6g} after "
                     f"{len(residuals) + 1} steps (previous "
                     f"{previous:.6g}, floor {self.residual_floor:g})"))]


class FakeOutbreakDetector(Detector):
    """Windowed fake-download fraction spiking over its trailing baseline.

    Downloads are bucketed into fixed simulation-time windows.  A closed
    window alerts when its fake fraction exceeds both an absolute floor and
    the mean of previously closed windows by ``spike_delta`` — or, with no
    history yet, when it exceeds ``critical_fraction`` outright.
    """

    name = "fake_outbreak"

    def __init__(self, window_seconds: float = 6 * 3600.0,
                 min_downloads: int = 5, spike_delta: float = 0.2,
                 absolute_floor: float = 0.3,
                 critical_fraction: float = 0.6):
        self.window_seconds = window_seconds
        self.min_downloads = min_downloads
        self.spike_delta = spike_delta
        self.absolute_floor = absolute_floor
        self.critical_fraction = critical_fraction
        self._window_start = 0.0
        self._downloads = 0
        self._fakes = 0
        self._history: List[float] = []

    def observe(self, event: Mapping) -> List[Alert]:
        if event.get("event") != "download":
            return []
        t = float(event.get("t", 0.0))
        alerts: List[Alert] = []
        while t >= self._window_start + self.window_seconds:
            alerts.extend(self._close_window())
            self._window_start += self.window_seconds
        self._downloads += 1
        if event.get("fake"):
            self._fakes += 1
        return alerts

    def finish(self, t: float) -> List[Alert]:
        return self._close_window()

    def _close_window(self) -> List[Alert]:
        downloads, fakes = self._downloads, self._fakes
        self._downloads = self._fakes = 0
        if downloads < self.min_downloads:
            return []
        fraction = fakes / downloads
        baseline = (sum(self._history) / len(self._history)
                    if self._history else None)
        self._history.append(fraction)
        window_end = self._window_start + self.window_seconds
        if fraction >= self.critical_fraction:
            severity = Severity.CRITICAL
        elif (baseline is not None and fraction >= self.absolute_floor
                and fraction >= baseline + self.spike_delta):
            severity = Severity.WARNING
        else:
            return []
        reference = (f"baseline {baseline:.3f}" if baseline is not None
                     else "no baseline yet")
        return [Alert(
            t=window_end, detector=self.name, severity=severity,
            message=(f"fake fraction {fraction:.3f} over {downloads} "
                     f"downloads in window ending at {window_end:g}s "
                     f"({reference})"))]


class CollusionRingDetector(Detector):
    """Dense mutual-trust cliques that outsiders do not validate.

    Consumes the ``trust_edge`` events the simulator emits at each
    mechanism refresh (the strongest out-edges of ``TM``).  Edges sharing a
    timestamp form one snapshot; when the snapshot closes, peers connected
    by *mutual* edges are grouped into components, and a component is
    flagged as a collusion ring when all three signatures hold:

    * **dense**: at least ``min_density`` of its member pairs are mutual.
      Honest peers also trust each other, but with only the strongest
      ``k`` edges sampled per peer a large organic cluster cannot be a
      near-clique, while a small colluding cell pairwise-rating itself is;
    * **inward-facing**: internal mass exceeds what members extend to
      outsiders (they trust each other more than everyone else combined);
    * **externally unvalidated**: internal mass exceeds ``external_ratio``
      times the trust *outsiders place in members*.  This is the decisive
      signal — honest cliques are trusted by the rest of the population,
      colluders are trusted only by each other.

    Each distinct member set alerts once.
    """

    name = "collusion_ring"

    def __init__(self, min_size: int = 3, min_density: float = 0.8,
                 external_ratio: float = 2.0, min_edge: float = 1e-6):
        self.min_size = min_size
        self.min_density = min_density
        self.external_ratio = external_ratio
        self.min_edge = min_edge
        self._edges: Dict[Tuple[str, str], float] = {}
        self._snapshot_t: Optional[float] = None
        self._reported: Set[FrozenSet[str]] = set()

    def observe(self, event: Mapping) -> List[Alert]:
        if event.get("event") != "trust_edge":
            return []
        t = float(event.get("t", 0.0))
        alerts: List[Alert] = []
        if self._snapshot_t is not None and t != self._snapshot_t:
            alerts.extend(self._close_snapshot(self._snapshot_t))
        self._snapshot_t = t
        src, dst = str(event.get("src")), str(event.get("dst"))
        value = event.get("value")
        if isinstance(value, (int, float)) and value >= self.min_edge:
            self._edges[(src, dst)] = float(value)
        return alerts

    def finish(self, t: float) -> List[Alert]:
        if self._snapshot_t is None:
            return []
        return self._close_snapshot(self._snapshot_t)

    def _close_snapshot(self, t: float) -> List[Alert]:
        edges, self._edges = self._edges, {}
        self._snapshot_t = None
        mutual: Dict[str, Set[str]] = {}
        mutual_pairs: Set[Tuple[str, str]] = set()
        for (src, dst), _value in edges.items():
            if src < dst and (dst, src) in edges:
                mutual.setdefault(src, set()).add(dst)
                mutual.setdefault(dst, set()).add(src)
                mutual_pairs.add((src, dst))
        alerts: List[Alert] = []
        for component in _components(mutual):
            if len(component) < self.min_size:
                continue
            members = frozenset(component)
            if members in self._reported:
                continue
            size = len(members)
            pairs = sum(1 for pair in mutual_pairs
                        if pair[0] in members and pair[1] in members)
            density = pairs / (size * (size - 1) / 2)
            if density < self.min_density:
                continue
            in_mass = out_mass = inbound_mass = 0.0
            for (src, dst), value in edges.items():
                if src in members and dst in members:
                    in_mass += value
                elif src in members:
                    out_mass += value
                elif dst in members:
                    inbound_mass += value
            if in_mass <= out_mass:
                continue
            if in_mass <= self.external_ratio * inbound_mass:
                continue
            self._reported.add(members)
            listed = ", ".join(sorted(members))
            alerts.append(Alert(
                t=t, detector=self.name, severity=Severity.CRITICAL,
                message=(f"collusion ring of {size} peers [{listed}]: "
                         f"density {density:.2f}, internal mass "
                         f"{in_mass:.4f} vs outbound {out_mass:.4f}, "
                         f"external validation {inbound_mass:.4f}")))
        return alerts


def _components(adjacency: Mapping[str, Set[str]]) -> List[List[str]]:
    """Connected components of an undirected graph, deterministically."""
    seen: Set[str] = set()
    components: List[List[str]] = []
    for start in sorted(adjacency):
        if start in seen:
            continue
        stack, component = [start], []
        seen.add(start)
        while stack:
            node = stack.pop()
            component.append(node)
            for neighbor in sorted(adjacency.get(node, ())):
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        components.append(sorted(component))
    return components


class WhitewashDetector(Detector):
    """Identity shedding and crash/rejoin abuse.

    Three signals:

    * every ``whitewash`` event (a peer retired one identity for a fresh
      one) raises an info alert — the act itself is worth flagging;
    * a whitewashed identity whose later ``reputation_snapshot`` shows a
      normalised reputation at or above the newcomer prior means the reset
      *gained* reputation — warning;
    * chaos-harness peers cycling through ``churn_rejoin`` (or DHT
      ``dht_node_join`` with ``rejoined=true``) more than
      ``rejoin_threshold`` times — warning for rejoin abuse.
    """

    name = "whitewash"

    def __init__(self, newcomer_prior: float = 0.5,
                 rejoin_threshold: int = 3):
        self.newcomer_prior = newcomer_prior
        self.rejoin_threshold = rejoin_threshold
        self._fresh_identities: Set[str] = set()
        self._flagged: Set[str] = set()
        self._rejoins: Dict[str, int] = {}
        self._rejoin_flagged: Set[str] = set()

    def observe(self, event: Mapping) -> List[Alert]:
        kind = event.get("event")
        t = float(event.get("t", 0.0))
        if kind == "whitewash":
            retired = str(event.get("retired"))
            fresh = str(event.get("fresh"))
            self._fresh_identities.add(fresh)
            return [Alert(
                t=t, detector=self.name, severity=Severity.INFO,
                message=(f"identity shed: {retired} rejoined as {fresh}"))]
        if kind == "reputation_snapshot":
            peer = str(event.get("peer"))
            norm = event.get("norm")
            if (peer in self._fresh_identities
                    and peer not in self._flagged
                    and isinstance(norm, (int, float))
                    and norm >= self.newcomer_prior):
                self._flagged.add(peer)
                return [Alert(
                    t=t, detector=self.name, severity=Severity.WARNING,
                    message=(f"whitewashed identity {peer} reset above the "
                             f"newcomer prior (norm {norm:.3f} >= "
                             f"{self.newcomer_prior:g})"))]
            return []
        if kind == "churn_rejoin" or (kind == "dht_node_join"
                                      and event.get("rejoined")):
            # churn events key the identity as "peer", DHT joins as "user".
            peer = str(event.get("peer", event.get("user")))
            count = self._rejoins.get(peer, 0) + 1
            self._rejoins[peer] = count
            if (count >= self.rejoin_threshold
                    and peer not in self._rejoin_flagged):
                self._rejoin_flagged.add(peer)
                return [Alert(
                    t=t, detector=self.name, severity=Severity.WARNING,
                    message=(f"rejoin abuse: {peer} crashed and rejoined "
                             f"{count} times"))]
        return []


class StarvationDetector(Detector):
    """Honest peers pinned in the lowest service class.

    Consumes ``reputation_snapshot`` events.  A peer whose behaviour class
    is ``honest`` and whose ``service_class`` stays 0 for
    ``consecutive_refreshes`` snapshots — while differentiation is clearly
    active (some peer reached class >= 2 in the same snapshot) — is
    starving despite honest behaviour.  One alert per peer.
    """

    name = "incentive_starvation"

    def __init__(self, consecutive_refreshes: int = 3):
        self.consecutive_refreshes = consecutive_refreshes
        self._streaks: Dict[str, int] = {}
        self._snapshot_t: Optional[float] = None
        self._pending: List[Tuple[str, float]] = []
        self._snapshot_max_class = 0
        self._flagged: Set[str] = set()

    def observe(self, event: Mapping) -> List[Alert]:
        if event.get("event") != "reputation_snapshot":
            return []
        t = float(event.get("t", 0.0))
        alerts: List[Alert] = []
        if self._snapshot_t is not None and t != self._snapshot_t:
            alerts.extend(self._close_snapshot())
        self._snapshot_t = t
        service_class = int(event.get("service_class", 0))
        self._snapshot_max_class = max(self._snapshot_max_class,
                                       service_class)
        if str(event.get("cls")) == "honest" and event.get("online", True):
            peer = str(event.get("peer"))
            if service_class == 0:
                self._pending.append((peer, t))
            else:
                self._streaks.pop(peer, None)
        return alerts

    def finish(self, t: float) -> List[Alert]:
        return self._close_snapshot()

    def _close_snapshot(self) -> List[Alert]:
        pending, self._pending = self._pending, []
        max_class, self._snapshot_max_class = self._snapshot_max_class, 0
        self._snapshot_t = None
        if max_class < 2:
            # No meaningful differentiation this refresh; don't count it
            # against anyone, but don't reset streaks either.
            return []
        alerts: List[Alert] = []
        for peer, t in pending:
            streak = self._streaks.get(peer, 0) + 1
            self._streaks[peer] = streak
            if streak == self.consecutive_refreshes \
                    and peer not in self._flagged:
                self._flagged.add(peer)
                alerts.append(Alert(
                    t=t, detector=self.name, severity=Severity.WARNING,
                    message=(f"honest peer {peer} stuck in the lowest "
                             f"service class for {streak} consecutive "
                             f"refreshes")))
        return alerts


def default_detectors() -> List[Detector]:
    """The standard detector set ``Monitor.default()`` ships with."""
    return [
        ConvergenceStallDetector(),
        FakeOutbreakDetector(),
        CollusionRingDetector(),
        WhitewashDetector(),
        StarvationDetector(),
    ]

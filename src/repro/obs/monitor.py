"""The streaming monitor: detectors + rules over one event stream.

:class:`Monitor` owns a detector set (:mod:`~repro.obs.detectors`) and a
rules engine (:mod:`~repro.obs.alerts`) and feeds them one event at a time.
It runs in two modes that must — and do — agree exactly:

* **live**: :meth:`attach` subscribes to a :class:`~repro.obs.recorder
  .Recorder`; every recorded event is fed as it happens, and each alert is
  emitted straight back through the recorder as an ``alert`` event, so
  alerts interleave with their causes in the same ``events.jsonl``;
* **offline**: :func:`monitor_events` replays a saved trace through an
  identically configured monitor.  ``alert`` events already present in the
  trace are *not* fed to detectors (they are collected separately), so
  replaying a live-monitored trace reproduces the live alert stream
  verbatim — the determinism contract ``repro monitor`` verifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Mapping, Optional, Sequence

from .alerts import Alert, RulesEngine, Severity, default_rules
from .detectors import Detector, default_detectors
from .recorder import NullRecorder

__all__ = ["Monitor", "MonitorResult", "monitor_events"]


@dataclass
class MonitorResult:
    """Outcome of an offline monitoring pass over one trace."""

    #: Alerts produced by this pass's detectors and rules.
    alerts: List[Alert] = field(default_factory=list)
    #: ``alert`` events already embedded in the trace (live-mode output).
    recorded_alerts: List[Alert] = field(default_factory=list)
    events_seen: int = 0

    @property
    def reproduces_recorded(self) -> bool:
        """Did this pass regenerate exactly the alerts the trace carries?

        Vacuously true for traces that were never monitored live.
        """
        if not self.recorded_alerts:
            return True
        return self.alerts == self.recorded_alerts

    def counts_by_severity(self) -> dict:
        counts: dict = {}
        for alert in self.alerts:
            counts[alert.severity] = counts.get(alert.severity, 0) + 1
        return dict(sorted(
            counts.items(), key=lambda item: Severity.rank(item[0])))


class Monitor:
    """Feeds detectors and rules; optionally re-emits alerts live."""

    def __init__(self, detectors: Optional[Sequence[Detector]] = None,
                 rules: Optional[Sequence[object]] = None):
        self.detectors = (list(detectors) if detectors is not None
                          else default_detectors())
        self.engine = RulesEngine(rules if rules is not None
                                  else default_rules())
        self.alerts: List[Alert] = []
        self._recorder: Optional[NullRecorder] = None
        self._last_t = 0.0
        self._finished = False

    @classmethod
    def default(cls) -> "Monitor":
        """The standard configuration used by the CLI, live and offline."""
        return cls()

    # ------------------------------------------------------------------ #
    # Live mode                                                          #
    # ------------------------------------------------------------------ #

    def attach(self, recorder: NullRecorder) -> "Monitor":
        """Subscribe to a live recorder; alerts land back in its trace."""
        self._recorder = recorder
        recorder.subscribe(self.feed)
        return self

    # ------------------------------------------------------------------ #
    # Feeding                                                            #
    # ------------------------------------------------------------------ #

    def feed(self, event: Mapping) -> List[Alert]:
        """Consume one event; returns (and emits) any alerts it raised."""
        if event.get("event") == "alert":
            return []
        t = event.get("t")
        if isinstance(t, (int, float)):
            self._last_t = max(self._last_t, float(t))
        raised: List[Alert] = []
        for detector in self.detectors:
            raised.extend(detector.observe(event))
        raised.extend(self.engine.observe(event))
        self._register(raised)
        return raised

    def finish(self) -> List[Alert]:
        """End of stream: flush every detector's pending state once."""
        if self._finished:
            return []
        self._finished = True
        raised: List[Alert] = []
        for detector in self.detectors:
            raised.extend(detector.finish(self._last_t))
        self._register(raised)
        return raised

    def _register(self, raised: List[Alert]) -> None:
        self.alerts.extend(raised)
        if self._recorder is not None and self._recorder.enabled:
            for alert in raised:
                self._recorder.event("alert", t=alert.t,
                                     **alert.to_fields())


def monitor_events(events: Iterable[Mapping],
                   monitor: Optional[Monitor] = None) -> MonitorResult:
    """Run an offline monitoring pass over a saved trace."""
    if monitor is None:
        monitor = Monitor.default()
    result = MonitorResult()
    for event in events:
        result.events_seen += 1
        if event.get("event") == "alert":
            result.recorded_alerts.append(Alert.from_event(event))
            continue
        result.alerts.extend(monitor.feed(event))
    result.alerts.extend(monitor.finish())
    return result

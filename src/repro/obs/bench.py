"""Perf snapshots: the ``BENCH_obs.json`` trajectory point.

A snapshot runs a fixed, seeded workload twice — once with the default
:data:`~repro.obs.recorder.NULL_RECORDER`, once fully instrumented — plus
one chaos cell, and records wall-clock timings alongside the deterministic
outcome metrics.  Each snapshot is stamped with the seed, a hash of the
exact configuration, and the git sha, so future PRs can regress against a
trajectory instead of a vibe.

Wall-clock numbers live *only* here; trace/metrics artefacts stay
deterministic (see :mod:`repro.obs.profiling`).

Simulator imports are deferred into the functions: ``repro.simulator``
modules import :mod:`repro.obs.recorder`, and a module-level import here
would complete that cycle.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from typing import Dict, Optional

from .recorder import NULL_RECORDER, Recorder

__all__ = ["config_hash", "git_sha", "run_stamp", "collect_snapshot",
           "write_snapshot", "append_history", "overhead_ratio",
           "span_overhead_ratio", "span_sampled_overhead_ratio"]

#: Bump when the snapshot layout changes incompatibly.
SNAPSHOT_SCHEMA = 1


def config_hash(config: Dict[str, object]) -> str:
    """Short stable hash of a configuration mapping."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def git_sha(cwd: Optional[str] = None) -> str:
    """The current commit sha, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"], cwd=cwd,
                             capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def run_stamp(seed: int, config: Dict[str, object]) -> Dict[str, object]:
    """The provenance stamp every snapshot carries."""
    return {
        "schema": SNAPSHOT_SCHEMA,
        "seed": seed,
        "config_hash": config_hash(config),
        "git_sha": git_sha(),
    }


def collect_snapshot(seed: int = 42, repeats: int = 3) -> Dict[str, object]:
    """Run the standard bench workload and return the stamped snapshot.

    Every timed mode runs ``repeats`` times and keeps the *fastest* run —
    the workload is deterministic, so the minimum is the measurement least
    contaminated by scheduler noise, which matters because the overhead
    ratios are CI gates.
    """
    from ..baselines import MultiDimensionalMechanism
    from ..core import ReputationConfig
    from ..simulator import (ChaosConfig, FileSharingSimulation,
                             ScenarioSpec, SimulationConfig, run_chaos_point)

    sim_config = dict(honest=14, free_riders=3, polluters=3, catalog=60,
                      fake_ratio=0.25, days=0.75, request_rate=0.02)
    chaos_config = dict(peers=16, files=24, rounds=12, loss_rate=0.1,
                        churn_rate=0.3, replication=3)

    def build_simulation(recorder):
        duration = sim_config["days"] * 24 * 3600.0
        config = SimulationConfig(
            scenario=ScenarioSpec(honest=sim_config["honest"],
                                  free_riders=sim_config["free_riders"],
                                  polluters=sim_config["polluters"]),
            duration_seconds=duration,
            num_files=sim_config["catalog"],
            fake_ratio=sim_config["fake_ratio"],
            request_rate=sim_config["request_rate"],
            seed=seed)
        mechanism = MultiDimensionalMechanism(ReputationConfig(
            retention_saturation_seconds=duration / 3))
        return FileSharingSimulation(config, mechanism, recorder=recorder)

    def best_of(run):
        """Fastest of ``repeats`` runs plus the last run's result."""
        best = float("inf")
        result = None
        for _ in range(max(1, repeats)):
            started = time.perf_counter()
            result = run()
            elapsed = time.perf_counter() - started
            if elapsed < best:
                best = elapsed
        return best, result

    baseline_seconds, baseline_metrics = best_of(
        lambda: build_simulation(NULL_RECORDER).run())

    def instrumented_run(**recorder_kwargs):
        recorder = Recorder(**recorder_kwargs)
        return build_simulation(recorder).run(), recorder

    instrumented_seconds, (instrumented_metrics, recorder) = best_of(
        instrumented_run)

    # Span tracing on top of full instrumentation: every request traced,
    # then 1-in-8 head sampling — the two operating points the CI gates.
    span_seconds, (span_metrics, span_recorder) = best_of(
        lambda: instrumented_run(span_seed=seed, span_sample=1))
    sampled_seconds, (sampled_metrics, sampled_recorder) = best_of(
        lambda: instrumented_run(span_seed=seed, span_sample=8))

    def chaos_run():
        recorder = Recorder()
        return run_chaos_point(
            ChaosConfig(seed=seed, **chaos_config), recorder=recorder), recorder

    chaos_seconds, (chaos_result, chaos_recorder) = best_of(chaos_run)

    return {
        **run_stamp(seed, {"simulate": sim_config, "chaos": chaos_config}),
        "timings": {
            "simulate_null_recorder_seconds": baseline_seconds,
            "simulate_instrumented_seconds": instrumented_seconds,
            "instrumentation_overhead_ratio": (
                instrumented_seconds / baseline_seconds
                if baseline_seconds > 0 else 0.0),
            "simulate_spans_seconds": span_seconds,
            "simulate_spans_sampled_seconds": sampled_seconds,
            "span_overhead_ratio": (
                span_seconds / instrumented_seconds
                if instrumented_seconds > 0 else 0.0),
            "span_sampled_overhead_ratio": (
                sampled_seconds / instrumented_seconds
                if instrumented_seconds > 0 else 0.0),
            "chaos_cell_seconds": chaos_seconds,
        },
        "profiler": {
            "simulate": recorder.profiler.snapshot(),
            "chaos": chaos_recorder.profiler.snapshot(),
        },
        "simulate": {
            "total_requests": instrumented_metrics.total_requests,
            "overall_fake_fraction":
                instrumented_metrics.overall_fake_fraction,
            "outstanding_fake_copies":
                instrumented_metrics.outstanding_fake_copies,
            "events_recorded": len(recorder.trace),
            "instruments": len(recorder.registry),
            "matches_null_recorder_run": (
                instrumented_metrics.total_requests
                == baseline_metrics.total_requests
                and instrumented_metrics.overall_fake_fraction
                == baseline_metrics.overall_fake_fraction),
        },
        "spans": {
            "span_events_full": sum(
                1 for event in span_recorder.trace
                if event.get("event") == "span"),
            "span_events_sampled": sum(
                1 for event in sampled_recorder.trace
                if event.get("event") == "span"),
            "matches_instrumented_run": (
                span_metrics.total_requests
                == instrumented_metrics.total_requests
                and sampled_metrics.total_requests
                == instrumented_metrics.total_requests
                and span_metrics.overall_fake_fraction
                == instrumented_metrics.overall_fake_fraction
                and sampled_metrics.overall_fake_fraction
                == instrumented_metrics.overall_fake_fraction),
        },
        "chaos": {
            "availability": chaos_result.availability,
            "mean_hops": chaos_result.mean_hops,
            "retrievals": chaos_result.retrievals,
            "retrievals_incomplete": chaos_result.retrievals_incomplete,
            "drops": chaos_result.drops,
            "retries": chaos_result.retries,
            "repairs": chaos_result.repairs,
            "events_recorded": len(chaos_recorder.trace),
        },
    }


def write_snapshot(path: str, snapshot: Dict[str, object]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")


def append_history(path: str, snapshot: Dict[str, object]) -> None:
    """Append one compact snapshot line to a JSONL trajectory file.

    CI appends every run to ``BENCH_history.jsonl`` so the overhead ratio
    can be regressed against a sequence of commits, not a single point.
    """
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(snapshot, sort_keys=True,
                                separators=(",", ":")) + "\n")


def overhead_ratio(snapshot: Dict[str, object]) -> float:
    """The instrumented/bare wall-clock ratio a CI gate checks."""
    return _timing_ratio(snapshot, "instrumentation_overhead_ratio")


def span_overhead_ratio(snapshot: Dict[str, object]) -> float:
    """Full span tracing over plain instrumentation (wall clock)."""
    return _timing_ratio(snapshot, "span_overhead_ratio")


def span_sampled_overhead_ratio(snapshot: Dict[str, object]) -> float:
    """1-in-8 head-sampled span tracing over plain instrumentation."""
    return _timing_ratio(snapshot, "span_sampled_overhead_ratio")


def _timing_ratio(snapshot: Dict[str, object], key: str) -> float:
    timings = snapshot.get("timings", {})
    if not isinstance(timings, dict):
        return 0.0
    return float(timings.get(key, 0.0))

"""Profiling hooks: context-manager phase timers and per-phase counters.

Wall-clock timings are *profiling* data, not trace data: they feed perf
snapshots (``BENCH_obs.json``, ``--profile-out`` captures) and never the
deterministic ``events.jsonl`` / ``metrics.json`` artefacts, which must be
identical across runs at the same seed.  Keeping the two worlds in
separate objects makes the rule structural instead of a convention someone
has to remember.

Each phase keeps its per-call durations in a bounded
:class:`~repro.obs.stats.QuantileSketch`, so snapshots report
p50/p95/p99 latency per phase without the profiler's memory growing with
call count.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional

from .stats import QuantileSketch

__all__ = ["PhaseStats", "Profiler"]


@dataclass
class PhaseStats:
    """Accumulated wall-clock cost of one named phase."""

    calls: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)
    durations: QuantileSketch = field(default_factory=QuantileSketch)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0


class Profiler:
    """Names phases, times them, and counts what happened inside them."""

    def __init__(self) -> None:
        self._phases: Dict[str, PhaseStats] = {}

    def phase(self, name: str) -> PhaseStats:
        return self._phases.setdefault(name, PhaseStats())

    @contextmanager
    def timer(self, name: str) -> Iterator[PhaseStats]:
        """Time a ``with`` block into the named phase."""
        stats = self.phase(name)
        started = time.perf_counter()
        try:
            yield stats
        finally:
            elapsed = time.perf_counter() - started
            stats.calls += 1
            stats.total_seconds += elapsed
            stats.max_seconds = max(stats.max_seconds, elapsed)
            stats.durations.observe(elapsed)

    def count(self, name: str, counter: str, amount: int = 1) -> None:
        """Bump a per-phase counter (e.g. events processed per run)."""
        counters = self.phase(name).counters
        counters[counter] = counters.get(counter, 0) + amount

    def record(self, name: str, elapsed: float,
               counters: Optional[Mapping[str, int]] = None) -> None:
        """Fold one already-timed call into the named phase.

        Spans time themselves (their exit knows the elapsed wall time and
        the counters accumulated inside), so they report here instead of
        going through :meth:`timer`.
        """
        stats = self.phase(name)
        stats.calls += 1
        stats.total_seconds += elapsed
        stats.max_seconds = max(stats.max_seconds, elapsed)
        stats.durations.observe(elapsed)
        if counters:
            existing = stats.counters
            for counter, amount in counters.items():
                existing[counter] = existing.get(counter, 0) + amount

    def __len__(self) -> int:
        return len(self._phases)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All phases as a sorted, JSON-serialisable dict.

        Includes per-phase duration percentiles from the sketch; these are
        wall-clock figures and belong only in profiling artefacts.
        """
        return {
            name: {
                "calls": stats.calls,
                "total_seconds": stats.total_seconds,
                "mean_seconds": stats.mean_seconds,
                "max_seconds": stats.max_seconds,
                "p50_seconds": stats.durations.percentile(50.0),
                "p95_seconds": stats.durations.percentile(95.0),
                "p99_seconds": stats.durations.percentile(99.0),
                "counters": dict(sorted(stats.counters.items())),
            }
            for name, stats in sorted(self._phases.items())
        }

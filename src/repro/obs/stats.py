"""Shared descriptive statistics for metrics and reports.

One home for the ``mean``/percentile arithmetic that used to be duplicated
as private ``_mean`` helpers across the simulator and analysis modules.
Everything here is dependency-free, deterministic, and defined for empty
input (returning 0.0), because metric accumulators call these on whatever
happened to be recorded — possibly nothing.

Percentiles use linear interpolation between closest ranks (the same
convention as ``numpy.percentile``'s default), so p50 of ``[1, 2, 3, 4]``
is 2.5, not 2 or 3.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

__all__ = ["mean", "percentile", "percentiles", "summarize",
           "DEFAULT_QUANTILES"]

#: The quantiles every histogram summary reports: median plus the two tail
#: marks the paper's wait-time / hop-count claims care about.
DEFAULT_QUANTILES: Sequence[float] = (50.0, 95.0, 99.0)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for empty input."""
    data = list(values)
    return sum(data) / len(data) if data else 0.0


def percentile(values: Iterable[float], q: float) -> float:
    """The ``q``-th percentile (0..100), linear interpolation between ranks.

    Returns 0.0 for empty input so accumulators can report unconditionally.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    data = sorted(values)
    if not data:
        return 0.0
    if len(data) == 1:
        return float(data[0])
    rank = (len(data) - 1) * (q / 100.0)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return float(data[lower])
    weight = rank - lower
    return data[lower] * (1.0 - weight) + data[upper] * weight


def percentiles(values: Iterable[float],
                qs: Sequence[float] = DEFAULT_QUANTILES) -> Dict[str, float]:
    """``{"p50": ..., "p95": ..., ...}`` for the requested quantiles."""
    data = sorted(values)
    return {f"p{q:g}": percentile(data, q) for q in qs}


def summarize(values: Iterable[float]) -> Dict[str, float]:
    """Full summary: count, mean, min, max plus the default percentiles."""
    data: List[float] = sorted(values)
    if not data:
        return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                **{f"p{q:g}": 0.0 for q in DEFAULT_QUANTILES}}
    return {
        "count": len(data),
        "mean": mean(data),
        "min": float(data[0]),
        "max": float(data[-1]),
        **percentiles(data),
    }

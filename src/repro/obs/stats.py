"""Shared descriptive statistics for metrics and reports.

One home for the ``mean``/percentile arithmetic that used to be duplicated
as private ``_mean`` helpers across the simulator and analysis modules.
Everything here is dependency-free, deterministic, and defined for empty
input (returning 0.0), because metric accumulators call these on whatever
happened to be recorded — possibly nothing.

Percentiles use linear interpolation between closest ranks (the same
convention as ``numpy.percentile``'s default), so p50 of ``[1, 2, 3, 4]``
is 2.5, not 2 or 3.

For million-event traces the batch helpers don't scale (they hold every
observation), so this module also provides the streaming accumulators the
single-pass trace consumers are built on: :class:`RunningStats` (count /
mean / min / max in O(1) memory) and :class:`QuantileSketch` (exact
quantiles up to a fixed budget, then a deterministic bounded-memory
compression).  Both are order-deterministic: the same observation stream
always produces the same summary, which keeps ``repro report`` output
reproducible across runs at the same seed.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["mean", "percentile", "percentiles", "summarize",
           "DEFAULT_QUANTILES", "RunningStats", "QuantileSketch"]

#: The quantiles every histogram summary reports: median plus the two tail
#: marks the paper's wait-time / hop-count claims care about.
DEFAULT_QUANTILES: Sequence[float] = (50.0, 95.0, 99.0)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for empty input."""
    data = list(values)
    return sum(data) / len(data) if data else 0.0


def percentile(values: Iterable[float], q: float) -> float:
    """The ``q``-th percentile (0..100), linear interpolation between ranks.

    Returns 0.0 for empty input so accumulators can report unconditionally.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    data = sorted(values)
    if not data:
        return 0.0
    if len(data) == 1:
        return float(data[0])
    rank = (len(data) - 1) * (q / 100.0)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return float(data[lower])
    weight = rank - lower
    return data[lower] * (1.0 - weight) + data[upper] * weight


def percentiles(values: Iterable[float],
                qs: Sequence[float] = DEFAULT_QUANTILES) -> Dict[str, float]:
    """``{"p50": ..., "p95": ..., ...}`` for the requested quantiles."""
    data = sorted(values)
    return {f"p{q:g}": percentile(data, q) for q in qs}


def summarize(values: Iterable[float]) -> Dict[str, float]:
    """Full summary: count, mean, min, max plus the default percentiles."""
    data: List[float] = sorted(values)
    if not data:
        return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                **{f"p{q:g}": 0.0 for q in DEFAULT_QUANTILES}}
    return {
        "count": len(data),
        "mean": mean(data),
        "min": float(data[0]),
        "max": float(data[-1]),
        **percentiles(data),
    }


class RunningStats:
    """Streaming count / mean / min / max in O(1) memory.

    The mean is a plain running sum — deterministic for a fixed observation
    order, which is all the trace consumers need (a trace is totally
    ordered by ``seq``).
    """

    __slots__ = ("count", "_sum", "_min", "_max")

    def __init__(self) -> None:
        self.count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def mean(self) -> float:
        return self._sum / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0


class QuantileSketch:
    """Bounded-memory streaming quantiles with a deterministic compression.

    Below ``exact_limit`` observations the sketch simply buffers values and
    :meth:`summary` is *identical* to :func:`summarize` — small traces keep
    byte-stable reports.  Past the limit, the buffer is folded into at most
    ``compressed_size`` weighted centroids ``(value, weight)``: the merged
    sequence is sorted and adjacent observations are grouped into
    equal-mass runs whose weighted mean becomes the centroid.  No
    randomness, no wall clock — the same stream always compresses to the
    same centroids, so two runs at the same seed still report the same
    percentiles.

    Rank error after compression is bounded by the centroid mass
    (``count / compressed_size``), i.e. ~0.1% of ranks at the defaults —
    ample for the p50/p95/p99 marks the reports quote.  ``min``/``max``/
    ``mean``/``count`` stay exact throughout.
    """

    __slots__ = ("exact_limit", "compressed_size", "count", "_sum",
                 "_min", "_max", "_buffer", "_centroids")

    def __init__(self, exact_limit: int = 4096,
                 compressed_size: int = 1024) -> None:
        if exact_limit < 2 or compressed_size < 2:
            raise ValueError("exact_limit and compressed_size must be >= 2")
        self.exact_limit = exact_limit
        self.compressed_size = compressed_size
        self.count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        #: Raw observations not yet folded into centroids.
        self._buffer: List[float] = []
        #: ``(value, weight)`` sorted by value; empty while still exact.
        self._centroids: List[Tuple[float, float]] = []

    @property
    def is_exact(self) -> bool:
        """True while no compression has happened yet."""
        return not self._centroids

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._buffer.append(value)
        if len(self._buffer) >= self.exact_limit:
            self._compress()

    @property
    def mean(self) -> float:
        return self._sum / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def _compress(self) -> None:
        """Fold the buffer into at most ``compressed_size`` centroids."""
        merged: List[Tuple[float, float]] = self._centroids + [
            (value, 1.0) for value in sorted(self._buffer)]
        merged.sort(key=lambda pair: pair[0])
        self._buffer = []
        total = sum(weight for _, weight in merged)
        target_mass = total / self.compressed_size
        centroids: List[Tuple[float, float]] = []
        acc_value = 0.0
        acc_weight = 0.0
        for value, weight in merged:
            acc_value += value * weight
            acc_weight += weight
            if acc_weight >= target_mass:
                centroids.append((acc_value / acc_weight, acc_weight))
                acc_value = 0.0
                acc_weight = 0.0
        if acc_weight > 0.0:
            centroids.append((acc_value / acc_weight, acc_weight))
        self._centroids = centroids

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold another sketch into this one; returns ``self``.

        Merging two exact sketches stays exact while the combined buffer
        fits ``exact_limit`` (so disjoint small streams summarise exactly
        as if observed by one sketch); otherwise both sketches' centroids
        and buffers are combined and recompressed.  Deterministic: the
        result depends only on the two sketches' states, not on wall clock
        or identity.  ``other`` is not modified.
        """
        if other.count == 0:
            return self
        self.count += other.count
        self._sum += other._sum
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max
        if (self.is_exact and other.is_exact
                and len(self._buffer) + len(other._buffer) < self.exact_limit):
            self._buffer.extend(other._buffer)
            return self
        self._centroids = self._centroids + list(other._centroids)
        self._buffer.extend(other._buffer)
        self._compress()
        return self

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100); exact below ``exact_limit``."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        if self.is_exact:
            return percentile(self._buffer, q)
        if self._buffer:
            self._compress()
        # Anchor each centroid at the mid-rank of the mass it absorbed;
        # with unit weights this degenerates to the exact rank positions.
        target = (self.count - 1) * (q / 100.0)
        anchors: List[Tuple[float, float]] = [(0.0, self._min)]
        cumulative = 0.0
        for value, weight in self._centroids:
            anchors.append((cumulative + (weight - 1.0) / 2.0, value))
            cumulative += weight
        anchors.append((float(self.count - 1), self._max))
        for index in range(1, len(anchors)):
            rank, value = anchors[index]
            if target <= rank:
                prev_rank, prev_value = anchors[index - 1]
                span = rank - prev_rank
                if span <= 0.0:
                    return value
                fraction = (target - prev_rank) / span
                return prev_value + (value - prev_value) * fraction
        return self._max

    def summary(self) -> Dict[str, float]:
        """Same layout as :func:`summarize`; identical values while exact."""
        if self.count == 0:
            return summarize(())
        if self.is_exact:
            return summarize(self._buffer)
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self._min,
            "max": self._max,
            **{f"p{q:g}": self.percentile(q) for q in DEFAULT_QUANTILES},
        }

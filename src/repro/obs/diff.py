"""Differential trace analysis: ``repro diff-trace A.jsonl B.jsonl``.

Two runs — different seeds, configs, or commits — rarely produce identical
traces; the question is whether run B *regressed* relative to run A on the
outcomes the paper cares about.  :func:`diff_summaries` compares two
:class:`~repro.obs.report.TraceSummary` objects through the same JSON
schema ``repro report --json`` exposes, computes the interesting deltas,
and flags regressions by fixed, documented tolerances:

* a behaviour class's fake fraction rising by more than ``FAKE_DELTA``;
* a class's p95 wait rising by more than ``WAIT_RATIO`` (and a second);
* more failed DHT lookups or quorum misses;
* a higher final multitrust residual (propagation converging less);
* more warning/critical alerts.

Everything is derived from the two summaries, so the diff is exactly as
deterministic as the traces themselves.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .report import SUMMARY_SCHEMA, TraceSummary, summary_to_dict

__all__ = ["diff_summaries", "FAKE_DELTA", "WAIT_RATIO"]

#: A class's fake-download fraction may drift up this much before the diff
#: calls it a regression.
FAKE_DELTA = 0.05
#: Relative p95-wait growth tolerated (plus an absolute floor of 1 s).
WAIT_RATIO = 1.2


def _fake_fraction(summary: TraceSummary, cls: str) -> Optional[float]:
    outcome = summary.outcomes_by_class.get(cls)
    if not outcome or not outcome.get("downloads"):
        return None
    return outcome["fakes"] / outcome["downloads"]


def _final_residual(summary: TraceSummary) -> Optional[float]:
    if not summary.multitrust_residuals:
        return None
    last_iteration = max(summary.multitrust_residuals)
    return summary.multitrust_residuals[last_iteration].get("mean")


def diff_summaries(a: TraceSummary, b: TraceSummary,
                   label_a: str = "A", label_b: str = "B"
                   ) -> Dict[str, object]:
    """Compare two trace summaries; see the module docstring for rules."""
    deltas: Dict[str, object] = {}
    regressions: List[str] = []

    deltas["total_events"] = b.total_events - a.total_events
    kinds = sorted(set(a.event_counts) | set(b.event_counts))
    event_deltas = {}
    for kind in kinds:
        delta = b.event_counts.get(kind, 0) - a.event_counts.get(kind, 0)
        if delta:
            event_deltas[kind] = delta
    deltas["event_counts"] = event_deltas

    # Per-class outcome deltas.
    classes = sorted(set(a.outcomes_by_class) | set(b.outcomes_by_class))
    fake_deltas: Dict[str, float] = {}
    for cls in classes:
        fraction_a = _fake_fraction(a, cls)
        fraction_b = _fake_fraction(b, cls)
        if fraction_a is None or fraction_b is None:
            continue
        fake_deltas[cls] = fraction_b - fraction_a
        if fraction_b > fraction_a + FAKE_DELTA:
            regressions.append(
                f"{cls}: fake fraction {fraction_a:.3f} -> "
                f"{fraction_b:.3f} (+{fraction_b - fraction_a:.3f})")
    deltas["fake_fraction_by_class"] = fake_deltas

    wait_deltas: Dict[str, float] = {}
    for cls in sorted(set(a.wait_by_class) & set(b.wait_by_class)):
        p95_a = a.wait_by_class[cls].get("p95", 0.0)
        p95_b = b.wait_by_class[cls].get("p95", 0.0)
        wait_deltas[cls] = p95_b - p95_a
        if p95_b > p95_a * WAIT_RATIO and p95_b > p95_a + 1.0:
            regressions.append(
                f"{cls}: wait p95 {p95_a:.1f}s -> {p95_b:.1f}s "
                f"(x{p95_b / p95_a if p95_a else float('inf'):.2f})")
    deltas["wait_p95_by_class"] = wait_deltas

    # DHT health.
    deltas["dht_failed_lookups"] = (b.dht_failed_lookups
                                    - a.dht_failed_lookups)
    if b.dht_failed_lookups > a.dht_failed_lookups:
        regressions.append(
            f"failed DHT lookups {a.dht_failed_lookups} -> "
            f"{b.dht_failed_lookups}")
    deltas["dht_retrievals_incomplete"] = (b.dht_retrievals_incomplete
                                           - a.dht_retrievals_incomplete)
    if b.dht_retrievals_incomplete > a.dht_retrievals_incomplete:
        regressions.append(
            f"incomplete DHT retrievals {a.dht_retrievals_incomplete} -> "
            f"{b.dht_retrievals_incomplete}")
    mean_hops_a = a.dht_hops.get("mean", 0.0)
    mean_hops_b = b.dht_hops.get("mean", 0.0)
    deltas["dht_mean_hops"] = mean_hops_b - mean_hops_a

    # Multitrust convergence.
    residual_a = _final_residual(a)
    residual_b = _final_residual(b)
    if residual_a is not None and residual_b is not None:
        deltas["final_multitrust_residual"] = residual_b - residual_a
        if residual_b > residual_a * 1.5 and residual_b > 1e-9:
            regressions.append(
                f"final multitrust residual {residual_a:.3g} -> "
                f"{residual_b:.3g}")

    # Alert pressure.
    severities = sorted(set(a.alert_counts) | set(b.alert_counts))
    alert_deltas = {}
    for severity in severities:
        delta = (b.alert_counts.get(severity, 0)
                 - a.alert_counts.get(severity, 0))
        alert_deltas[severity] = delta
        if severity in ("warning", "critical") and delta > 0:
            regressions.append(
                f"{severity} alerts {a.alert_counts.get(severity, 0)} -> "
                f"{b.alert_counts.get(severity, 0)}")
    deltas["alert_counts"] = alert_deltas

    return {
        "schema": SUMMARY_SCHEMA,
        "a": {"label": label_a, "summary": summary_to_dict(a)},
        "b": {"label": label_b, "summary": summary_to_dict(b)},
        "deltas": deltas,
        "regressions": regressions,
    }

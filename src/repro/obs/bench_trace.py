"""Trace-format perf snapshots: the ``BENCH_trace.json`` trajectory point.

Measures what the binary columnar trace core actually buys over JSONL on a
large synthetic trace: write throughput (events/s into each sink), scan
throughput (a realistic single-pass aggregation over each format), file
sizes, and — because speed without fidelity is worthless — a canonical
round-trip identity check on a sample of the same event stream.

The **scan** workload is the one every ``repro report``-shaped consumer
runs: count events by kind and fold numeric columns into running sums.
The binary side aggregates straight off column batches
(:meth:`~repro.obs.traceio.TraceReader.batches`); the JSONL side does the
same arithmetic over ``json.loads``-decoded dicts.  Both sides' aggregates
are cross-checked for equality, so the speedup CI gates on
(``scan_ratio``) is a comparison of two scans that provably did the same
work.

Wall-clock numbers live *only* here; trace artefacts stay deterministic.
The synthetic workload itself is seeded and platform-stable
(``random.Random``), so two machines bench the exact same byte stream.
"""

from __future__ import annotations

import math
import random
import time
from collections import Counter
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from .bench import run_stamp
from .events import read_events
from .traceio import (DEFAULT_CHUNK_EVENTS, JsonlTraceWriter, TraceReader,
                      TraceWriter, canonical_line)

__all__ = ["synthetic_events", "collect_trace_snapshot", "scan_ratio",
           "write_throughput", "scan_throughput"]

#: Behaviour classes the synthetic downloads cycle through.
_CLASSES = ("honest", "free_rider", "polluter")

#: Events in the round-trip identity sample (regenerated from the seed).
ROUNDTRIP_SAMPLE = 20_000


def synthetic_events(count: int, seed: int = 7) -> Iterator[Dict[str, Any]]:
    """A deterministic, realistically-shaped stream of ``count`` events.

    Mimics a simulator trace: mostly downloads and requests with string,
    float, int and bool fields, a steady trickle of DHT lookups,
    reputation snapshots, multitrust iterations and pipeline refreshes,
    plus occasional irregular records (a null field) so the JSON fallback
    column is exercised, not just the fast paths.
    """
    rng = random.Random(seed)
    t = 0.0
    for seq in range(count):
        t += rng.random() * 2.0
        record: Dict[str, Any] = {"seq": seq, "t": t}
        roll = rng.random()
        if roll < 0.45:
            record.update(
                event="download",
                peer=f"peer-{rng.randrange(256):03d}",
                cls=_CLASSES[rng.randrange(3)],
                file=rng.randrange(4096),
                wait=rng.random() * 30.0,
                fake=rng.random() < 0.2,
            )
        elif roll < 0.70:
            record.update(
                event="request",
                peer=f"peer-{rng.randrange(256):03d}",
                file=rng.randrange(4096),
            )
        elif roll < 0.82:
            record.update(
                event="dht_lookup",
                hops=rng.randrange(1, 9),
                retries=rng.randrange(0, 3),
                ok=rng.random() > 0.05,
            )
        elif roll < 0.92:
            record.update(
                event="reputation_snapshot",
                peer=f"peer-{rng.randrange(256):03d}",
                cls=_CLASSES[rng.randrange(3)],
                score=rng.random(),
                norm=rng.random(),
                service_class=rng.randrange(4),
                bytes_up=float(rng.randrange(1 << 24)),
                bytes_down=float(rng.randrange(1 << 24)),
                fakes_served=rng.randrange(8),
                online=rng.random() > 0.1,
            )
        elif roll < 0.97:
            record.update(
                event="multitrust_iteration",
                iteration=rng.randrange(1, 40),
                residual=rng.random() * 1e-2,
            )
        else:
            # Irregular on purpose: ``detail`` is sometimes null, which
            # forces that column through the JSON fallback encoding.
            record.update(
                event="maintenance",
                removed=rng.randrange(4),
                detail=None if rng.random() < 0.5 else "sweep",
            )
        yield record


def _scan_binary(path: Union[str, Path]) -> Dict[str, Any]:
    """The columnar aggregation pass: counts by kind + numeric sums."""
    kinds: Counter = Counter()
    wait_sum = 0.0
    hops_sum = 0.0
    events = 0
    with TraceReader(path) as reader:
        for batch in reader.batches():
            events += batch.n_events
            kinds.update(batch.kind_counts())
            wait_sum += sum(batch.column_values("wait"))
            hops_sum += sum(batch.column_values("hops"))
    return {"events": events, "kinds": dict(sorted(kinds.items())),
            "wait_sum": wait_sum, "hops_sum": hops_sum}


def _scan_jsonl(path: Union[str, Path]) -> Dict[str, Any]:
    """The same aggregation over ``json.loads``-decoded JSONL records."""
    kinds: Counter = Counter()
    wait_sum = 0.0
    hops_sum = 0.0
    events = 0
    for record in read_events(str(path)):
        events += 1
        kinds[record["event"]] += 1
        wait = record.get("wait")
        if wait is not None:
            wait_sum += wait
        hops = record.get("hops")
        if hops is not None:
            hops_sum += hops
    return {"events": events, "kinds": dict(sorted(kinds.items())),
            "wait_sum": wait_sum, "hops_sum": hops_sum}


def _aggregates_match(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    """Equality up to float summation order (chunked vs per-event)."""
    return (a["events"] == b["events"] and a["kinds"] == b["kinds"]
            and math.isclose(a["wait_sum"], b["wait_sum"], rel_tol=1e-9)
            and math.isclose(a["hops_sum"], b["hops_sum"], rel_tol=1e-9))


def _roundtrip_identical(workdir: Path, seed: int,
                         chunk_events: int) -> bool:
    """Binary -> canonical JSONL must equal the direct JSONL export."""
    binary_path = workdir / "roundtrip.bin"
    with TraceWriter(binary_path, chunk_events=chunk_events) as writer:
        writer.extend(synthetic_events(ROUNDTRIP_SAMPLE, seed))
    direct = "".join(canonical_line(event) + "\n"
                     for event in synthetic_events(ROUNDTRIP_SAMPLE, seed))
    with TraceReader(binary_path) as reader:
        converted = "".join(canonical_line(event) + "\n"
                            for event in reader)
    return converted == direct


def write_throughput(snapshot: Dict[str, Any], fmt: str = "binary") -> float:
    """Events/s written for one format, from a snapshot."""
    return float(snapshot.get(fmt, {}).get("write_events_per_s", 0.0))


def scan_throughput(snapshot: Dict[str, Any], fmt: str = "binary") -> float:
    """Events/s scanned for one format, from a snapshot."""
    return float(snapshot.get(fmt, {}).get("scan_events_per_s", 0.0))


def scan_ratio(snapshot: Dict[str, Any]) -> float:
    """Binary-over-JSONL scan speedup — the number CI gates on."""
    jsonl = scan_throughput(snapshot, "jsonl")
    if jsonl <= 0.0:
        return 0.0
    return scan_throughput(snapshot, "binary") / jsonl


def collect_trace_snapshot(events: int = 1_000_000, seed: int = 7,
                           chunk_events: int = DEFAULT_CHUNK_EVENTS,
                           workdir: Optional[Union[str, Path]] = None
                           ) -> Dict[str, Any]:
    """Bench both formats on one synthetic stream; returns the snapshot.

    ``workdir`` is where the trace files are written (a temp directory by
    default); the writer/reader streaming keeps peak memory bounded
    regardless of ``events``.
    """
    if events < 1:
        raise ValueError(f"events must be >= 1, got {events}")
    if workdir is None:
        import tempfile
        with tempfile.TemporaryDirectory(prefix="repro-bench-trace-") as tmp:
            return collect_trace_snapshot(events, seed, chunk_events, tmp)
    workdir = Path(workdir)

    binary_path = workdir / "bench.bin"
    jsonl_path = workdir / "bench.jsonl"

    started = time.perf_counter()
    with TraceWriter(binary_path, chunk_events=chunk_events) as writer:
        writer.extend(synthetic_events(events, seed))
    binary_write_s = time.perf_counter() - started
    binary_chunks = writer.chunks_written

    started = time.perf_counter()
    with JsonlTraceWriter(jsonl_path) as jsonl_writer:
        for record in synthetic_events(events, seed):
            jsonl_writer.append(record)
    jsonl_write_s = time.perf_counter() - started

    started = time.perf_counter()
    binary_agg = _scan_binary(binary_path)
    binary_scan_s = time.perf_counter() - started

    started = time.perf_counter()
    jsonl_agg = _scan_jsonl(jsonl_path)
    jsonl_scan_s = time.perf_counter() - started

    binary_bytes = binary_path.stat().st_size
    jsonl_bytes = jsonl_path.stat().st_size

    snapshot: Dict[str, Any] = {
        **run_stamp(seed, {"bench": "trace", "events": events,
                           "chunk_events": chunk_events}),
        "events": events,
        "chunk_events": chunk_events,
        "binary": {
            "file_bytes": binary_bytes,
            "chunks": binary_chunks,
            "write_seconds": binary_write_s,
            "write_events_per_s": events / binary_write_s,
            "scan_seconds": binary_scan_s,
            "scan_events_per_s": events / binary_scan_s,
        },
        "jsonl": {
            "file_bytes": jsonl_bytes,
            "write_seconds": jsonl_write_s,
            "write_events_per_s": events / jsonl_write_s,
            "scan_seconds": jsonl_scan_s,
            "scan_events_per_s": events / jsonl_scan_s,
        },
        "size_ratio": (binary_bytes / jsonl_bytes) if jsonl_bytes else 0.0,
        "scan_aggregates_match": _aggregates_match(binary_agg, jsonl_agg),
        "roundtrip_identical": _roundtrip_identical(
            workdir, seed, chunk_events),
    }
    snapshot["scan_ratio"] = scan_ratio(snapshot)
    return snapshot

"""Deterministic causal spans: emission primitives and streaming analysis.

A span is a request-scoped timing record with parent/child links.  Span and
trace identifiers are derived purely from (seed, sim time, per-context
counters) — no ``uuid``, no wall clock — so two runs at the same seed emit
byte-identical span records.  Wall-clock time never enters a span record; it
only feeds the (non-deterministic, separately persisted) profiler.

Duration model
--------------
Spans accumulate *deterministic simulated cost*, not elapsed wall time:

* ``busy``  — cost added directly to this span via :meth:`Span.add_cost`
  (e.g. a DHT lookup's simulated latency).
* ``dur``   — ``busy`` plus the ``dur`` of every *synchronous* child
  (children opened while this span was on the stack).

This makes ``dur ≈ busy + Σ child.dur`` an exact invariant the analyzer can
verify, and makes critical paths meaningful in simulated seconds.

Causality across scheduled events
---------------------------------
The simulator engine captures the active span reference when a callback is
scheduled and resumes it when the callback fires.  A span opened inside a
resumed callback starts a *new segment* of the originating trace: it shares
the ``trace`` id, carries the scheduling span's id in ``link`` (not
``parent``), and its cost is **not** folded into the scheduling span's
``dur``.  The link records "which event caused this work to be scheduled";
when a freed upload slot starts a queued transfer, that is the slot-freeing
completion, which may belong to a different request than the queued one.

Sampling
--------
Head sampling is decided once per trace at the root: with ``sample = N`` the
k-th trace started by a recorder is kept iff ``(k - 1) % N == 0``.  Linked
segments inherit the keep decision of the originating trace, so sampling
keeps or drops whole causal chains.  Unkept spans still tick the id counters
(so kept ids are stable under any ``N``) but take a fast path otherwise:
no id derivation, no clock reads, no record.  Spans opened via
``Recorder.span`` (the always-on instrumentation sites that replaced bare
profiling hooks) feed the profiler regardless of sampling; per-request
spans (``Recorder.request_span``) profile only when kept, so their
profiler phases are head-sampled along with their records.
"""

from __future__ import annotations

import struct
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from .stats import QuantileSketch

__all__ = [
    "NULL_SPAN",
    "NullSpan",
    "Span",
    "SpanContext",
    "SpanNode",
    "SpanTreeBuilder",
    "SpanAnalyzer",
    "SpanAnalysis",
    "OperationStats",
    "critical_path",
    "derive_span_id",
    "derive_trace_id",
    "span_node_from_event",
]

_MASK64 = (1 << 64) - 1
# Ids are masked to 63 bits so they always fit the signed int64 columns of
# the binary trace format.
_ID_MASK = (1 << 63) - 1

_PACK_DOUBLE = struct.Struct("<d")

# Relative tolerance for the dur == busy + sum(child dur) invariant; spans
# accumulate float costs in chronological order so drift is a few ulps.
_CONSISTENCY_RTOL = 1e-9
_CONSISTENCY_ATOL = 1e-12


def _mix64(*parts: int) -> int:
    """Splitmix64-style avalanche over a sequence of integers."""
    h = 0x9E3779B97F4A7C15
    for part in parts:
        h = (h ^ (part & _MASK64)) & _MASK64
        h = (h * 0xBF58476D1CE4E5B9) & _MASK64
        h ^= h >> 27
        h = (h * 0x94D049BB133111EB) & _MASK64
        h ^= h >> 31
    return h


def derive_trace_id(seed: int, t: float, counter: int) -> int:
    """Trace id from (seed, sim time of the root span, trace counter)."""
    (t_bits,) = struct.unpack("<Q", _PACK_DOUBLE.pack(float(t)))
    return _mix64(seed, t_bits, counter) & _ID_MASK


def derive_span_id(trace_id: int, counter: int) -> int:
    """Span id from the owning trace id and the per-context span counter."""
    return _mix64(trace_id, counter) & _ID_MASK


class NullSpan:
    """No-op span; also the base type (and API contract) for live spans.

    A shared :data:`NULL_SPAN` instance is returned wherever span tracing is
    disabled, so hot paths pay only a method call.
    """

    __slots__ = ()

    span_id: Optional[int] = None
    trace_id: Optional[int] = None
    parent_id: Optional[int] = None
    link_id: Optional[int] = None
    kept: bool = False

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        return False

    def add_cost(self, seconds: float) -> None:
        """Attribute ``seconds`` of simulated cost to this span."""

    def count(self, name: str, amount: int = 1) -> None:
        """Bump a per-span counter (merged into profiler phase counters)."""

    def annotate(self, **fields: object) -> None:
        """Attach extra fields to the emitted span record."""


NULL_SPAN = NullSpan()

# A resumption reference: (trace_id, span_id, kept).
SpanRef = Tuple[int, int, bool]

# Shared ref for callbacks scheduled from unkept traces: the causal chain
# stays dropped without carrying (or deriving) any real ids.
_UNKEPT_REF: SpanRef = (0, 0, False)


class SpanContext:
    """Per-recorder span state: deterministic id allocation + span stack."""

    __slots__ = ("seed", "sample", "stack", "traces_started", "spans_started", "_resume")

    def __init__(self, seed: int = 0, sample: int = 0) -> None:
        self.seed = int(seed)
        # 0 = span records disabled; N >= 1 keeps every Nth trace.
        self.sample = int(sample)
        self.stack: List["Span"] = []
        self.traces_started = 0
        self.spans_started = 0
        self._resume: Optional[SpanRef] = None

    @property
    def enabled(self) -> bool:
        return self.sample > 0

    def begin(
        self, now: Any
    ) -> Tuple[Optional[int], Optional[int], Optional[int], Optional[int], bool, float]:
        """Allocate ids for a span opening now (``now`` is the sim clock).

        Returns ``(trace_id, span_id, parent_id, link_id, kept, t_begin)``.
        Unkept spans tick the counters (kept ids stay stable under any
        sampling rate) but skip id derivation and the clock read entirely.
        """
        parent_id: Optional[int] = None
        link_id: Optional[int] = None
        t = 0.0
        if self.stack:
            parent = self.stack[-1]
            trace_id = parent.trace_id
            parent_id = parent.span_id
            kept = parent.kept
        elif self._resume is not None:
            trace_id, link_id, kept = self._resume
            if not kept:
                trace_id = link_id = None
        else:
            self.traces_started += 1
            kept = self.sample > 0 and (self.traces_started - 1) % self.sample == 0
            trace_id = None
            if kept:
                t = now()
                trace_id = derive_trace_id(self.seed, t, self.traces_started)
        self.spans_started += 1
        if not kept:
            return trace_id, None, parent_id, link_id, False, t
        if parent_id is not None or link_id is not None:
            t = now()
        span_id = derive_span_id(trace_id or 0, self.spans_started)
        return trace_id, span_id, parent_id, link_id, True, t

    def active_ref(self) -> Optional[SpanRef]:
        """Reference to resume the current causal context in a scheduled callback."""
        if self.sample == 0:
            return None
        if self.stack:
            top = self.stack[-1]
            if not top.kept:
                return _UNKEPT_REF
            if top.trace_id is not None and top.span_id is not None:
                return (top.trace_id, top.span_id, True)
        return self._resume

    @contextmanager
    def resumed(self, ref: SpanRef) -> Iterator[None]:
        """Run a scheduled callback under the causal context that scheduled it."""
        previous = self._resume
        self._resume = ref
        try:
            yield
        finally:
            self._resume = previous


class Span(NullSpan):
    """A live span bound to a :class:`~repro.obs.recorder.Recorder`.

    Entering reads the sim clock, allocates deterministic ids and pushes the
    span on the context stack; exiting pops it, folds ``dur`` into the parent,
    records wall time + counters into the profiler, and (when the trace is
    kept) emits one ``span`` trace record keyed by sim time.
    """

    __slots__ = (
        "_recorder",
        "name",
        "span_id",
        "trace_id",
        "parent_id",
        "link_id",
        "kept",
        "t_begin",
        "_dur",
        "_busy",
        "_counters",
        "_fields",
        "_wall_start",
        "_profiled",
    )

    def __init__(
        self,
        recorder: Any,
        name: str,
        fields: Optional[Dict[str, object]],
        always_profile: bool = True,
    ) -> None:
        self._recorder = recorder
        self.name = name
        self.span_id: Optional[int] = None
        self.trace_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.link_id: Optional[int] = None
        self.kept = False
        self.t_begin = 0.0
        self._dur = 0.0
        self._busy = 0.0
        self._counters: Optional[Dict[str, int]] = None
        self._fields = fields
        self._wall_start = 0.0
        self._profiled = always_profile

    def __enter__(self) -> "Span":
        recorder = self._recorder
        context: SpanContext = recorder.span_context
        (
            self.trace_id,
            self.span_id,
            self.parent_id,
            self.link_id,
            self.kept,
            self.t_begin,
        ) = context.begin(recorder.now)
        context.stack.append(self)
        if self._profiled or self.kept:
            self._wall_start = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        recorder = self._recorder
        context: SpanContext = recorder.span_context
        top = context.stack.pop()
        if top is not self:  # pragma: no cover - defensive; with-blocks nest strictly
            raise RuntimeError(f"span stack corrupted: closed {self.name!r}, top was {top.name!r}")
        if context.stack:
            # Synchronous child: fold our full duration into the parent.
            context.stack[-1]._dur += self._dur
        if self._profiled or self.kept:
            elapsed = time.perf_counter() - self._wall_start
            recorder.profiler.record(self.name, elapsed, self._counters)
        if self.kept:
            record: Dict[str, object] = {}
            if self._fields:
                record.update(self._fields)
            if self._counters:
                record.update(self._counters)
            record["name"] = self.name
            record["span"] = self.span_id
            record["trace"] = self.trace_id
            if self.parent_id is not None:
                record["parent"] = self.parent_id
            if self.link_id is not None:
                record["link"] = self.link_id
            record["t_end"] = recorder.now()
            record["dur"] = self._dur
            record["busy"] = self._busy
            recorder.event("span", t=self.t_begin, **record)
        return False

    def add_cost(self, seconds: float) -> None:
        cost = float(seconds)
        self._busy += cost
        self._dur += cost

    def count(self, name: str, amount: int = 1) -> None:
        counters = self._counters
        if counters is None:
            counters = self._counters = {}
        counters[name] = counters.get(name, 0) + amount

    def annotate(self, **fields: object) -> None:
        if self._fields is None:
            self._fields = {}
        self._fields.update(fields)


# ---------------------------------------------------------------------------
# Streaming reconstruction and analysis
# ---------------------------------------------------------------------------


@dataclass
class SpanNode:
    """One reconstructed span with its synchronous children attached."""

    name: str
    span_id: int
    trace_id: int
    parent_id: Optional[int]
    link_id: Optional[int]
    t_begin: float
    t_end: float
    dur: float
    busy: float
    fields: Dict[str, Any] = field(default_factory=dict)
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def children_dur(self) -> float:
        return sum(child.dur for child in self.children)

    @property
    def consistent(self) -> bool:
        """Does ``dur`` match ``busy + Σ child.dur`` within float tolerance?"""
        expected = self.busy + self.children_dur
        tolerance = _CONSISTENCY_ATOL + _CONSISTENCY_RTOL * max(1.0, abs(self.dur))
        return abs(self.dur - expected) <= tolerance


def span_node_from_event(event: Mapping[str, Any]) -> Optional[SpanNode]:
    """Parse a trace event into a :class:`SpanNode`, or None if not a span."""
    if event.get("event") != "span":
        return None
    try:
        name = str(event["name"])
        span_id = int(event["span"])
        trace_id = int(event["trace"])
        t_begin = float(event["t"])
        t_end = float(event["t_end"])
        dur = float(event["dur"])
        busy = float(event["busy"])
    except (KeyError, TypeError, ValueError):
        return None
    parent = event.get("parent")
    link = event.get("link")
    reserved = ("seq", "event", "name", "span", "trace", "parent", "link", "t", "t_end", "dur", "busy")
    extras = {key: value for key, value in event.items() if key not in reserved}
    return SpanNode(
        name=name,
        span_id=span_id,
        trace_id=trace_id,
        parent_id=int(parent) if parent is not None else None,
        link_id=int(link) if link is not None else None,
        t_begin=t_begin,
        t_end=t_end,
        dur=dur,
        busy=busy,
        fields=extras,
    )


class SpanTreeBuilder:
    """Streaming span-tree reconstructor.

    Feed trace events in ``seq`` order.  Synchronous children always close —
    and are therefore recorded — before their parent, so a span's children
    have all arrived by the time the span itself is seen.  Each completed
    root (a span with no ``parent``) is returned with its full subtree
    attached; memory is bounded by the number of spans awaiting their parent,
    not by trace length.
    """

    def __init__(self) -> None:
        # parent span id -> children seen so far (in seq order).
        self._waiting: Dict[int, List[SpanNode]] = {}
        self.spans_seen = 0
        self.malformed = 0

    def feed(self, event: Mapping[str, Any]) -> Optional[SpanNode]:
        """Absorb one event; return a completed root tree when one closes."""
        if event.get("event") != "span":
            return None
        node = span_node_from_event(event)
        if node is None:
            self.malformed += 1
            return None
        self.spans_seen += 1
        node.children = self._waiting.pop(node.span_id, [])
        if node.parent_id is None:
            return node
        self._waiting.setdefault(node.parent_id, []).append(node)
        return None

    def finish(self) -> List[SpanNode]:
        """Drain spans whose parent never arrived (truncated trace), as roots."""
        orphans: List[SpanNode] = []
        for children in self._waiting.values():
            orphans.extend(children)
        self._waiting.clear()
        orphans.sort(key=lambda node: node.span_id)
        return orphans


def critical_path(root: SpanNode) -> List[SpanNode]:
    """Follow the costliest child from the root down; deterministic tie-break.

    Ties go to the earliest-recorded child (children are kept in seq order and
    ``max`` returns the first maximum).
    """
    path = [root]
    node = root
    while node.children:
        node = max(node.children, key=lambda child: child.dur)
        path.append(node)
    return path


@dataclass
class OperationStats:
    """Aggregate over every span sharing one operation name."""

    name: str
    count: int = 0
    total_dur: float = 0.0
    total_busy: float = 0.0
    durations: QuantileSketch = field(default_factory=QuantileSketch)

    def observe(self, node: SpanNode) -> None:
        self.count += 1
        self.total_dur += node.dur
        self.total_busy += node.busy
        self.durations.observe(node.dur)

    def to_dict(self) -> Dict[str, Any]:
        summary = self.durations.summary()
        return {
            "count": self.count,
            "total_dur": self.total_dur,
            "total_busy": self.total_busy,
            "p50": summary.get("p50"),
            "p95": summary.get("p95"),
            "p99": summary.get("p99"),
            "max": summary.get("max"),
        }


@dataclass
class PathStep:
    """One hop of a rendered critical path."""

    name: str
    dur: float
    busy: float
    consistent: bool
    counters: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "name": self.name,
            "dur": self.dur,
            "busy": self.busy,
            "consistent": self.consistent,
        }
        if self.counters:
            entry["counters"] = dict(sorted(self.counters.items()))
        return entry


@dataclass
class SpanAnalysis:
    """Result of a full streaming pass over a trace's span records."""

    spans: int
    traces: int
    segments: int
    orphans: int
    malformed: int
    inconsistent: int
    operations: Dict[str, OperationStats]
    critical_paths: Dict[str, List[PathStep]]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spans": self.spans,
            "traces": self.traces,
            "segments": self.segments,
            "orphans": self.orphans,
            "malformed": self.malformed,
            "inconsistent": self.inconsistent,
            "operations": {
                name: stats.to_dict() for name, stats in sorted(self.operations.items())
            },
            "critical_paths": {
                name: [step.to_dict() for step in steps]
                for name, steps in sorted(self.critical_paths.items())
            },
        }


def _node_counters(node: SpanNode) -> Dict[str, int]:
    return {
        key: value
        for key, value in node.fields.items()
        if isinstance(value, int) and not isinstance(value, bool)
    }


class SpanAnalyzer:
    """Single-pass span analysis: per-operation stats + critical paths.

    Per-span aggregates are folded in as records stream by; completed root
    trees additionally contribute a dur-consistency check of every node and
    compete (by root ``dur``, first-seen winning ties) to be the exemplar
    critical path for their root operation name.
    """

    def __init__(self) -> None:
        self._builder = SpanTreeBuilder()
        self._operations: Dict[str, OperationStats] = {}
        self._traces = 0
        self._segments = 0
        self._inconsistent = 0
        # root name -> (root dur, rendered path)
        self._best_paths: Dict[str, Tuple[float, List[PathStep]]] = {}

    def feed(self, event: Mapping[str, Any]) -> None:
        if event.get("event") != "span":
            return
        node = span_node_from_event(event)
        if node is not None:
            stats = self._operations.get(node.name)
            if stats is None:
                stats = self._operations[node.name] = OperationStats(node.name)
            stats.observe(node)
        root = self._builder.feed(event)
        if root is not None:
            self._absorb_root(root)

    def _absorb_root(self, root: SpanNode) -> None:
        self._segments += 1
        if root.link_id is None:
            self._traces += 1
        self._inconsistent += _count_inconsistent(root)
        best = self._best_paths.get(root.name)
        if best is None or root.dur > best[0]:
            steps = [
                PathStep(
                    name=node.name,
                    dur=node.dur,
                    busy=node.busy,
                    consistent=node.consistent,
                    counters=_node_counters(node),
                )
                for node in critical_path(root)
            ]
            self._best_paths[root.name] = (root.dur, steps)

    def finish(self) -> SpanAnalysis:
        orphans = self._builder.finish()
        for orphan in orphans:
            self._inconsistent += _count_inconsistent(orphan)
        return SpanAnalysis(
            spans=self._builder.spans_seen,
            traces=self._traces,
            segments=self._segments,
            orphans=len(orphans),
            malformed=self._builder.malformed,
            inconsistent=self._inconsistent,
            operations=self._operations,
            critical_paths={name: steps for name, (_, steps) in self._best_paths.items()},
        )


def _count_inconsistent(root: SpanNode) -> int:
    total = 0
    stack = [root]
    while stack:
        node = stack.pop()
        if not node.consistent:
            total += 1
        stack.extend(node.children)
    return total

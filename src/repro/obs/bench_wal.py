"""WAL perf snapshots: the ``BENCH_wal.json`` trajectory point.

Measures what durability costs a *real* run.  The standard simulator
workload (same shape as :mod:`repro.obs.bench`, smaller) executes four
times — identical seed, identical event stream — under four durability
policies:

* ``off``      — no journal attached (the baseline);
* ``buffered`` — WAL attached, ``fsync="none"`` (framing + write() only);
* ``batch``    — WAL attached, ``fsync="batch"`` (the default: one fsync
  per simulator maintenance tick);
* ``always``   — WAL attached, ``fsync="always"`` (one fsync per record).

Each mode reports simulator events/second plus its slowdown relative to
``off``.  CI gates on the ``buffered`` slowdown: journalling that is not
actively fsyncing must stay within 1.25x of the bare run, otherwise the
write-ahead hooks have crept into the hot path.  Because the durability
layer never touches an RNG, all four runs must also produce identical
outcome metrics — the snapshot records that check under
``matches_baseline``.

Snapshots carry the same provenance stamp as the other BENCH files (seed,
config hash, git sha — see :mod:`repro.obs.bench`).  Core/simulator
imports are deferred into the functions to mirror :mod:`repro.obs.bench`.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Optional

from .bench import run_stamp

__all__ = ["collect_wal_snapshot", "buffered_overhead"]

#: The simulate workload each mode runs (identical across modes).
#: ``snapshot_every=0``: the bench isolates the WAL *policy* cost — only
#: the baseline generation is written, never mid-run ones, so the modes
#: differ exclusively in append/fsync behaviour.
_SIM_CONFIG = dict(honest=10, free_riders=3, polluters=3, catalog=60,
                   fake_ratio=0.25, days=0.75, request_rate=0.02,
                   snapshot_every=0)

_MODE_FSYNC = {"buffered": "none", "batch": "batch", "always": "always"}


def _run_mode(mode: str, seed: int,
              directory: Path) -> Dict[str, object]:
    """One simulator run under one durability policy."""
    from ..baselines import MultiDimensionalMechanism
    from ..core import ReputationConfig
    from ..core.durability import DurabilityManager
    from ..simulator import (FileSharingSimulation, ScenarioSpec,
                             SimulationConfig)

    duration = _SIM_CONFIG["days"] * 24 * 3600.0
    config = SimulationConfig(
        scenario=ScenarioSpec(honest=_SIM_CONFIG["honest"],
                              free_riders=_SIM_CONFIG["free_riders"],
                              polluters=_SIM_CONFIG["polluters"]),
        duration_seconds=duration,
        num_files=_SIM_CONFIG["catalog"],
        fake_ratio=_SIM_CONFIG["fake_ratio"],
        request_rate=_SIM_CONFIG["request_rate"],
        seed=seed)
    mechanism = MultiDimensionalMechanism(ReputationConfig(
        retention_saturation_seconds=duration / 3))

    manager: Optional[DurabilityManager] = None
    if mode != "off":
        manager = DurabilityManager(
            mechanism.system, directory / mode, fsync=_MODE_FSYNC[mode],
            snapshot_every=_SIM_CONFIG["snapshot_every"])
    simulation = FileSharingSimulation(config, mechanism,
                                       durability=manager)
    started = time.perf_counter()
    metrics = simulation.run()
    elapsed = time.perf_counter() - started
    wal_records = manager.last_seq if manager is not None else 0
    if manager is not None:
        manager.close(final_snapshot=True)
    events = simulation.engine.events_processed
    return {
        "seconds": elapsed,
        "engine_events": events,
        "events_per_second": events / elapsed if elapsed > 0 else 0.0,
        "wal_records": wal_records,
        "total_requests": metrics.total_requests,
        "overall_fake_fraction": metrics.overall_fake_fraction,
    }


def collect_wal_snapshot(directory: str,
                         seed: int = 42) -> Dict[str, object]:
    """One stamped BENCH_wal measurement over all four durability modes."""
    workdir = Path(directory)
    workdir.mkdir(parents=True, exist_ok=True)
    modes: Dict[str, Dict[str, object]] = {}
    for mode in ("off", "buffered", "batch", "always"):
        modes[mode] = _run_mode(mode, seed, workdir)
    baseline = modes["off"]
    for entry in modes.values():
        entry["slowdown_vs_off"] = (
            float(entry["seconds"]) / float(baseline["seconds"])
            if float(baseline["seconds"]) > 0 else float("inf"))
    matches = all(
        entry["total_requests"] == baseline["total_requests"]
        and entry["overall_fake_fraction"]
        == baseline["overall_fake_fraction"]
        and entry["engine_events"] == baseline["engine_events"]
        for entry in modes.values())
    snapshot: Dict[str, object] = run_stamp(seed, dict(_SIM_CONFIG))
    snapshot["modes"] = modes
    snapshot["matches_baseline"] = matches
    return snapshot


def buffered_overhead(snapshot: Dict[str, object]) -> float:
    """The buffered-journal slowdown ratio CI gates on (1.0 = free)."""
    modes = snapshot["modes"]
    return float(modes["buffered"]["slowdown_vs_off"])

"""Labelled metrics registry: Counter / Gauge / Histogram.

A deliberately small, Prometheus-flavoured registry.  Instruments are
created on first use and keyed by ``name`` plus a sorted label set, so
``registry.counter("downloads", cls="honest")`` always returns the same
:class:`Counter`.  ``snapshot()`` renders everything into a plain, sorted,
JSON-serialisable dict — histograms summarise to count/mean/min/max and
p50/p95/p99 via :mod:`repro.obs.stats`.

Nothing here reads the wall clock: values are whatever the caller observed,
so a snapshot of a seeded simulation is bit-for-bit reproducible.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple, Union

from .stats import summarize

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount


class Histogram:
    """A distribution of observed values, summarised with percentiles."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: List[float] = []

    def observe(self, value: Number) -> None:
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    def values(self) -> List[float]:
        return list(self._values)

    def summary(self) -> Dict[str, float]:
        return summarize(self._values)


def _key(name: str, labels: Mapping[str, str]) -> str:
    """Canonical instrument key: ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    rendered = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{rendered}}}"


class MetricsRegistry:
    """Get-or-create home for every instrument of one run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    # Instruments                                                        #
    # ------------------------------------------------------------------ #

    def counter(self, name: str, **labels: str) -> Counter:
        return self._counters.setdefault(_key(name, labels), Counter())

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._gauges.setdefault(_key(name, labels), Gauge())

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._histograms.setdefault(_key(name, labels), Histogram())

    # ------------------------------------------------------------------ #
    # Export                                                             #
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    def histogram_items(self) -> List[Tuple[str, Histogram]]:
        """(key, histogram) pairs in deterministic key order."""
        return sorted(self._histograms.items())

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All instruments as a sorted, JSON-serialisable dict."""
        return {
            "counters": {key: self._counters[key].value
                         for key in sorted(self._counters)},
            "gauges": {key: self._gauges[key].value
                       for key in sorted(self._gauges)},
            "histograms": {key: self._histograms[key].summary()
                           for key in sorted(self._histograms)},
        }

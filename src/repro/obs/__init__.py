"""Observability: structured events, metrics, profiling — ``repro.obs``.

The measurement substrate the quantitative claims run on:

* :mod:`~repro.obs.stats` — shared mean/percentile helpers (p50/p95/p99);
* :mod:`~repro.obs.registry` — labelled Counter/Gauge/Histogram registry;
* :mod:`~repro.obs.events` — JSONL event tracing keyed by simulation time;
* :mod:`~repro.obs.profiling` — wall-clock phase timers (perf snapshots
  only, never in deterministic artefacts);
* :mod:`~repro.obs.recorder` — the facade instrumented code talks to, with
  the zero-overhead :data:`~repro.obs.recorder.NULL_RECORDER` default;
* :mod:`~repro.obs.report` — trace summarisation behind ``repro report``;
* :mod:`~repro.obs.bench` — stamped ``BENCH_obs.json`` perf snapshots.

Design rule: with the default ``NULL_RECORDER`` every instrumented path is
behaviourally identical to the uninstrumented seed code; with a live
:class:`~repro.obs.recorder.Recorder`, two runs at the same seed export
byte-identical traces and metrics (simulation time only, no wall clock).
"""

from .events import EventTrace, read_events
from .profiling import PhaseStats, Profiler
from .recorder import NULL_RECORDER, NullRecorder, Recorder
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .report import TraceSummary, summarize_trace
from .stats import (DEFAULT_QUANTILES, mean, percentile, percentiles,
                    summarize)

__all__ = [
    "EventTrace",
    "read_events",
    "PhaseStats",
    "Profiler",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceSummary",
    "summarize_trace",
    "DEFAULT_QUANTILES",
    "mean",
    "percentile",
    "percentiles",
    "summarize",
]

"""Observability: structured events, metrics, profiling — ``repro.obs``.

The measurement substrate the quantitative claims run on:

* :mod:`~repro.obs.stats` — shared mean/percentile helpers (p50/p95/p99)
  plus the streaming accumulators (:class:`~repro.obs.stats.RunningStats`,
  :class:`~repro.obs.stats.QuantileSketch`) single-pass consumers use;
* :mod:`~repro.obs.registry` — labelled Counter/Gauge/Histogram registry;
* :mod:`~repro.obs.events` — JSONL event tracing keyed by simulation time;
* :mod:`~repro.obs.traceio` — the binary columnar trace format (chunked,
  CRC-framed, dictionary-encoded) with streaming writer/reader and the
  unified :func:`~repro.obs.traceio.iter_trace_events` front door;
* :mod:`~repro.obs.profiling` — wall-clock phase timers (perf snapshots
  only, never in deterministic artefacts);
* :mod:`~repro.obs.recorder` — the facade instrumented code talks to, with
  the zero-overhead :data:`~repro.obs.recorder.NULL_RECORDER` default;
* :mod:`~repro.obs.spans` — causal request-scoped spans with deterministic
  ids, streaming span-tree reconstruction and critical-path analysis;
* :mod:`~repro.obs.flame` — folded-stack aggregation and flamegraph SVG
  export over span trees;
* :mod:`~repro.obs.report` — trace summarisation behind ``repro report``;
* :mod:`~repro.obs.bench` — stamped ``BENCH_obs.json`` perf snapshots;
* :mod:`~repro.obs.bench_pipeline` — stamped ``BENCH_pipeline.json``
  snapshots of incremental-vs-full refresh and sparse-vs-dense matmul;
* :mod:`~repro.obs.bench_trace` — stamped ``BENCH_trace.json`` snapshots
  of trace write/scan throughput, binary vs JSONL;
* :mod:`~repro.obs.alerts` — threshold/windowed alert rules and severities;
* :mod:`~repro.obs.detectors` — streaming anomaly detectors (convergence
  stall, fake outbreak, collusion ring, whitewashing, starvation);
* :mod:`~repro.obs.monitor` — the live/offline monitor tying them together;
* :mod:`~repro.obs.timeline` — per-peer reputation timelines from a trace;
* :mod:`~repro.obs.dashboard` — self-contained HTML dashboard rendering;
* :mod:`~repro.obs.diff` — differential analysis of two trace summaries.

Design rule: with the default ``NULL_RECORDER`` every instrumented path is
behaviourally identical to the uninstrumented seed code; with a live
:class:`~repro.obs.recorder.Recorder`, two runs at the same seed export
byte-identical traces and metrics (simulation time only, no wall clock).
Trace consumers stream — they accept lazy readers and never materialise
the full event list.
"""

from .alerts import (Alert, RulesEngine, Severity, ThresholdRule,
                     WindowedCountRule, default_rules)
from .dashboard import render_dashboard
from .detectors import Detector, default_detectors
from .diff import diff_summaries
from .events import EventTrace, read_events
from .flame import FoldedStacks, folded_from_trees, render_flamegraph
from .monitor import Monitor, MonitorResult, monitor_events
from .profiling import PhaseStats, Profiler
from .recorder import NULL_RECORDER, NullRecorder, Recorder
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .spans import (NULL_SPAN, NullSpan, OperationStats, Span, SpanAnalysis,
                    SpanAnalyzer, SpanContext, SpanNode, SpanTreeBuilder,
                    critical_path, derive_span_id, derive_trace_id,
                    span_node_from_event)
from .report import (TraceSummarizer, TraceSummary, summarize_trace,
                     summary_to_dict)
from .stats import (DEFAULT_QUANTILES, QuantileSketch, RunningStats, mean,
                    percentile, percentiles, summarize)
from .timeline import (FakeFractionAccumulator, PeerSample, PeerTimeline,
                       TimelineBuilder, build_timelines, class_mean_series,
                       fake_fraction_series)
from .traceio import (JsonlTraceWriter, TraceFormatError, TraceReader,
                      TraceWriter, is_binary_trace, iter_trace_events,
                      open_trace_sink, trace_info)

__all__ = [
    "Alert",
    "RulesEngine",
    "Severity",
    "ThresholdRule",
    "WindowedCountRule",
    "default_rules",
    "render_dashboard",
    "Detector",
    "default_detectors",
    "diff_summaries",
    "EventTrace",
    "read_events",
    "JsonlTraceWriter",
    "TraceFormatError",
    "TraceReader",
    "TraceWriter",
    "is_binary_trace",
    "iter_trace_events",
    "open_trace_sink",
    "trace_info",
    "Monitor",
    "MonitorResult",
    "monitor_events",
    "PhaseStats",
    "Profiler",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "NULL_SPAN",
    "NullSpan",
    "OperationStats",
    "Span",
    "SpanAnalysis",
    "SpanAnalyzer",
    "SpanContext",
    "SpanNode",
    "SpanTreeBuilder",
    "critical_path",
    "derive_span_id",
    "derive_trace_id",
    "span_node_from_event",
    "FoldedStacks",
    "folded_from_trees",
    "render_flamegraph",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceSummarizer",
    "TraceSummary",
    "summarize_trace",
    "summary_to_dict",
    "PeerSample",
    "PeerTimeline",
    "TimelineBuilder",
    "FakeFractionAccumulator",
    "build_timelines",
    "class_mean_series",
    "fake_fraction_series",
    "DEFAULT_QUANTILES",
    "QuantileSketch",
    "RunningStats",
    "mean",
    "percentile",
    "percentiles",
    "summarize",
]

"""The recorder facade instrumented code talks to.

Call sites across core/simulator/DHT hold exactly one object — a recorder —
and never decide themselves whether observability is on:

* :data:`NULL_RECORDER` (the default everywhere) ignores every call.  The
  fault-free, instrumentation-free path therefore stays byte-identical to
  the uninstrumented code; hot paths may additionally guard expensive
  field construction behind ``recorder.enabled``.
* :class:`Recorder` fans each call out to an :class:`~repro.obs.events
  .EventTrace` (structured events keyed by simulation time), a
  :class:`~repro.obs.registry.MetricsRegistry` (counters / gauges /
  histograms) and a :class:`~repro.obs.profiling.Profiler` (wall-clock
  phase timers, kept out of the deterministic artefacts).

Simulation time comes from a bound clock (``bind_clock``), so events carry
``engine.now`` without every call site threading ``now`` through.
"""

from __future__ import annotations

import json
from typing import Callable, Optional

from .events import EventTrace
from .profiling import Profiler
from .registry import MetricsRegistry
from .spans import NULL_SPAN, NullSpan, Span, SpanContext, SpanRef

__all__ = ["NullRecorder", "Recorder", "NULL_RECORDER"]

Clock = Callable[[], float]


class _NullTimer:
    """A reusable no-op context manager (no allocation per ``with``)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class NullRecorder:
    """Ignores everything; the zero-overhead default."""

    enabled = False

    def bind_clock(self, clock: Clock) -> None:
        """Set the simulation-time source for subsequent events."""

    def subscribe(self, callback: Callable[[dict], object]) -> None:
        """Register a live event subscriber (monitors attach this way)."""

    def unsubscribe(self, callback: Callable[[dict], object]) -> None:
        """Detach a subscriber; unknown callbacks are ignored."""

    def event(self, kind: str, t: Optional[float] = None, **fields) -> None:
        """Record one structured event (``t`` defaults to the bound clock)."""

    def inc(self, name: str, amount: float = 1, **labels: str) -> None:
        """Bump a counter."""

    def gauge(self, name: str, value: float, **labels: str) -> None:
        """Set a gauge."""

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Add one observation to a histogram."""

    def profile(self, name: str):
        """Context manager timing a phase (wall clock, profiling only)."""
        return _NULL_TIMER

    def profile_count(self, name: str, counter: str, amount: int = 1) -> None:
        """Bump a per-phase profiler counter without opening a span."""

    def span(self, name: str, **fields: object) -> NullSpan:
        """Open a span (always profiles; emits a record when the trace is kept)."""
        return NULL_SPAN

    def request_span(self, name: str, **fields: object) -> NullSpan:
        """Open a per-request span; a shared no-op unless span tracing is on."""
        return NULL_SPAN

    def active_span_ref(self) -> Optional[SpanRef]:
        """Causal context to capture when scheduling a callback (None = off)."""
        return None

    def resume_scope(self, ref: SpanRef):
        """Context manager running a callback under a captured causal context."""
        return _NULL_TIMER

    def now(self) -> float:
        """Current simulation time from the bound clock."""
        return 0.0


#: Shared do-nothing recorder; safe to use as a default argument.
NULL_RECORDER = NullRecorder()


class Recorder(NullRecorder):
    """A live recorder: events + metrics + profiling for one run."""

    enabled = True

    def __init__(self, clock: Optional[Clock] = None,
                 trace_sink: Optional[object] = None,
                 span_seed: int = 0, span_sample: int = 0):
        """``trace_sink`` — a streaming sink (``append(record)``, e.g.
        :class:`~repro.obs.traceio.TraceWriter`) events spill into instead
        of buffering; the caller owns closing it.  Without one, the trace
        buffers in memory as before.

        ``span_seed`` / ``span_sample`` configure deterministic span
        tracing: ids derive from the seed, and every ``span_sample``-th
        trace is kept (0 disables span records; spans still profile).
        """
        self.trace = EventTrace(spill=trace_sink)
        self.trace_sink = trace_sink
        self.registry = MetricsRegistry()
        self.profiler = Profiler()
        self.span_context = SpanContext(seed=span_seed, sample=span_sample)
        self._clock: Clock = clock if clock is not None else (lambda: 0.0)
        self._subscribers: list = []

    def bind_clock(self, clock: Clock) -> None:
        self._clock = clock

    def subscribe(self, callback: Callable[[dict], object]) -> None:
        """Call ``callback(record)`` for every event recorded from now on.

        Subscribers may themselves record events (a monitor emitting an
        ``alert``); those nested events are delivered to subscribers too,
        so a subscriber must ignore the kinds it emits.
        """
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[dict], object]) -> None:
        """Detach a subscriber registered with :meth:`subscribe`.

        Unknown callbacks are ignored, so detaching twice is safe.  Events
        recorded after the call are no longer delivered to ``callback``.
        """
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def event(self, kind: str, t: Optional[float] = None, **fields) -> None:
        record = self.trace.record(kind, self._clock() if t is None else t,
                                   **fields)
        for callback in self._subscribers:
            callback(record)

    def inc(self, name: str, amount: float = 1, **labels: str) -> None:
        self.registry.counter(name, **labels).inc(amount)

    def gauge(self, name: str, value: float, **labels: str) -> None:
        self.registry.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: str) -> None:
        self.registry.histogram(name, **labels).observe(value)

    def profile(self, name: str):
        return self.profiler.timer(name)

    def profile_count(self, name: str, counter: str, amount: int = 1) -> None:
        self.profiler.count(name, counter, amount)

    # ------------------------------------------------------------------ #
    # Spans                                                              #
    # ------------------------------------------------------------------ #

    @property
    def spans_enabled(self) -> bool:
        """True when span records are being emitted (``span_sample > 0``)."""
        return self.span_context.enabled

    def span(self, name: str, **fields: object) -> NullSpan:
        """Open a causal span replacing a bare :meth:`profile` hook.

        Always feeds the profiler (so ``--profile-out`` keeps working with
        span tracing off); emits a deterministic ``span`` trace record only
        when span tracing is on and the trace is kept by sampling.
        """
        return Span(self, name, dict(fields) if fields else None)

    def request_span(self, name: str, **fields: object) -> NullSpan:
        """Open a span on a per-request hot path.

        Unlike :meth:`span` this is a complete no-op (shared null span, no
        profiling) unless span tracing is enabled, so request-rate work
        costs nothing when nobody asked for spans.  Under head sampling the
        span profiles only when its trace is kept — request-path profiler
        phases are sampled along with their span records.
        """
        if not self.span_context.enabled:
            return NULL_SPAN
        return Span(self, name, dict(fields) if fields else None,
                    always_profile=False)

    def active_span_ref(self) -> Optional[SpanRef]:
        return self.span_context.active_ref()

    def resume_scope(self, ref: SpanRef):
        return self.span_context.resumed(ref)

    def now(self) -> float:
        return self._clock()

    # ------------------------------------------------------------------ #
    # Export                                                             #
    # ------------------------------------------------------------------ #

    def write_trace(self, path: str) -> int:
        """Write the buffered event trace as JSONL; returns the count.

        Only valid without a ``trace_sink`` — a spilling recorder's events
        are already on disk (close the sink instead).
        """
        return self.trace.write(path)

    def write_metrics(self, path: str) -> None:
        """Write the metrics snapshot as canonical (sorted-key) JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.registry.snapshot(), handle, sort_keys=True,
                      indent=2)
            handle.write("\n")

"""Chunked binary columnar event traces: the million-event trace core.

JSONL tracing pays ~a microsecond of ``json`` per event on both sides of
the pipe; at the 10⁶-event workloads the throughput roadmap targets that
is the difference between tracing-by-default and tracing turned off.  This
module stores the same flat event records (see :mod:`repro.obs.events`) in
a compact, streamable binary layout:

* a fixed 12-byte file header — ``REPROTRC`` magic + format version +
  minor revision — so a foreign or truncated file is rejected before any
  byte is trusted; minor revisions are additive (new record families such
  as spans), so a reader for version 1 accepts any minor and older traces
  stay readable;
* the event stream follows as CRC32 length-prefixed **chunk frames**
  (``<u32 body length> <u32 CRC32(body)> <body>``, all little-endian — the
  same self-checking framing idiom as ``core/durability/wal.py``), each
  frame holding a bounded batch of events;
* inside a chunk the events are stored **columnar**: event kinds and
  string fields are dictionary-encoded per chunk, numeric columns are
  packed flat with :mod:`struct` (``<q``/``<d``), booleans and field
  presence are bitmaps, and anything irregular (nulls, mixed types,
  oversized ints) falls back to a canonical-JSON column so *no* record is
  unrepresentable.

Values round-trip exactly — ``int`` stays ``int``, ``bool`` stays
``bool``, ``float`` survives bit-for-bit — so re-serialising a decoded
trace with canonical JSON reproduces the direct JSONL export byte for
byte (``repro trace convert`` relies on this).

Writers (:class:`TraceWriter`, :class:`JsonlTraceWriter`) are streaming
sinks with bounded memory: a :class:`~repro.obs.recorder.Recorder` spills
into them instead of buffering the run.  Readers stream too —
:class:`TraceReader` yields event dicts or whole :class:`ChunkBatch`
column batches, and :func:`iter_trace_events` transparently accepts either
JSONL or binary input so every consumer (report, monitor, dashboard,
diff, query) runs single-pass on both formats.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from collections import Counter
from pathlib import Path
from typing import (Any, BinaryIO, Dict, Iterable, Iterator, List, Mapping,
                    Optional, Sequence, Tuple, Union)

from .events import read_events

__all__ = ["TRACE_MAGIC", "TRACE_VERSION", "TRACE_MINOR",
           "DEFAULT_CHUNK_EVENTS",
           "TraceFormatError", "TraceWriter", "JsonlTraceWriter",
           "TraceReader", "ChunkBatch", "Column", "encode_chunk",
           "decode_chunk", "is_binary_trace", "iter_trace_events",
           "open_trace_sink", "canonical_line", "trace_info"]

TRACE_MAGIC = b"REPROTRC"
TRACE_VERSION = 1
#: Additive format revision within version 1.  Minor 0: the PR 7 layout.
#: Minor 1: span records (``event == "span"``) — a new record family, no
#: layout change, so minor-0 readers of this codebase never existed that
#: could break and minor-0 traces remain fully readable.
TRACE_MINOR = 1

_HEADER = struct.Struct("<8sHH")   # magic, version, minor revision
_FRAME = struct.Struct("<II")      # body length, CRC32(body)
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

#: Events buffered per chunk before a frame is cut; the only memory the
#: writer holds.  4096 events keeps dictionaries hot without the buffer
#: ever mattering next to the interpreter itself.
DEFAULT_CHUNK_EVENTS = 4096

#: Sanity bound on one chunk body: a corrupt length prefix must not make
#: the reader allocate gigabytes before the CRC can reject it.
MAX_CHUNK_BYTES = 1 << 27

HEADER_SIZE = _HEADER.size

# Column type tags.
_T_INT64 = 0
_T_FLOAT64 = 1
_T_BOOL = 2
_T_STR = 3
_T_JSON = 4

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

#: byte value -> tuple of set bit positions, for fast bitmap expansion.
_BYTE_BITS = tuple(tuple(bit for bit in range(8) if byte >> bit & 1)
                   for byte in range(256))

#: byte value -> number of set bits, for fast presence counting.
_BYTE_POPCOUNT = tuple(bin(byte).count("1") for byte in range(256))


class TraceFormatError(ValueError):
    """A binary trace file is malformed, truncated, or foreign."""


def canonical_line(event: Mapping[str, Any]) -> str:
    """The canonical JSONL form of one event (sorted keys, compact)."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


def trace_header() -> bytes:
    """The 12-byte file header every binary trace starts with."""
    return _HEADER.pack(TRACE_MAGIC, TRACE_VERSION, TRACE_MINOR)


# --------------------------------------------------------------------- #
# Chunk encoding                                                        #
# --------------------------------------------------------------------- #

def _pack_str(text: str, parts: List[bytes], width: struct.Struct) -> None:
    data = text.encode("utf-8")
    parts.append(width.pack(len(data)))
    parts.append(data)


def _presence_bitmap(indexes: Sequence[int], n_events: int) -> bytes:
    bitmap = bytearray((n_events + 7) // 8)
    for index in indexes:
        bitmap[index >> 3] |= 1 << (index & 7)
    return bytes(bitmap)


def _bitmap_indexes(bitmap: bytes) -> List[int]:
    indexes: List[int] = []
    extend = indexes.extend
    for byte_index, byte in enumerate(bitmap):
        if byte:
            base = byte_index << 3
            extend(base + bit for bit in _BYTE_BITS[byte])
    return indexes


def _column_type(values: Sequence[Any]) -> int:
    """Pick the tightest representation every present value fits."""
    all_bool = True
    all_int = True
    all_float = True
    all_str = True
    for value in values:
        kind = type(value)
        if kind is bool:
            all_int = all_float = all_str = False
            if not all_bool:
                return _T_JSON
        elif kind is int:
            all_bool = all_float = all_str = False
            if not all_int or not _INT64_MIN <= value <= _INT64_MAX:
                return _T_JSON
        elif kind is float:
            all_bool = all_int = all_str = False
            if not all_float:
                return _T_JSON
        elif kind is str:
            all_bool = all_int = all_float = False
            if not all_str:
                return _T_JSON
        else:
            return _T_JSON
    if all_bool:
        return _T_BOOL
    if all_int:
        return _T_INT64
    if all_float:
        return _T_FLOAT64
    return _T_STR


def _encode_column(name: str, indexes: Sequence[int], values: Sequence[Any],
                   n_events: int, parts: List[bytes]) -> None:
    _pack_str(name, parts, _U16)
    tag = _column_type(values)
    parts.append(bytes((tag,)))
    parts.append(_presence_bitmap(indexes, n_events))
    count = len(values)
    if tag == _T_INT64:
        parts.append(struct.pack(f"<{count}q", *values))
    elif tag == _T_FLOAT64:
        parts.append(struct.pack(f"<{count}d", *values))
    elif tag == _T_BOOL:
        parts.append(_presence_bitmap(
            [i for i, value in enumerate(values) if value], count))
    elif tag == _T_STR:
        unique = sorted(set(values))
        codes = {text: code for code, text in enumerate(unique)}
        parts.append(_U32.pack(len(unique)))
        for text in unique:
            _pack_str(text, parts, _U32)
        parts.append(struct.pack(f"<{count}I",
                                 *(codes[value] for value in values)))
    else:  # _T_JSON: canonical JSON array of the present values.
        blob = json.dumps(list(values), sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        parts.append(_U32.pack(len(blob)))
        parts.append(blob)


def encode_chunk(events: Sequence[Mapping[str, Any]]) -> bytes:
    """Encode one batch of event dicts as a self-checking chunk frame.

    The encoding is canonical — kinds and column names are sorted, string
    dictionaries are sorted — so the same events always produce the same
    bytes, which keeps binary traces as diffable as the JSONL ones.
    """
    n_events = len(events)
    if n_events == 0:
        raise ValueError("cannot encode an empty chunk")

    kind_of: List[str] = []
    columns: Dict[str, Tuple[List[int], List[Any]]] = {}
    for index, event in enumerate(events):
        for name, value in event.items():
            if name == "event":
                continue
            slot = columns.get(name)
            if slot is None:
                slot = columns[name] = ([], [])
            slot[0].append(index)
            slot[1].append(value)
        kind_of.append(str(event.get("event", "unknown")))

    unique_kinds = sorted(set(kind_of))
    kind_codes = {kind: code for code, kind in enumerate(unique_kinds)}

    parts: List[bytes] = [_U32.pack(n_events), _U16.pack(len(unique_kinds))]
    for kind in unique_kinds:
        _pack_str(kind, parts, _U16)
    parts.append(struct.pack(f"<{n_events}H",
                             *(kind_codes[kind] for kind in kind_of)))
    parts.append(_U16.pack(len(columns)))
    for name in sorted(columns):
        indexes, values = columns[name]
        _encode_column(name, indexes, values, n_events, parts)

    body = b"".join(parts)
    if len(body) > MAX_CHUNK_BYTES:
        raise ValueError(f"chunk of {len(body)} bytes exceeds the "
                         f"{MAX_CHUNK_BYTES}-byte frame bound")
    return _FRAME.pack(len(body), zlib.crc32(body)) + body


# --------------------------------------------------------------------- #
# Chunk decoding                                                        #
# --------------------------------------------------------------------- #

class Column:
    """One chunk column, decoded *lazily* from the CRC-verified body.

    Parsing a chunk only walks the column headers; a column's presence
    indexes and values are materialised the first time they are accessed.
    A columnar scan that touches two numeric columns therefore never pays
    for decoding the chunk's string dictionaries — that laziness is most
    of the binary format's scan advantage.
    """

    __slots__ = ("name", "tag", "count", "_n_events", "_body",
                 "_bitmap_offset", "_value_offset", "_indexes", "_values")

    def __init__(self, name: str, tag: int, count: int, n_events: int,
                 body: bytes, bitmap_offset: int, value_offset: int) -> None:
        self.name = name
        #: Type tag (``_T_*``) the column was stored under.
        self.tag = tag
        #: Number of events that carry this field.
        self.count = count
        self._n_events = n_events
        self._body = body
        self._bitmap_offset = bitmap_offset
        self._value_offset = value_offset
        self._indexes: Optional[Sequence[int]] = None
        self._values: Optional[Sequence[Any]] = None

    @property
    def indexes(self) -> Sequence[int]:
        """Indexes (into the chunk's events) where the field is present."""
        if self._indexes is None:
            if self.count == self._n_events:
                self._indexes = range(self._n_events)
            else:
                end = self._bitmap_offset + (self._n_events + 7) // 8
                self._indexes = _bitmap_indexes(
                    self._body[self._bitmap_offset:end])
        return self._indexes

    @property
    def values(self) -> Sequence[Any]:
        """Present values, aligned with :attr:`indexes`."""
        if self._values is None:
            try:
                self._values = self._decode_values()
            except (struct.error, IndexError, UnicodeDecodeError,
                    json.JSONDecodeError) as error:
                raise TraceFormatError(
                    f"undecodable column {self.name!r}: {error}") from None
        return self._values

    def _decode_values(self) -> Sequence[Any]:
        body = self._body
        offset = self._value_offset
        count = self.count
        tag = self.tag
        if tag == _T_INT64:
            return struct.unpack_from(f"<{count}q", body, offset)
        if tag == _T_FLOAT64:
            return struct.unpack_from(f"<{count}d", body, offset)
        if tag == _T_BOOL:
            value_len = (count + 7) // 8
            set_bits = set(_bitmap_indexes(body[offset:offset + value_len]))
            return [position in set_bits for position in range(count)]
        if tag == _T_STR:
            (n_unique,) = _U32.unpack_from(body, offset)
            offset += _U32.size
            unique: List[str] = []
            for _ in range(n_unique):
                text, offset = _read_str(body, offset, _U32)
                unique.append(text)
            codes = struct.unpack_from(f"<{count}I", body, offset)
            return [unique[code] for code in codes]
        # _T_JSON (the tag was validated when the chunk was parsed).
        (blob_len,) = _U32.unpack_from(body, offset)
        offset += _U32.size
        values = json.loads(body[offset:offset + blob_len].decode("utf-8"))
        if not isinstance(values, list) or len(values) != count:
            raise TraceFormatError(
                f"JSON column {self.name!r} does not match its "
                "presence bitmap")
        return values


class ChunkBatch:
    """One decoded chunk, still columnar — the fast aggregation view.

    Kind names and column values materialise on first access; counting
    events by kind via :meth:`kind_counts` or summing one numeric column
    via :meth:`column_values` costs only that column's decode.
    """

    __slots__ = ("n_events", "columns", "_kind_dict", "_kind_codes",
                 "_kinds")

    def __init__(self, n_events: int, kind_dict: List[str],
                 kind_codes: Sequence[int],
                 columns: Dict[str, Column]) -> None:
        self.n_events = n_events
        #: Column name -> :class:`Column`.
        self.columns = columns
        self._kind_dict = kind_dict
        self._kind_codes = kind_codes
        self._kinds: Optional[List[str]] = None

    @property
    def kinds(self) -> List[str]:
        """Per-event kind names (dictionary applied lazily, then cached)."""
        if self._kinds is None:
            kind_dict = self._kind_dict
            self._kinds = [kind_dict[code] for code in self._kind_codes]
        return self._kinds

    def kind_counts(self) -> Dict[str, int]:
        """Kind -> occurrences, without materialising per-event names."""
        code_counts = Counter(self._kind_codes)
        return {self._kind_dict[code]: code_counts[code]
                for code in sorted(code_counts)}

    def events(self) -> List[Dict[str, Any]]:
        """Materialise the chunk as per-event dicts (the slow, exact view)."""
        events: List[Dict[str, Any]] = [{"event": kind}
                                        for kind in self.kinds]
        for name in self.columns:
            column = self.columns[name]
            values = column.values
            for position, index in enumerate(column.indexes):
                events[index][name] = values[position]
        return events

    def column_values(self, name: str) -> Sequence[Any]:
        """Present values of one column (empty when the chunk lacks it)."""
        column = self.columns.get(name)
        return column.values if column is not None else ()


def _read_str(body: bytes, offset: int,
              width: struct.Struct) -> Tuple[str, int]:
    (length,) = width.unpack_from(body, offset)
    offset += width.size
    return body[offset:offset + length].decode("utf-8"), offset + length


def _parse_column(body: bytes, offset: int,
                  n_events: int) -> Tuple[Column, int]:
    """Walk one column's header and value extent without decoding values."""
    name, offset = _read_str(body, offset, _U16)
    tag = body[offset]
    offset += 1
    bitmap_offset = offset
    bitmap_len = (n_events + 7) // 8
    count = sum(map(_BYTE_POPCOUNT.__getitem__,
                    body[offset:offset + bitmap_len]))
    offset += bitmap_len
    value_offset = offset
    if tag in (_T_INT64, _T_FLOAT64):
        offset += 8 * count
    elif tag == _T_BOOL:
        offset += (count + 7) // 8
    elif tag == _T_STR:
        (n_unique,) = _U32.unpack_from(body, offset)
        offset += _U32.size
        for _ in range(n_unique):
            (length,) = _U32.unpack_from(body, offset)
            offset += _U32.size + length
        offset += 4 * count
    elif tag == _T_JSON:
        (blob_len,) = _U32.unpack_from(body, offset)
        offset += _U32.size + blob_len
    else:
        raise TraceFormatError(f"unknown column type tag {tag}")
    if offset > len(body):
        raise TraceFormatError(
            f"column {name!r} overruns its chunk body")
    return Column(name=name, tag=tag, count=count, n_events=n_events,
                  body=body, bitmap_offset=bitmap_offset,
                  value_offset=value_offset), offset


def decode_chunk(body: bytes) -> ChunkBatch:
    """Parse one chunk body (already CRC-verified) into lazy columns."""
    try:
        (n_events,) = _U32.unpack_from(body, 0)
        offset = _U32.size
        (n_kinds,) = _U16.unpack_from(body, offset)
        offset += _U16.size
        kind_dict: List[str] = []
        for _ in range(n_kinds):
            kind, offset = _read_str(body, offset, _U16)
            kind_dict.append(kind)
        kind_codes = struct.unpack_from(f"<{n_events}H", body, offset)
        offset += 2 * n_events
        (n_columns,) = _U16.unpack_from(body, offset)
        offset += _U16.size
        columns: Dict[str, Column] = {}
        for _ in range(n_columns):
            column, offset = _parse_column(body, offset, n_events)
            columns[column.name] = column
    except (struct.error, IndexError, UnicodeDecodeError) as error:
        raise TraceFormatError(f"undecodable chunk body: {error}") from None
    return ChunkBatch(n_events=n_events, kind_dict=kind_dict,
                      kind_codes=kind_codes, columns=columns)


# --------------------------------------------------------------------- #
# Writers                                                               #
# --------------------------------------------------------------------- #

class TraceWriter:
    """Streaming binary trace sink with bounded memory.

    Buffers at most ``chunk_events`` records, then cuts one chunk frame.
    A :class:`~repro.obs.recorder.Recorder` constructed with
    ``trace_sink=TraceWriter(path)`` therefore traces a million-event run
    without ever holding it.  Always :meth:`close` (or use as a context
    manager) so the final partial chunk is flushed.
    """

    def __init__(self, path: Union[str, Path],
                 chunk_events: int = DEFAULT_CHUNK_EVENTS,
                 fileobj: Optional[BinaryIO] = None) -> None:
        if chunk_events < 1:
            raise ValueError(f"chunk_events must be >= 1, got {chunk_events}")
        self.path = Path(path)
        self.chunk_events = chunk_events
        self._buffer: List[Mapping[str, Any]] = []
        self.events_written = 0
        self.chunks_written = 0
        self._file: BinaryIO = (fileobj if fileobj is not None
                                else open(self.path, "wb"))
        self._closed = False
        self._file.write(trace_header())

    def append(self, record: Mapping[str, Any]) -> None:
        """Buffer one event record; cuts a chunk at the batch boundary."""
        if self._closed:
            raise ValueError("cannot append to a closed trace writer")
        self._buffer.append(record)
        if len(self._buffer) >= self.chunk_events:
            self.flush()

    def extend(self, records: Iterable[Mapping[str, Any]]) -> None:
        for record in records:
            self.append(record)

    def flush(self) -> None:
        """Cut the buffered events into one chunk frame (no-op if empty)."""
        if self._buffer:
            self._file.write(encode_chunk(self._buffer))
            self.events_written += len(self._buffer)
            self.chunks_written += 1
            self._buffer = []

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._file.close()
        self._closed = True

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class JsonlTraceWriter:
    """Streaming canonical-JSONL sink with the same interface.

    Lets ``--trace-out events.jsonl`` stream too: the file grows line by
    line instead of being buffered until the end of the run, and the bytes
    are identical to what :meth:`~repro.obs.events.EventTrace.write`
    would have produced.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.events_written = 0
        self._file = open(self.path, "w", encoding="utf-8")
        self._closed = False

    def append(self, record: Mapping[str, Any]) -> None:
        if self._closed:
            raise ValueError("cannot append to a closed trace writer")
        self._file.write(canonical_line(record) + "\n")
        self.events_written += 1

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._file.close()
        self._closed = True

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


#: Extensions treated as the binary columnar format by the CLI.
BINARY_SUFFIXES = (".bin", ".trc")


def open_trace_sink(path: Union[str, Path],
                    chunk_events: int = DEFAULT_CHUNK_EVENTS
                    ) -> Union[TraceWriter, JsonlTraceWriter]:
    """A streaming sink for ``path``: binary for ``.bin``/``.trc``,
    canonical JSONL otherwise."""
    if str(path).endswith(BINARY_SUFFIXES):
        return TraceWriter(path, chunk_events=chunk_events)
    return JsonlTraceWriter(path)


# --------------------------------------------------------------------- #
# Readers                                                               #
# --------------------------------------------------------------------- #

class TraceReader:
    """Streams a binary trace: chunk frames -> column batches -> events.

    Corruption — bad magic, torn frame, CRC mismatch — raises
    :class:`TraceFormatError` at the offending frame; everything before it
    has already been yielded, so callers that want best-effort recovery
    (``repro trace inspect``) can catch and keep the prefix.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._file: BinaryIO = open(self.path, "rb")
        header = self._file.read(HEADER_SIZE)
        if len(header) < HEADER_SIZE:
            self._file.close()
            raise TraceFormatError(f"{self.path}: short header")
        magic, version, minor = _HEADER.unpack(header)
        if magic != TRACE_MAGIC:
            self._file.close()
            raise TraceFormatError(f"{self.path}: bad magic")
        if version != TRACE_VERSION:
            self._file.close()
            raise TraceFormatError(
                f"{self.path}: unsupported trace version {version}")
        self.version = version
        #: Minor revision the file was written at.  Minors are additive
        #: (new record families only), so any minor of a supported version
        #: is readable — including minors newer than :data:`TRACE_MINOR`.
        self.minor = minor
        self._closed = False

    def batches(self) -> Iterator[ChunkBatch]:
        """Yield each chunk as a column batch (the fast scan path)."""
        offset = HEADER_SIZE
        while True:
            prefix = self._file.read(_FRAME.size)
            if not prefix:
                return
            if len(prefix) < _FRAME.size:
                raise TraceFormatError(
                    f"{self.path}: torn frame prefix at byte {offset}")
            length, crc = _FRAME.unpack(prefix)
            if length == 0 or length > MAX_CHUNK_BYTES:
                raise TraceFormatError(
                    f"{self.path}: implausible frame length at byte {offset}")
            body = self._file.read(length)
            if len(body) < length:
                raise TraceFormatError(
                    f"{self.path}: torn frame body at byte {offset}")
            if zlib.crc32(body) != crc:
                raise TraceFormatError(
                    f"{self.path}: CRC mismatch at byte {offset}")
            offset += _FRAME.size + length
            yield decode_chunk(body)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        """Yield event dicts, one chunk at a time."""
        for batch in self.batches():
            yield from batch.events()

    def close(self) -> None:
        if not self._closed:
            self._file.close()
            self._closed = True

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def is_binary_trace(path: Union[str, Path]) -> bool:
    """True when ``path`` starts with the binary trace magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(TRACE_MAGIC)) == TRACE_MAGIC
    except OSError:
        return False


def _column_time_bounds(column: Column) -> Optional[Tuple[float, float]]:
    """Min/max over the numeric values of a chunk's ``t`` column.

    Decoding one float column is the only cost; None means the chunk has
    no numeric timestamps at all (so no event in it can pass a filter).
    """
    if column.tag in (_T_INT64, _T_FLOAT64):
        values = column.values
        if not values:
            return None
        return float(min(values)), float(max(values))
    numeric = [float(value) for value in column.values
               if isinstance(value, (int, float))]
    if not numeric:
        return None
    return min(numeric), max(numeric)


def _in_window(t: Any, since: Optional[float], until: Optional[float]) -> bool:
    """Half-open ``[since, until)`` test; non-numeric times never match."""
    if not isinstance(t, (int, float)):
        return False
    t_value = float(t)
    if since is not None and t_value < since:
        return False
    return not (until is not None and t_value >= until)


def iter_trace_events(path: Union[str, Path],
                      since: Optional[float] = None,
                      until: Optional[float] = None
                      ) -> Iterator[Dict[str, Any]]:
    """Stream events from a trace file, JSONL or binary, transparently.

    The unified entry point every trace consumer goes through: the format
    is sniffed from the file's first bytes (never the extension), and the
    result is a generator either way — consumers stay single-pass and
    bounded-memory regardless of how the trace was captured.

    ``since``/``until`` restrict the stream to events whose sim time falls
    in the half-open window ``[since, until)`` (events without a numeric
    ``t`` are dropped when a filter is set).  On binary traces the filter
    first checks each chunk's ``t``-column min/max — thanks to lazy column
    decoding, a chunk entirely outside the window is skipped without
    decoding any of its other columns.
    """
    if since is None and until is None:
        if is_binary_trace(path):
            with TraceReader(path) as reader:
                yield from reader
        else:
            yield from read_events(str(path))
        return
    if is_binary_trace(path):
        with TraceReader(path) as reader:
            for batch in reader.batches():
                column = batch.columns.get("t")
                if column is None:
                    continue
                bounds = _column_time_bounds(column)
                if bounds is None:
                    continue
                t_min, t_max = bounds
                if since is not None and t_max < since:
                    continue
                if until is not None and t_min >= until:
                    continue
                for event in batch.events():
                    if _in_window(event.get("t"), since, until):
                        yield event
    else:
        for event in read_events(str(path)):
            if _in_window(event.get("t"), since, until):
                yield event


def trace_info(path: Union[str, Path]) -> Dict[str, Any]:
    """One streaming pass of bookkeeping for ``repro trace inspect``.

    Never raises on a corrupt binary tail: the valid prefix is counted and
    ``truncated``/``error`` report what stopped the scan, mirroring the
    WAL inspector's longest-valid-prefix contract.
    """
    binary = is_binary_trace(path)
    info: Dict[str, Any] = {
        "path": str(path),
        "format": "binary" if binary else "jsonl",
        "file_bytes": os.path.getsize(path),
        "events": 0,
        "chunks": 0,
        "kinds": {},
        "start_time": 0.0,
        "end_time": 0.0,
        "truncated": False,
        "error": None,
    }
    if binary:
        info["version"] = TRACE_VERSION
        info["minor"] = None
    kinds: Dict[str, int] = {}
    t_min = float("inf")
    t_max = float("-inf")

    def _absorb_batch(batch: ChunkBatch) -> None:
        nonlocal t_min, t_max
        info["events"] += batch.n_events
        info["chunks"] += 1
        for kind, count in batch.kind_counts().items():
            kinds[kind] = kinds.get(kind, 0) + count
        column = batch.columns.get("t")
        if column is None:
            return
        if column.tag in (_T_INT64, _T_FLOAT64):
            values = column.values
            if values:
                t_min = min(t_min, min(values))
                t_max = max(t_max, max(values))
        else:
            for t in column.values:
                if isinstance(t, (int, float)):
                    t_value = float(t)
                    t_min = min(t_min, t_value)
                    t_max = max(t_max, t_value)

    try:
        if binary:
            with TraceReader(path) as reader:
                info["minor"] = reader.minor
                for batch in reader.batches():
                    _absorb_batch(batch)
        else:
            for event in read_events(str(path)):
                info["events"] += 1
                kind = str(event.get("event", "unknown"))
                kinds[kind] = kinds.get(kind, 0) + 1
                t = event.get("t")
                if isinstance(t, (int, float)):
                    t_value = float(t)
                    t_min = min(t_min, t_value)
                    t_max = max(t_max, t_value)
    except (TraceFormatError, ValueError) as error:
        info["truncated"] = True
        info["error"] = str(error)
    info["kinds"] = dict(sorted(kinds.items()))
    if info["events"]:
        info["start_time"] = t_min
        info["end_time"] = t_max
    return info

"""Alerts and the declarative rules engine.

An :class:`Alert` is the atom the monitoring layer produces: a severity, the
detector (or rule) that raised it, a deterministic message, and the
*simulation* time it refers to.  Alerts are re-emitted through the recorder
as ``alert`` events, so they land in the same ``events.jsonl`` as the
signals that triggered them — one trace tells the whole story, and two runs
at the same seed produce byte-identical alert streams.

:class:`RulesEngine` evaluates declarative rules against the raw event
stream, complementing the stateful :mod:`~repro.obs.detectors`:

* :class:`ThresholdRule` — fire when a single event's field crosses a bound
  (e.g. a lookup taking more hops than the overlay should ever need);
* :class:`WindowedCountRule` — fire when matching events bunch up inside a
  sliding simulation-time window (e.g. a burst of failed lookups).

Windowed rules re-arm only after a full window without firing, so a
sustained condition produces one alert per window, not one per event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["Severity", "Alert", "ThresholdRule", "WindowedCountRule",
           "RulesEngine", "default_rules", "SEVERITIES"]

#: Severity levels, mildest first.  Kept as plain strings in events so the
#: trace stays dependency-free to parse.
SEVERITIES: Tuple[str, ...] = ("info", "warning", "critical")


class Severity:
    """Namespace for the three severity levels."""

    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"

    @staticmethod
    def rank(severity: str) -> int:
        """Position in the escalation order (unknown severities sort last)."""
        try:
            return SEVERITIES.index(severity)
        except ValueError:
            return len(SEVERITIES)


@dataclass(frozen=True)
class Alert:
    """One monitoring finding, keyed by simulation time."""

    t: float
    detector: str
    severity: str
    message: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}; "
                             f"expected one of {SEVERITIES}")

    def to_fields(self) -> Dict[str, object]:
        """Flat event fields (everything except ``t``, which is reserved)."""
        return {"detector": self.detector, "severity": self.severity,
                "message": self.message}

    @classmethod
    def from_event(cls, event: Mapping) -> "Alert":
        """Rebuild an alert from an ``alert`` trace event."""
        return cls(t=float(event.get("t", 0.0)),
                   detector=str(event.get("detector", "unknown")),
                   severity=str(event.get("severity", "info")),
                   message=str(event.get("message", "")))


Predicate = Callable[[Mapping], bool]


def _field_matches(event: Mapping, kind: str,
                   where: Optional[Predicate]) -> bool:
    if event.get("event") != kind:
        return False
    return where is None or bool(where(event))


@dataclass(frozen=True)
class ThresholdRule:
    """Fire when one event's numeric field crosses a bound.

    ``op`` is ``">"``, ``">="``, ``"<"`` or ``"<="``; events without the
    field (or with a non-numeric value) never match.
    """

    name: str
    event_kind: str
    field_name: str
    op: str
    bound: float
    severity: str = Severity.WARNING
    #: Optional extra filter on the event.
    where: Optional[Predicate] = None

    _OPS = {">": lambda a, b: a > b, ">=": lambda a, b: a >= b,
            "<": lambda a, b: a < b, "<=": lambda a, b: a <= b}

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"unknown op {self.op!r}")

    def evaluate(self, event: Mapping) -> Optional[Alert]:
        if not _field_matches(event, self.event_kind, self.where):
            return None
        value = event.get(self.field_name)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return None
        if not self._OPS[self.op](float(value), self.bound):
            return None
        return Alert(
            t=float(event.get("t", 0.0)),
            detector=f"rule:{self.name}",
            severity=self.severity,
            message=(f"{self.event_kind}.{self.field_name}={value:g} "
                     f"{self.op} {self.bound:g}"))


@dataclass
class WindowedCountRule:
    """Fire when >= ``min_count`` matching events land inside a window.

    The window is simulation time; state is purely derived from the event
    stream, so offline replay reproduces live firings exactly.  After
    firing, the rule stays silent until the window has fully slid past the
    firing point (one alert per sustained burst, not per event).
    """

    name: str
    event_kind: str
    window_seconds: float
    min_count: int
    severity: str = Severity.WARNING
    where: Optional[Predicate] = None
    _times: List[float] = field(default_factory=list)
    _muted_until: float = field(default=float("-inf"))

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.min_count < 1:
            raise ValueError("min_count must be >= 1")

    def evaluate(self, event: Mapping) -> Optional[Alert]:
        if not _field_matches(event, self.event_kind, self.where):
            return None
        t = float(event.get("t", 0.0))
        self._times.append(t)
        horizon = t - self.window_seconds
        self._times = [ts for ts in self._times if ts > horizon]
        if t < self._muted_until or len(self._times) < self.min_count:
            return None
        self._muted_until = t + self.window_seconds
        return Alert(
            t=t, detector=f"rule:{self.name}", severity=self.severity,
            message=(f"{len(self._times)} {self.event_kind} events within "
                     f"{self.window_seconds:g}s (threshold "
                     f"{self.min_count})"))


class RulesEngine:
    """Evaluates a fixed rule set against an event stream, in rule order."""

    def __init__(self, rules: Sequence[object]):
        self.rules = list(rules)

    def observe(self, event: Mapping) -> List[Alert]:
        alerts: List[Alert] = []
        for rule in self.rules:
            alert = rule.evaluate(event)
            if alert is not None:
                alerts.append(alert)
        return alerts


def default_rules() -> List[object]:
    """The standard rule set ``Monitor.default()`` ships with."""
    return [
        WindowedCountRule(
            name="lookup_failure_burst", event_kind="dht_lookup",
            window_seconds=500.0, min_count=5,
            severity=Severity.WARNING,
            where=lambda event: not event.get("ok", True)),
        WindowedCountRule(
            name="quorum_miss_burst", event_kind="dht_retrieve",
            window_seconds=500.0, min_count=5,
            severity=Severity.WARNING,
            where=lambda event: not event.get("complete", True)),
        ThresholdRule(
            name="lookup_hop_blowup", event_kind="dht_lookup",
            field_name="hops", op=">", bound=24.0,
            severity=Severity.WARNING),
    ]

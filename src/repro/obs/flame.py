"""Flamegraph export for span traces: folded stacks + self-contained SVG.

Consumes the span trees reconstructed by :mod:`repro.obs.spans` and
aggregates them into classic *folded stacks* — one line per unique call
path, ``root;child;leaf <value>`` — where the value is the path's **busy**
cost (cost attributed directly to that span, excluding children) in
integer microseconds of simulated time.  Folding over busy cost makes the
widths sum correctly: a frame's rendered width (inclusive cost) is its own
busy plus its descendants', exactly like sampled flamegraphs.

The SVG is rendered in the same style as the PR 3 dashboard: hand-rolled,
dependency-free, fixed palette, embedded CSS, fully deterministic — the
same trace always produces byte-identical output.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Tuple

from .spans import SpanNode

__all__ = ["FoldedStacks", "folded_from_trees", "render_flamegraph"]

#: Microseconds of simulated busy cost per folded-stack unit.
_UNITS_PER_SECOND = 1_000_000

# Same palette as repro.obs.dashboard; frames are coloured by a stable
# hash of their name so one operation keeps its colour everywhere.
_PALETTE = ("#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
            "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf")

_CSS = """\
text { font-family: Menlo, Consolas, monospace; font-size: 11px; }
.title { font-size: 15px; font-weight: bold; fill: #222; }
.subtitle { font-size: 11px; fill: #555; }
.frame-label { fill: #fff; pointer-events: none; }
.frame rect { stroke: #fff; stroke-width: 0.5; }
.frame rect:hover { stroke: #222; stroke-width: 1; }
"""


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def _frame_color(name: str) -> str:
    return _PALETTE[zlib.crc32(name.encode("utf-8")) % len(_PALETTE)]


class FoldedStacks:
    """Aggregate span trees into folded stack lines.

    Feed completed trees with :meth:`add_tree`; every node contributes its
    busy cost to its full ancestry path.  Paths with zero accumulated cost
    are dropped (they would render zero-width anyway), so a trace whose
    spans carry no simulated cost folds to nothing.
    """

    def __init__(self) -> None:
        self._stacks: Dict[Tuple[str, ...], float] = {}
        self.trees = 0

    def add_tree(self, root: SpanNode) -> None:
        self.trees += 1
        pending: List[Tuple[Tuple[str, ...], SpanNode]] = [((root.name,), root)]
        while pending:
            path, node = pending.pop()
            if node.busy > 0.0:
                self._stacks[path] = self._stacks.get(path, 0.0) + node.busy
            for child in node.children:
                pending.append((path + (child.name,), child))

    def __len__(self) -> int:
        return len(self._stacks)

    @property
    def total(self) -> float:
        """Total folded cost in (simulated) seconds."""
        return sum(self._stacks.values())

    def items(self) -> List[Tuple[Tuple[str, ...], float]]:
        """(path, seconds) pairs, sorted by path for determinism."""
        return sorted(self._stacks.items())

    def lines(self) -> List[str]:
        """Classic folded format: ``a;b;c <integer microseconds>``.

        Paths whose cost rounds to zero microseconds are omitted — folded
        values are integral by convention.
        """
        out: List[str] = []
        for path, seconds in self.items():
            units = int(round(seconds * _UNITS_PER_SECOND))
            if units > 0:
                out.append(";".join(path) + f" {units}")
        return out


class _Frame:
    """One rendered flamegraph frame (merged by path prefix)."""

    __slots__ = ("name", "self_value", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.self_value = 0.0
        self.children: Dict[str, "_Frame"] = {}

    @property
    def value(self) -> float:
        return self.self_value + sum(child.value for child in
                                     self.children.values())

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children.values())


def _build_frame_tree(folded: FoldedStacks) -> _Frame:
    root = _Frame("all spans")
    for path, seconds in folded.items():
        frame = root
        for name in path:
            child = frame.children.get(name)
            if child is None:
                child = frame.children[name] = _Frame(name)
            frame = child
        frame.self_value += seconds
    return root


def render_flamegraph(folded: FoldedStacks,
                      title: str = "repro span flamegraph",
                      width: int = 1200) -> str:
    """Render folded stacks as a self-contained SVG (icicle layout).

    Deterministic: frames are laid out in sorted-name order, widths are
    proportional to inclusive busy cost, colours come from a stable hash
    of the frame name.  Tooltips (``<title>``) carry exact seconds and
    percentages, so the SVG needs no scripting.
    """
    root = _build_frame_tree(folded)
    total = root.value
    row_h = 19
    header_h = 46
    depth = root.depth()
    height = header_h + depth * row_h + 8
    parts: List[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">')
    parts.append(f"<style>{_CSS}</style>")
    parts.append(f'<rect x="0" y="0" width="{width}" height="{height}" '
                 'fill="#fafafa"/>')
    parts.append(f'<text x="12" y="22" class="title">{_escape(title)}</text>')
    parts.append(
        f'<text x="12" y="38" class="subtitle">{folded.trees} trees · '
        f'{len(folded)} stacks · total busy {total:.6f}s '
        "(simulated)</text>")

    min_px = 0.5   # frames narrower than this are not worth a rect

    def _emit(frame: _Frame, x: float, level: int, span_width: float) -> None:
        y = header_h + level * row_h
        label_budget = int(span_width // 7)
        label = frame.name if len(frame.name) <= label_budget else (
            frame.name[:label_budget - 1] + "…" if label_budget > 1 else "")
        pct = 100.0 * frame.value / total if total else 0.0
        parts.append('<g class="frame">')
        parts.append(
            f'<rect x="{x:.2f}" y="{y}" width="{span_width:.2f}" '
            f'height="{row_h - 1}" fill="{_frame_color(frame.name)}">'
            f"<title>{_escape(frame.name)} — {frame.value:.6f}s "
            f"({pct:.2f}%)</title></rect>")
        if label:
            parts.append(
                f'<text x="{x + 3:.2f}" y="{y + row_h - 6}" '
                f'class="frame-label">{_escape(label)}</text>')
        parts.append("</g>")
        child_x = x
        for name in sorted(frame.children):
            child = frame.children[name]
            child_width = span_width * (child.value / frame.value)
            if child_width >= min_px:
                _emit(child, child_x, level + 1, child_width)
            child_x += child_width

    if total > 0.0:
        _emit(root, 8.0, 0, float(width - 16))
    else:
        parts.append(f'<text x="12" y="{header_h + 14}" class="subtitle">'
                     "no span cost recorded</text>")
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def folded_from_trees(trees: Iterable[SpanNode]) -> FoldedStacks:
    """Convenience: fold an iterable of completed span trees."""
    folded = FoldedStacks()
    for tree in trees:
        folded.add_tree(tree)
    return folded

"""Per-peer reputation timelines reconstructed from an event trace.

The simulator emits one ``reputation_snapshot`` event per peer at every
mechanism refresh (see :mod:`repro.simulator.simulation`); this module
folds those — plus the download stream — into :class:`PeerTimeline`
objects: reputation, service class, upload/download byte balance and
fake-served counts sampled along simulation time.  The dashboard and the
``repro monitor`` report both render from these, and the detectors'
view of the world can be cross-checked against them.

Everything is plain data derived deterministically from the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

__all__ = ["PeerSample", "PeerTimeline", "build_timelines",
           "class_mean_series", "fake_fraction_series"]


@dataclass(frozen=True)
class PeerSample:
    """One refresh-time observation of a peer."""

    t: float
    #: Global reputation score (mechanism scale).
    score: float
    #: Score normalised by the population maximum at the same refresh.
    norm: float
    #: Incentive bandwidth class, 0 (starved) .. 3 (full service).
    service_class: int
    bytes_up: float
    bytes_down: float
    fakes_served: int
    online: bool


@dataclass
class PeerTimeline:
    """All samples of one peer, in simulation-time order."""

    peer: str
    cls: str = "unknown"
    samples: List[PeerSample] = field(default_factory=list)

    @property
    def last(self) -> PeerSample:
        if not self.samples:
            raise ValueError(f"timeline for {self.peer} is empty")
        return self.samples[-1]

    def series(self, attribute: str) -> List[Tuple[float, float]]:
        """``(t, value)`` pairs for one sample attribute."""
        return [(sample.t, float(getattr(sample, attribute)))
                for sample in self.samples]


def build_timelines(events: Iterable[Mapping]) -> Dict[str, PeerTimeline]:
    """Peer id -> timeline, from a trace's ``reputation_snapshot`` events."""
    timelines: Dict[str, PeerTimeline] = {}
    for event in events:
        if event.get("event") != "reputation_snapshot":
            continue
        peer = str(event.get("peer"))
        timeline = timelines.setdefault(peer, PeerTimeline(peer=peer))
        timeline.cls = str(event.get("cls", timeline.cls))
        timeline.samples.append(PeerSample(
            t=float(event.get("t", 0.0)),
            score=float(event.get("score", 0.0)),
            norm=float(event.get("norm", 0.0)),
            service_class=int(event.get("service_class", 0)),
            bytes_up=float(event.get("bytes_up", 0.0)),
            bytes_down=float(event.get("bytes_down", 0.0)),
            fakes_served=int(event.get("fakes_served", 0)),
            online=bool(event.get("online", True)),
        ))
    return dict(sorted(timelines.items()))


def class_mean_series(timelines: Mapping[str, PeerTimeline],
                      attribute: str = "norm"
                      ) -> Dict[str, List[Tuple[float, float]]]:
    """Behaviour class -> mean of ``attribute`` across its peers per tick."""
    buckets: Dict[str, Dict[float, List[float]]] = {}
    for timeline in timelines.values():
        per_class = buckets.setdefault(timeline.cls, {})
        for sample in timeline.samples:
            per_class.setdefault(sample.t, []).append(
                float(getattr(sample, attribute)))
    series: Dict[str, List[Tuple[float, float]]] = {}
    for cls in sorted(buckets):
        series[cls] = [(t, sum(values) / len(values))
                       for t, values in sorted(buckets[cls].items())]
    return series


def fake_fraction_series(events: Iterable[Mapping],
                         window_seconds: float = 6 * 3600.0
                         ) -> List[Tuple[float, float, int]]:
    """``(window_end, fake_fraction, downloads)`` per fixed window.

    Mirrors the bucketing of the fake-outbreak detector so the dashboard
    curve and the detector's alerts line up.
    """
    if window_seconds <= 0:
        raise ValueError("window_seconds must be positive")
    counts: Dict[int, List[int]] = {}
    for event in events:
        if event.get("event") != "download":
            continue
        bucket = int(float(event.get("t", 0.0)) // window_seconds)
        pair = counts.setdefault(bucket, [0, 0])
        pair[0] += 1
        if event.get("fake"):
            pair[1] += 1
    return [((bucket + 1) * window_seconds,
             (fakes / downloads) if downloads else 0.0,
             downloads)
            for bucket, (downloads, fakes) in sorted(counts.items())]

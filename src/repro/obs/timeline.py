"""Per-peer reputation timelines reconstructed from an event trace.

The simulator emits one ``reputation_snapshot`` event per peer at every
mechanism refresh (see :mod:`repro.simulator.simulation`); this module
folds those — plus the download stream — into :class:`PeerTimeline`
objects: reputation, service class, upload/download byte balance and
fake-served counts sampled along simulation time.  The dashboard and the
``repro monitor`` report both render from these, and the detectors'
view of the world can be cross-checked against them.

Everything is plain data derived deterministically from the trace.

:class:`TimelineBuilder` and :class:`FakeFractionAccumulator` are the
feed-style (one event at a time) forms the single-pass dashboard uses so
one loop over a streamed trace can feed every consumer at once; the
function APIs wrap them.  Note timelines inherently hold one sample per
snapshot — they are the one dashboard input whose size scales with refresh
count (not with the raw event count), which is fine: snapshots are sparse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

__all__ = ["PeerSample", "PeerTimeline", "TimelineBuilder",
           "FakeFractionAccumulator", "build_timelines",
           "class_mean_series", "fake_fraction_series"]


@dataclass(frozen=True)
class PeerSample:
    """One refresh-time observation of a peer."""

    t: float
    #: Global reputation score (mechanism scale).
    score: float
    #: Score normalised by the population maximum at the same refresh.
    norm: float
    #: Incentive bandwidth class, 0 (starved) .. 3 (full service).
    service_class: int
    bytes_up: float
    bytes_down: float
    fakes_served: int
    online: bool


@dataclass
class PeerTimeline:
    """All samples of one peer, in simulation-time order."""

    peer: str
    cls: str = "unknown"
    samples: List[PeerSample] = field(default_factory=list)

    @property
    def last(self) -> PeerSample:
        if not self.samples:
            raise ValueError(f"timeline for {self.peer} is empty")
        return self.samples[-1]

    def series(self, attribute: str) -> List[Tuple[float, float]]:
        """``(t, value)`` pairs for one sample attribute."""
        return [(sample.t, float(getattr(sample, attribute)))
                for sample in self.samples]


class TimelineBuilder:
    """Feed-style timeline construction for single-pass trace consumers."""

    def __init__(self) -> None:
        self._timelines: Dict[str, PeerTimeline] = {}

    def feed(self, event: Mapping) -> None:
        """Absorb one event; non-snapshot kinds are ignored."""
        if event.get("event") != "reputation_snapshot":
            return
        peer = str(event.get("peer"))
        timeline = self._timelines.setdefault(peer, PeerTimeline(peer=peer))
        timeline.cls = str(event.get("cls", timeline.cls))
        timeline.samples.append(PeerSample(
            t=float(event.get("t", 0.0)),
            score=float(event.get("score", 0.0)),
            norm=float(event.get("norm", 0.0)),
            service_class=int(event.get("service_class", 0)),
            bytes_up=float(event.get("bytes_up", 0.0)),
            bytes_down=float(event.get("bytes_down", 0.0)),
            fakes_served=int(event.get("fakes_served", 0)),
            online=bool(event.get("online", True)),
        ))

    def finish(self) -> Dict[str, PeerTimeline]:
        """Peer id -> timeline, sorted by peer id."""
        return dict(sorted(self._timelines.items()))


def build_timelines(events: Iterable[Mapping]) -> Dict[str, PeerTimeline]:
    """Peer id -> timeline, from a trace's ``reputation_snapshot`` events."""
    builder = TimelineBuilder()
    for event in events:
        builder.feed(event)
    return builder.finish()


def class_mean_series(timelines: Mapping[str, PeerTimeline],
                      attribute: str = "norm"
                      ) -> Dict[str, List[Tuple[float, float]]]:
    """Behaviour class -> mean of ``attribute`` across its peers per tick."""
    buckets: Dict[str, Dict[float, List[float]]] = {}
    for timeline in timelines.values():
        per_class = buckets.setdefault(timeline.cls, {})
        for sample in timeline.samples:
            per_class.setdefault(sample.t, []).append(
                float(getattr(sample, attribute)))
    series: Dict[str, List[Tuple[float, float]]] = {}
    for cls in sorted(buckets):
        series[cls] = [(t, sum(values) / len(values))
                       for t, values in sorted(buckets[cls].items())]
    return series


class FakeFractionAccumulator:
    """Feed-style windowed fake-fraction counting (one counter per window).

    Mirrors the bucketing of the fake-outbreak detector so the dashboard
    curve and the detector's alerts line up.
    """

    def __init__(self, window_seconds: float = 6 * 3600.0) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.window_seconds = window_seconds
        self._counts: Dict[int, List[int]] = {}

    def feed(self, event: Mapping) -> None:
        """Absorb one event; non-download kinds are ignored."""
        if event.get("event") != "download":
            return
        bucket = int(float(event.get("t", 0.0)) // self.window_seconds)
        pair = self._counts.setdefault(bucket, [0, 0])
        pair[0] += 1
        if event.get("fake"):
            pair[1] += 1

    def finish(self) -> List[Tuple[float, float, int]]:
        """``(window_end, fake_fraction, downloads)`` per fixed window."""
        return [((bucket + 1) * self.window_seconds,
                 (fakes / downloads) if downloads else 0.0,
                 downloads)
                for bucket, (downloads, fakes)
                in sorted(self._counts.items())]


def fake_fraction_series(events: Iterable[Mapping],
                         window_seconds: float = 6 * 3600.0
                         ) -> List[Tuple[float, float, int]]:
    """``(window_end, fake_fraction, downloads)`` per fixed window."""
    accumulator = FakeFractionAccumulator(window_seconds)
    for event in events:
        accumulator.feed(event)
    return accumulator.finish()

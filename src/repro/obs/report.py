"""Summarise an event trace: the analysis half of ``repro report``.

Input is a sequence of event dicts (usually loaded from a JSONL trace via
:func:`repro.obs.events.read_events`); output is plain data — the CLI owns
rendering.  The summary answers the questions the paper's claims are about:
per-class wait-time percentiles (service differentiation, §3.4), multitrust
convergence residuals per iteration (Eq. 8), and DHT hop/retry
distributions (§4 routing cost under faults).

Event kinds the summariser has no dedicated aggregation for are counted in
an ``unrecognized`` bucket (on top of the raw ``event_counts``), so newly
instrumented events surface loudly in reports instead of vanishing.

:func:`summary_to_dict` renders a summary as the stable JSON schema behind
``repro report --json``; ``repro diff-trace`` compares two traces through
the same schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping

from .stats import summarize

__all__ = ["TraceSummary", "summarize_trace", "summary_to_dict",
           "KNOWN_EVENT_KINDS", "SUMMARY_SCHEMA"]

Summary = Dict[str, float]

#: Bump when the ``summary_to_dict`` layout changes incompatibly.
SUMMARY_SCHEMA = 1

#: Every event kind the instrumentation layer emits on purpose.  A kind
#: outside this set lands in :attr:`TraceSummary.unrecognized`.
KNOWN_EVENT_KINDS = frozenset({
    # simulator
    "request", "download", "blocked_fake", "request_rejected",
    "fake_removal", "peer_join", "peer_leave", "whitewash", "maintenance",
    "reputation_snapshot", "trust_edge",
    # core
    "multitrust_iteration", "pipeline_refresh",
    # DHT / chaos
    "dht_lookup", "dht_publish", "dht_retrieve", "dht_repair",
    "dht_node_join", "chaos_cell_start", "chaos_cell_end",
    "churn_crash", "churn_rejoin",
    # monitoring
    "alert",
    # durability (WAL + crash recovery)
    "wal.snapshot", "recovery.complete", "recovery.quarantined",
})


@dataclass
class TraceSummary:
    """Everything ``repro report`` prints about one trace."""

    total_events: int = 0
    #: Simulation-time span covered by the trace.
    start_time: float = 0.0
    end_time: float = 0.0
    #: Event kind -> occurrence count.
    event_counts: Dict[str, int] = field(default_factory=dict)
    #: Event kinds outside :data:`KNOWN_EVENT_KINDS` -> occurrence count.
    unrecognized: Dict[str, int] = field(default_factory=dict)
    #: Behaviour class -> wait-time summary (count/mean/p50/p95/p99).
    wait_by_class: Dict[str, Summary] = field(default_factory=dict)
    #: Behaviour class -> {downloads, fakes, blocked}.
    outcomes_by_class: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Multitrust iteration number -> residual summary across computations.
    multitrust_residuals: Dict[int, Summary] = field(default_factory=dict)
    #: Incremental-pipeline refresh behaviour: refresh mode -> count, plus
    #: distributions of rows rebuilt and rebuild ratio per refresh.
    pipeline_refresh_modes: Dict[str, int] = field(default_factory=dict)
    pipeline_rows_rebuilt: Summary = field(default_factory=dict)
    pipeline_rebuild_ratio: Summary = field(default_factory=dict)
    #: DHT lookup hop / retry distributions and failure count.
    dht_hops: Summary = field(default_factory=dict)
    dht_retries: Summary = field(default_factory=dict)
    dht_failed_lookups: int = 0
    #: DHT quorum reads observed / reads that missed their quorum.
    dht_retrievals: int = 0
    dht_retrievals_incomplete: int = 0
    #: Latency from a fake copy's creation to its removal.
    fake_removal_latency: Summary = field(default_factory=dict)
    #: Alert severity -> count (``alert`` events embedded in the trace).
    alert_counts: Dict[str, int] = field(default_factory=dict)


def summarize_trace(events: Iterable[Mapping]) -> TraceSummary:
    """Aggregate a trace's events into a :class:`TraceSummary`."""
    counts: Dict[str, int] = {}
    unrecognized: Dict[str, int] = {}
    times: List[float] = []
    waits: Dict[str, List[float]] = {}
    outcomes: Dict[str, Dict[str, int]] = {}
    residuals: Dict[int, List[float]] = {}
    refresh_modes: Dict[str, int] = {}
    rows_rebuilt: List[float] = []
    rebuild_ratios: List[float] = []
    hops: List[float] = []
    retries: List[float] = []
    failed_lookups = 0
    retrievals = 0
    retrievals_incomplete = 0
    removal_latencies: List[float] = []
    alert_counts: Dict[str, int] = {}
    total = 0

    for event in events:
        total += 1
        kind = str(event.get("event", "unknown"))
        counts[kind] = counts.get(kind, 0) + 1
        if kind not in KNOWN_EVENT_KINDS:
            unrecognized[kind] = unrecognized.get(kind, 0) + 1
        t = event.get("t")
        if isinstance(t, (int, float)):
            times.append(float(t))

        if kind == "download":
            cls = str(event.get("cls", "unknown"))
            waits.setdefault(cls, []).append(float(event.get("wait", 0.0)))
            bucket = _outcome_bucket(outcomes, cls)
            bucket["downloads"] += 1
            if event.get("fake"):
                bucket["fakes"] += 1
        elif kind == "blocked_fake":
            _outcome_bucket(outcomes, str(event.get("cls", "unknown")))[
                "blocked"] += 1
        elif kind == "multitrust_iteration":
            iteration = int(event.get("iteration", 0))
            residual = event.get("residual")
            if isinstance(residual, (int, float)):
                residuals.setdefault(iteration, []).append(float(residual))
        elif kind == "pipeline_refresh":
            mode = str(event.get("mode", "unknown"))
            refresh_modes[mode] = refresh_modes.get(mode, 0) + 1
            rebuilt = event.get("rows_rebuilt")
            if isinstance(rebuilt, (int, float)):
                rows_rebuilt.append(float(rebuilt))
            ratio = event.get("rebuild_ratio")
            if isinstance(ratio, (int, float)):
                rebuild_ratios.append(float(ratio))
        elif kind == "dht_lookup":
            hops.append(float(event.get("hops", 0)))
            retries.append(float(event.get("retries", 0)))
            if not event.get("ok", True):
                failed_lookups += 1
        elif kind == "dht_retrieve":
            retrievals += 1
            if not event.get("complete", True):
                retrievals_incomplete += 1
        elif kind == "fake_removal":
            latency = event.get("latency")
            if isinstance(latency, (int, float)):
                removal_latencies.append(float(latency))
        elif kind == "alert":
            severity = str(event.get("severity", "info"))
            alert_counts[severity] = alert_counts.get(severity, 0) + 1

    return TraceSummary(
        total_events=total,
        start_time=min(times) if times else 0.0,
        end_time=max(times) if times else 0.0,
        event_counts=dict(sorted(counts.items())),
        unrecognized=dict(sorted(unrecognized.items())),
        wait_by_class={cls: summarize(values)
                       for cls, values in sorted(waits.items())},
        outcomes_by_class=dict(sorted(outcomes.items())),
        multitrust_residuals={iteration: summarize(values)
                              for iteration, values
                              in sorted(residuals.items())},
        pipeline_refresh_modes=dict(sorted(refresh_modes.items())),
        pipeline_rows_rebuilt=summarize(rows_rebuilt),
        pipeline_rebuild_ratio=summarize(rebuild_ratios),
        dht_hops=summarize(hops),
        dht_retries=summarize(retries),
        dht_failed_lookups=failed_lookups,
        dht_retrievals=retrievals,
        dht_retrievals_incomplete=retrievals_incomplete,
        fake_removal_latency=summarize(removal_latencies),
        alert_counts=dict(sorted(alert_counts.items())),
    )


def summary_to_dict(summary: TraceSummary) -> Dict[str, object]:
    """The stable, JSON-serialisable schema behind ``repro report --json``.

    ``repro diff-trace`` diffs two traces through this same layout; keep it
    backward compatible or bump :data:`SUMMARY_SCHEMA`.
    """
    return {
        "schema": SUMMARY_SCHEMA,
        "total_events": summary.total_events,
        "start_time": summary.start_time,
        "end_time": summary.end_time,
        "event_counts": dict(summary.event_counts),
        "unrecognized": dict(summary.unrecognized),
        "wait_by_class": {cls: dict(values) for cls, values
                          in summary.wait_by_class.items()},
        "outcomes_by_class": {cls: dict(values) for cls, values
                              in summary.outcomes_by_class.items()},
        "multitrust_residuals": {str(iteration): dict(values)
                                 for iteration, values
                                 in summary.multitrust_residuals.items()},
        "pipeline": {
            "refresh_modes": dict(summary.pipeline_refresh_modes),
            "rows_rebuilt": dict(summary.pipeline_rows_rebuilt),
            "rebuild_ratio": dict(summary.pipeline_rebuild_ratio),
        },
        "dht": {
            "hops": dict(summary.dht_hops),
            "retries": dict(summary.dht_retries),
            "failed_lookups": summary.dht_failed_lookups,
            "retrievals": summary.dht_retrievals,
            "retrievals_incomplete": summary.dht_retrievals_incomplete,
        },
        "fake_removal_latency": dict(summary.fake_removal_latency),
        "alert_counts": dict(summary.alert_counts),
    }


def _outcome_bucket(outcomes: Dict[str, Dict[str, int]],
                    cls: str) -> Dict[str, int]:
    return outcomes.setdefault(
        cls, {"downloads": 0, "fakes": 0, "blocked": 0})

"""Summarise an event trace: the analysis half of ``repro report``.

Input is a *stream* of event dicts (usually from
:func:`repro.obs.traceio.iter_trace_events`, which accepts JSONL and
binary traces alike); output is plain data — the CLI owns rendering.  The
summary answers the questions the paper's claims are about: per-class
wait-time percentiles (service differentiation, §3.4), multitrust
convergence residuals per iteration (Eq. 8), and DHT hop/retry
distributions (§4 routing cost under faults).

:class:`TraceSummarizer` is strictly single-pass and bounded-memory: every
distribution is held as a :class:`~repro.obs.stats.QuantileSketch` (exact
up to the sketch budget, deterministic compression past it) and every
count as a plain online counter, so summarising a 10⁶-event trace costs
the same memory as a 10³-event one.  :func:`summarize_trace` keeps the old
one-shot API on top of it.

Event kinds the summariser has no dedicated aggregation for are counted in
an ``unrecognized`` bucket (on top of the raw ``event_counts``), so newly
instrumented events surface loudly in reports instead of vanishing.

:func:`summary_to_dict` renders a summary as the stable JSON schema behind
``repro report --json``; ``repro diff-trace`` compares two traces through
the same schema.  Schema 2 adds the optional ``profile`` section —
p50/p95/p99 per profiled phase from a profiler snapshot captured with
``--profile-out`` — and marks the sketch-backed percentile semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

from .stats import QuantileSketch

__all__ = ["TraceSummary", "TraceSummarizer", "summarize_trace",
           "summary_to_dict", "KNOWN_EVENT_KINDS", "SUMMARY_SCHEMA"]

Summary = Dict[str, float]

#: Bump when the ``summary_to_dict`` layout changes incompatibly.
#: 2: percentiles are sketch-backed (exact for small traces), and the
#: document gains a ``profile`` section (empty without ``--profile``).
SUMMARY_SCHEMA = 2

#: Every event kind the instrumentation layer emits on purpose.  A kind
#: outside this set lands in :attr:`TraceSummary.unrecognized`.
KNOWN_EVENT_KINDS = frozenset({
    # simulator
    "request", "download", "blocked_fake", "request_rejected",
    "fake_removal", "peer_join", "peer_leave", "whitewash", "maintenance",
    "reputation_snapshot", "trust_edge",
    # core
    "multitrust_iteration", "pipeline_refresh",
    # DHT / chaos
    "dht_lookup", "dht_publish", "dht_retrieve", "dht_repair",
    "dht_node_join", "chaos_cell_start", "chaos_cell_end",
    "churn_crash", "churn_rejoin",
    # monitoring
    "alert",
    # causal spans (minor 1 of the binary trace format)
    "span",
    # durability (WAL + crash recovery)
    "wal.snapshot", "recovery.complete", "recovery.quarantined",
})


@dataclass
class TraceSummary:
    """Everything ``repro report`` prints about one trace."""

    total_events: int = 0
    #: Simulation-time span covered by the trace.
    start_time: float = 0.0
    end_time: float = 0.0
    #: Event kind -> occurrence count.
    event_counts: Dict[str, int] = field(default_factory=dict)
    #: Event kinds outside :data:`KNOWN_EVENT_KINDS` -> occurrence count.
    unrecognized: Dict[str, int] = field(default_factory=dict)
    #: Behaviour class -> wait-time summary (count/mean/p50/p95/p99).
    wait_by_class: Dict[str, Summary] = field(default_factory=dict)
    #: Behaviour class -> {downloads, fakes, blocked}.
    outcomes_by_class: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Multitrust iteration number -> residual summary across computations.
    multitrust_residuals: Dict[int, Summary] = field(default_factory=dict)
    #: Incremental-pipeline refresh behaviour: refresh mode -> count, plus
    #: distributions of rows rebuilt and rebuild ratio per refresh.
    pipeline_refresh_modes: Dict[str, int] = field(default_factory=dict)
    pipeline_rows_rebuilt: Summary = field(default_factory=dict)
    pipeline_rebuild_ratio: Summary = field(default_factory=dict)
    #: DHT lookup hop / retry distributions and failure count.
    dht_hops: Summary = field(default_factory=dict)
    dht_retries: Summary = field(default_factory=dict)
    dht_failed_lookups: int = 0
    #: DHT quorum reads observed / reads that missed their quorum.
    dht_retrievals: int = 0
    dht_retrievals_incomplete: int = 0
    #: Latency from a fake copy's creation to its removal.
    fake_removal_latency: Summary = field(default_factory=dict)
    #: Alert severity -> count (``alert`` events embedded in the trace).
    alert_counts: Dict[str, int] = field(default_factory=dict)
    #: Optional wall-clock profile (phase -> snapshot dict) attached by the
    #: CLI from a ``--profile-out`` capture; never derived from the trace.
    profile: Dict[str, Dict[str, object]] = field(default_factory=dict)


class TraceSummarizer:
    """Online trace aggregation: feed events one at a time, then finish.

    Holds only counters and fixed-budget quantile sketches — never the
    events themselves — so the summariser's memory is independent of the
    trace length.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._unrecognized: Dict[str, int] = {}
        self._t_min = float("inf")
        self._t_max = float("-inf")
        self._has_time = False
        self._waits: Dict[str, QuantileSketch] = {}
        self._outcomes: Dict[str, Dict[str, int]] = {}
        self._residuals: Dict[int, QuantileSketch] = {}
        self._refresh_modes: Dict[str, int] = {}
        self._rows_rebuilt = QuantileSketch()
        self._rebuild_ratios = QuantileSketch()
        self._hops = QuantileSketch()
        self._retries = QuantileSketch()
        self._failed_lookups = 0
        self._retrievals = 0
        self._retrievals_incomplete = 0
        self._removal_latency = QuantileSketch()
        self._alert_counts: Dict[str, int] = {}
        self._total = 0

    def feed(self, event: Mapping) -> None:
        """Absorb one event into the running aggregates."""
        self._total += 1
        kind = str(event.get("event", "unknown"))
        self._counts[kind] = self._counts.get(kind, 0) + 1
        if kind not in KNOWN_EVENT_KINDS:
            self._unrecognized[kind] = self._unrecognized.get(kind, 0) + 1
        t = event.get("t")
        if isinstance(t, (int, float)):
            t_value = float(t)
            self._has_time = True
            if t_value < self._t_min:
                self._t_min = t_value
            if t_value > self._t_max:
                self._t_max = t_value

        if kind == "download":
            cls = str(event.get("cls", "unknown"))
            sketch = self._waits.get(cls)
            if sketch is None:
                sketch = self._waits[cls] = QuantileSketch()
            sketch.observe(float(event.get("wait", 0.0)))
            bucket = _outcome_bucket(self._outcomes, cls)
            bucket["downloads"] += 1
            if event.get("fake"):
                bucket["fakes"] += 1
        elif kind == "blocked_fake":
            _outcome_bucket(self._outcomes,
                            str(event.get("cls", "unknown")))["blocked"] += 1
        elif kind == "multitrust_iteration":
            iteration = int(event.get("iteration", 0))
            residual = event.get("residual")
            if isinstance(residual, (int, float)):
                sketch = self._residuals.get(iteration)
                if sketch is None:
                    sketch = self._residuals[iteration] = QuantileSketch()
                sketch.observe(float(residual))
        elif kind == "pipeline_refresh":
            mode = str(event.get("mode", "unknown"))
            self._refresh_modes[mode] = self._refresh_modes.get(mode, 0) + 1
            rebuilt = event.get("rows_rebuilt")
            if isinstance(rebuilt, (int, float)):
                self._rows_rebuilt.observe(float(rebuilt))
            ratio = event.get("rebuild_ratio")
            if isinstance(ratio, (int, float)):
                self._rebuild_ratios.observe(float(ratio))
        elif kind == "dht_lookup":
            self._hops.observe(float(event.get("hops", 0)))
            self._retries.observe(float(event.get("retries", 0)))
            if not event.get("ok", True):
                self._failed_lookups += 1
        elif kind == "dht_retrieve":
            self._retrievals += 1
            if not event.get("complete", True):
                self._retrievals_incomplete += 1
        elif kind == "fake_removal":
            latency = event.get("latency")
            if isinstance(latency, (int, float)):
                self._removal_latency.observe(float(latency))
        elif kind == "alert":
            severity = str(event.get("severity", "info"))
            self._alert_counts[severity] = (
                self._alert_counts.get(severity, 0) + 1)

    def finish(self) -> TraceSummary:
        """Freeze the aggregates into a :class:`TraceSummary`."""
        return TraceSummary(
            total_events=self._total,
            start_time=self._t_min if self._has_time else 0.0,
            end_time=self._t_max if self._has_time else 0.0,
            event_counts=dict(sorted(self._counts.items())),
            unrecognized=dict(sorted(self._unrecognized.items())),
            wait_by_class={cls: sketch.summary()
                           for cls, sketch in sorted(self._waits.items())},
            outcomes_by_class=dict(sorted(self._outcomes.items())),
            multitrust_residuals={iteration: sketch.summary()
                                  for iteration, sketch
                                  in sorted(self._residuals.items())},
            pipeline_refresh_modes=dict(sorted(self._refresh_modes.items())),
            pipeline_rows_rebuilt=self._rows_rebuilt.summary(),
            pipeline_rebuild_ratio=self._rebuild_ratios.summary(),
            dht_hops=self._hops.summary(),
            dht_retries=self._retries.summary(),
            dht_failed_lookups=self._failed_lookups,
            dht_retrievals=self._retrievals,
            dht_retrievals_incomplete=self._retrievals_incomplete,
            fake_removal_latency=self._removal_latency.summary(),
            alert_counts=dict(sorted(self._alert_counts.items())),
        )


def summarize_trace(events: Iterable[Mapping]) -> TraceSummary:
    """Aggregate a trace's events into a :class:`TraceSummary`.

    One streaming pass over ``events``; accepts any iterable, including
    the lazy readers, without materialising it.
    """
    summarizer = TraceSummarizer()
    for event in events:
        summarizer.feed(event)
    return summarizer.finish()


def summary_to_dict(summary: TraceSummary,
                    profile: Optional[Mapping[str, Mapping]] = None
                    ) -> Dict[str, object]:
    """The stable, JSON-serialisable schema behind ``repro report --json``.

    ``repro diff-trace`` diffs two traces through this same layout; keep it
    backward compatible or bump :data:`SUMMARY_SCHEMA`.  ``profile``
    overrides the summary's attached profile section when given.
    """
    profile_section = (profile if profile is not None else summary.profile)
    return {
        "schema": SUMMARY_SCHEMA,
        "total_events": summary.total_events,
        "start_time": summary.start_time,
        "end_time": summary.end_time,
        "event_counts": dict(summary.event_counts),
        "unrecognized": dict(summary.unrecognized),
        "wait_by_class": {cls: dict(values) for cls, values
                          in summary.wait_by_class.items()},
        "outcomes_by_class": {cls: dict(values) for cls, values
                              in summary.outcomes_by_class.items()},
        "multitrust_residuals": {str(iteration): dict(values)
                                 for iteration, values
                                 in summary.multitrust_residuals.items()},
        "pipeline": {
            "refresh_modes": dict(summary.pipeline_refresh_modes),
            "rows_rebuilt": dict(summary.pipeline_rows_rebuilt),
            "rebuild_ratio": dict(summary.pipeline_rebuild_ratio),
        },
        "dht": {
            "hops": dict(summary.dht_hops),
            "retries": dict(summary.dht_retries),
            "failed_lookups": summary.dht_failed_lookups,
            "retrievals": summary.dht_retrievals,
            "retrievals_incomplete": summary.dht_retrievals_incomplete,
        },
        "fake_removal_latency": dict(summary.fake_removal_latency),
        "alert_counts": dict(summary.alert_counts),
        "profile": {name: dict(stats)
                    for name, stats in sorted(profile_section.items())},
    }


def _outcome_bucket(outcomes: Dict[str, Dict[str, int]],
                    cls: str) -> Dict[str, int]:
    return outcomes.setdefault(
        cls, {"downloads": 0, "fakes": 0, "blocked": 0})

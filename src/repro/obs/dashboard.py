"""Self-contained HTML dashboard rendered from one event trace.

``repro dashboard events.jsonl -o dash.html`` turns a saved trace into a
single HTML file: reputation-timeline charts per behaviour class, the
fake-download fraction over time, the alert stream, and a final-state peer
table.  Everything is inline — hand-rolled SVG polylines and embedded CSS,
no JavaScript frameworks, no network fetches — so the file can be archived
as a CI artifact and opened anywhere.

Rendering is deterministic: same trace bytes in, same HTML bytes out.

The trace is consumed in a **single streaming pass**: one loop feeds the
monitor replay, the summariser, the timeline builder and the fake-fraction
windows simultaneously, so the dashboard never materialises the event list
and renders million-event binary traces in bounded memory (timelines keep
one sample per reputation snapshot — sparse by construction).
"""

from __future__ import annotations

import html
from typing import Iterable, List, Mapping, Sequence, Tuple

from .alerts import Alert
from .monitor import Monitor, MonitorResult
from .report import TraceSummarizer, TraceSummary
from .timeline import (FakeFractionAccumulator, PeerTimeline,
                       TimelineBuilder, class_mean_series)

__all__ = ["render_dashboard"]

#: Fixed palette; classes are assigned colours in sorted order so the
#: mapping is stable across runs.
_PALETTE = ("#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
            "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf")

_SEVERITY_COLOURS = {"info": "#1f77b4", "warning": "#ff7f0e",
                     "critical": "#d62728"}

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Helvetica, Arial, sans-serif;
       margin: 2rem auto; max-width: 70rem; color: #222; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; font-size: 0.85rem; }
th, td { border: 1px solid #ccc; padding: 0.25rem 0.6rem; text-align: left; }
th { background: #f2f2f2; }
.sev-critical { color: #d62728; font-weight: bold; }
.sev-warning { color: #b35900; }
.sev-info { color: #1f77b4; }
.legend span { margin-right: 1rem; }
.swatch { display: inline-block; width: 0.8rem; height: 0.8rem;
          margin-right: 0.3rem; vertical-align: middle; }
.muted { color: #777; }
svg { background: #fafafa; border: 1px solid #ddd; }
"""


def _fmt_t(seconds: float) -> str:
    """Simulation time as hours, compact."""
    return f"{seconds / 3600.0:.1f}h"


def _polyline(points: Sequence[Tuple[float, float]],
              t_range: Tuple[float, float], v_range: Tuple[float, float],
              width: int, height: int, pad: int) -> str:
    """Scale ``(t, value)`` points into SVG pixel space."""
    t_lo, t_hi = t_range
    v_lo, v_hi = v_range
    t_span = (t_hi - t_lo) or 1.0
    v_span = (v_hi - v_lo) or 1.0
    coords = []
    for t, value in points:
        x = pad + (t - t_lo) / t_span * (width - 2 * pad)
        y = height - pad - (value - v_lo) / v_span * (height - 2 * pad)
        coords.append(f"{x:.1f},{y:.1f}")
    return " ".join(coords)


def _line_chart(series: Mapping[str, List[Tuple[float, float]]],
                title: str, v_label: str,
                width: int = 640, height: int = 260,
                v_max: float = 1.0) -> str:
    """One SVG line chart with a legend; one line per series key."""
    pad = 34
    all_points = [p for points in series.values() for p in points]
    if not all_points:
        return (f"<h2>{html.escape(title)}</h2>"
                "<p class='muted'>no data in trace</p>")
    t_lo = min(t for t, _ in all_points)
    t_hi = max(t for t, _ in all_points)
    v_hi = max(v_max, max(v for _, v in all_points))
    parts = [f"<h2>{html.escape(title)}</h2>",
             f'<svg width="{width}" height="{height}" role="img" '
             f'aria-label="{html.escape(title)}">']
    # Axes + gridlines at quarter marks of the value range.
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        y = height - pad - frac * (height - 2 * pad)
        parts.append(f'<line x1="{pad}" y1="{y:.1f}" x2="{width - pad}" '
                     f'y2="{y:.1f}" stroke="#ddd"/>')
        parts.append(f'<text x="4" y="{y + 4:.1f}" font-size="10" '
                     f'fill="#777">{frac * v_hi:.2f}</text>')
    parts.append(f'<text x="{pad}" y="{height - 6}" font-size="10" '
                 f'fill="#777">{_fmt_t(t_lo)}</text>')
    parts.append(f'<text x="{width - pad - 30}" y="{height - 6}" '
                 f'font-size="10" fill="#777">{_fmt_t(t_hi)}</text>')
    parts.append(f'<text x="4" y="14" font-size="10" fill="#777">'
                 f'{html.escape(v_label)}</text>')
    legend = ["<p class='legend'>"]
    for index, name in enumerate(sorted(series)):
        points = series[name]
        if not points:
            continue
        colour = _PALETTE[index % len(_PALETTE)]
        parts.append(f'<polyline fill="none" stroke="{colour}" '
                     f'stroke-width="1.5" points="'
                     f'{_polyline(points, (t_lo, t_hi), (0.0, v_hi), width, height, pad)}"/>')
        legend.append(f'<span><span class="swatch" style="background:'
                      f'{colour}"></span>{html.escape(name)}</span>')
    legend.append("</p>")
    parts.append("</svg>")
    parts.extend(legend)
    return "".join(parts)


def _summary_section(summary: TraceSummary,
                     result: MonitorResult) -> str:
    by_severity = result.counts_by_severity()
    alerts = " · ".join(f"{count} {severity}"
                        for severity, count in by_severity.items()) or "none"
    repro = ("reproduced recorded alert stream" if result.recorded_alerts
             else "trace carries no recorded alerts")
    if result.recorded_alerts and not result.reproduces_recorded:
        repro = "<b class='sev-critical'>DIVERGES from recorded alerts</b>"
    return (
        "<table>"
        f"<tr><th>events</th><td>{summary.total_events}</td></tr>"
        f"<tr><th>time span</th><td>{_fmt_t(summary.start_time)} – "
        f"{_fmt_t(summary.end_time)}</td></tr>"
        f"<tr><th>alerts</th><td>{alerts}</td></tr>"
        f"<tr><th>replay check</th><td>{repro}</td></tr>"
        "</table>")


def _alerts_section(result: MonitorResult) -> str:
    if not result.alerts:
        return "<h2>Alerts</h2><p class='muted'>no alerts raised</p>"
    rows = ["<h2>Alerts</h2>", "<table>",
            "<tr><th>t</th><th>severity</th><th>detector</th>"
            "<th>message</th></tr>"]
    for alert in result.alerts:
        rows.append(
            f"<tr><td>{_fmt_t(alert.t)}</td>"
            f"<td class='sev-{html.escape(alert.severity)}'>"
            f"{html.escape(alert.severity)}</td>"
            f"<td>{html.escape(alert.detector)}</td>"
            f"<td>{html.escape(alert.message)}</td></tr>")
    rows.append("</table>")
    return "".join(rows)


def _peer_table(timelines: Mapping[str, PeerTimeline],
                max_rows: int = 40) -> str:
    if not timelines:
        return ("<h2>Peers (final refresh)</h2>"
                "<p class='muted'>no reputation snapshots in trace</p>")
    ranked = sorted(timelines.values(),
                    key=lambda tl: (-tl.last.norm, tl.peer))
    rows = ["<h2>Peers (final refresh)</h2>", "<table>",
            "<tr><th>peer</th><th>class</th><th>reputation</th>"
            "<th>service</th><th>up / down MiB</th><th>fakes served</th>"
            "<th>online</th></tr>"]
    for timeline in ranked[:max_rows]:
        last = timeline.last
        mib = 1024.0 * 1024.0
        rows.append(
            f"<tr><td>{html.escape(timeline.peer)}</td>"
            f"<td>{html.escape(timeline.cls)}</td>"
            f"<td>{last.norm:.3f}</td><td>{last.service_class}</td>"
            f"<td>{last.bytes_up / mib:.1f} / {last.bytes_down / mib:.1f}</td>"
            f"<td>{last.fakes_served}</td>"
            f"<td>{'yes' if last.online else 'no'}</td></tr>")
    rows.append("</table>")
    if len(ranked) > max_rows:
        rows.append(f"<p class='muted'>… and {len(ranked) - max_rows} more "
                    "peers (truncated)</p>")
    return "".join(rows)


def render_dashboard(events: Iterable[Mapping],
                     title: str = "repro reputation dashboard") -> str:
    """The whole dashboard as one self-contained HTML document.

    ``events`` may be any iterable — including the lazy trace readers —
    and is consumed exactly once.
    """
    monitor = Monitor.default()
    result = MonitorResult()
    summarizer = TraceSummarizer()
    timeline_builder = TimelineBuilder()
    fake_windows = FakeFractionAccumulator()
    for event in events:
        result.events_seen += 1
        if event.get("event") == "alert":
            result.recorded_alerts.append(Alert.from_event(event))
        else:
            result.alerts.extend(monitor.feed(event))
        summarizer.feed(event)
        timeline_builder.feed(event)
        fake_windows.feed(event)
    result.alerts.extend(monitor.finish())
    summary = summarizer.finish()
    timelines = timeline_builder.finish()
    fake_series = fake_windows.finish()
    sections = [
        "<!DOCTYPE html>",
        "<html lang='en'><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        _summary_section(summary, result),
        _line_chart(class_mean_series(timelines, "norm"),
                    "Mean normalised reputation by behaviour class",
                    "reputation"),
        _line_chart({"fake fraction": [(t, frac)
                                       for t, frac, _ in fake_series]},
                    "Fake-download fraction (6h windows)", "fraction"),
        _line_chart(class_mean_series(timelines, "service_class"),
                    "Mean service class by behaviour class",
                    "class (0-3)", v_max=3.0),
        _alerts_section(result),
        _peer_table(timelines),
        "</body></html>",
    ]
    return "\n".join(sections) + "\n"

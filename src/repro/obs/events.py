"""Structured event tracing: append-only, simulation-time-keyed records.

Every event is a flat dict with three reserved fields — ``seq`` (emission
order), ``t`` (*simulation* time, never wall clock) and ``event`` (the kind)
— plus arbitrary caller fields.  Records serialise with sorted keys, so two
runs at the same seed produce byte-identical trace files; that determinism
is what lets CI diff a trace instead of eyeballing it.

Two storage modes:

* **buffered** (the default): events accumulate in memory and are exported
  at the end via :meth:`EventTrace.write` — convenient for tests and short
  runs;
* **spilled**: construct the trace with a ``spill`` sink (any object with
  ``append(record)`` — e.g. :class:`repro.obs.traceio.TraceWriter` or
  :class:`repro.obs.traceio.JsonlTraceWriter`) and every record streams
  straight out instead of buffering, so a 10⁶-event run holds at most one
  chunk of events in memory.  Kind counts and the record count stay
  available; whole-trace introspection (``of_kind``, iteration, export)
  does not, because the events are already on disk.

:func:`read_events` is a *generator*: consumers stream a JSONL trace one
record at a time instead of materialising it (``list(read_events(p))``
restores the old behaviour where needed).
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, Union

__all__ = ["EventTrace", "read_events"]

FieldValue = Union[str, int, float, bool, None]


class EventTrace:
    """Event buffer with JSONL export, or a pass-through to a spill sink."""

    def __init__(self, spill: Optional[object] = None) -> None:
        self._events: List[Dict[str, FieldValue]] = []
        self._spill = spill
        self._count = 0
        self._kinds: Dict[str, int] = {}

    def record(self, kind: str, t: float,
               **fields: FieldValue) -> Dict[str, FieldValue]:
        """Append one event; returns the stored record."""
        for reserved in ("seq", "t", "event"):
            if reserved in fields:
                raise ValueError(f"field name {reserved!r} is reserved")
        record: Dict[str, FieldValue] = {
            "seq": self._count, "t": float(t), "event": kind}
        record.update(fields)
        self._count += 1
        self._kinds[kind] = self._kinds.get(kind, 0) + 1
        if self._spill is not None:
            self._spill.append(record)
        else:
            self._events.append(record)
        return record

    @property
    def spilled(self) -> bool:
        """True when records stream to a sink instead of buffering."""
        return self._spill is not None

    def _require_buffered(self, what: str) -> None:
        if self._spill is not None:
            raise ValueError(
                f"{what} needs the in-memory buffer, but this trace spills "
                "to a sink; read the events back from the sink's file")

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Dict[str, FieldValue]]:
        self._require_buffered("iteration")
        return iter(self._events)

    def of_kind(self, kind: str) -> List[Dict[str, FieldValue]]:
        self._require_buffered("of_kind")
        return [event for event in self._events if event["event"] == kind]

    def kinds(self) -> Dict[str, int]:
        """Event-kind -> occurrence count, sorted by kind."""
        return dict(sorted(self._kinds.items()))

    def lines(self) -> Iterator[str]:
        """One canonical JSON line per event (sorted keys)."""
        self._require_buffered("lines")
        for event in self._events:
            yield json.dumps(event, sort_keys=True, separators=(",", ":"))

    def write(self, path: str) -> int:
        """Write the trace as JSONL; returns the number of records."""
        self._require_buffered("write")
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.lines():
                handle.write(line + "\n")
        return self._count


def read_events(path: str) -> Iterator[Dict[str, FieldValue]]:
    """Stream a JSONL event trace written by :meth:`EventTrace.write`.

    Yields one record dict per line; validation errors surface lazily as
    the offending line is reached, so a million-event trace is never held
    in memory.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: invalid JSON: {error}") from None
            if not isinstance(record, dict) or "event" not in record:
                raise ValueError(
                    f"{path}:{line_number}: not an event record")
            yield record

"""Structured event tracing: append-only, simulation-time-keyed JSONL.

Every event is a flat dict with three reserved fields — ``seq`` (emission
order), ``t`` (*simulation* time, never wall clock) and ``event`` (the kind)
— plus arbitrary caller fields.  Records serialise with sorted keys, so two
runs at the same seed produce byte-identical trace files; that determinism
is what lets CI diff a trace instead of eyeballing it.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Union

__all__ = ["EventTrace", "read_events"]

FieldValue = Union[str, int, float, bool, None]


class EventTrace:
    """In-memory event buffer with JSONL export."""

    def __init__(self) -> None:
        self._events: List[Dict[str, FieldValue]] = []

    def record(self, kind: str, t: float,
               **fields: FieldValue) -> Dict[str, FieldValue]:
        """Append one event; returns the stored record."""
        for reserved in ("seq", "t", "event"):
            if reserved in fields:
                raise ValueError(f"field name {reserved!r} is reserved")
        record: Dict[str, FieldValue] = {
            "seq": len(self._events), "t": float(t), "event": kind}
        record.update(fields)
        self._events.append(record)
        return record

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Dict[str, FieldValue]]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[Dict[str, FieldValue]]:
        return [event for event in self._events if event["event"] == kind]

    def kinds(self) -> Dict[str, int]:
        """Event-kind -> occurrence count, sorted by kind."""
        counts: Dict[str, int] = {}
        for event in self._events:
            kind = str(event["event"])
            counts[kind] = counts.get(kind, 0) + 1
        return dict(sorted(counts.items()))

    def lines(self) -> Iterator[str]:
        """One canonical JSON line per event (sorted keys)."""
        for event in self._events:
            yield json.dumps(event, sort_keys=True, separators=(",", ":"))

    def write(self, path: str) -> int:
        """Write the trace as JSONL; returns the number of records."""
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.lines():
                handle.write(line + "\n")
        return len(self._events)


def read_events(path: str) -> List[Dict[str, FieldValue]]:
    """Load a JSONL event trace written by :meth:`EventTrace.write`."""
    events: List[Dict[str, FieldValue]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: invalid JSON: {error}") from None
            if not isinstance(record, dict) or "event" not in record:
                raise ValueError(
                    f"{path}:{line_number}: not an event record")
            events.append(record)
    return events

"""Pipeline perf snapshots: the ``BENCH_pipeline.json`` trajectory point.

Measures the two claims the incremental pipeline makes:

1. **Incremental beats full.**  For a seeded synthetic population of N
   peers, one refresh consuming a *single-event* delta must be far cheaper
   than a forced full rebuild — that ratio is the point of delta tracking.
2. **Dense beats sparse when TM densifies.**  Past ~30% density the numpy
   product should beat the dict-of-dicts product (the ``"auto"`` backend
   heuristic's premise), while agreeing to float tolerance.

Snapshots carry the same provenance stamp as ``BENCH_obs.json`` (seed,
config hash, git sha — see :mod:`repro.obs.bench`) so CI can gate on the
speedups and regress them across commits.  Wall-clock numbers live only in
the timing fields; the workload itself is fully deterministic.

Core imports are deferred into the functions to mirror
:mod:`repro.obs.bench` (core modules import :mod:`repro.obs.recorder`).
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Sequence

from .bench import run_stamp

__all__ = ["collect_pipeline_snapshot", "incremental_speedup",
           "dense_speedup"]

#: Evaluations / downloads / ranks per peer in the synthetic workload.
_EVALS_PER_PEER = 12
_DOWNLOADS_PER_PEER = 6
_RANKS_PER_PEER = 2

#: Backend micro-bench shape: node count and target density (> the 30%
#: auto-threshold, so the heuristic must pick dense here).
_BACKEND_NODES = 120
_BACKEND_DENSITY = 0.5
_BACKEND_STEPS = 2


def _zipf_index(rng: random.Random, n: int) -> int:
    """Log-uniform index in [0, n): a cheap Zipf-ish popularity skew."""
    return min(int(n ** rng.random()) - 1, n - 1)


def _seed_system(peers: int, seed: int):
    """A populated reputation system over ``peers`` users, fully refreshed."""
    from ..core import MultiDimensionalReputationSystem

    rng = random.Random(seed)
    system = MultiDimensionalReputationSystem(auto_refresh=False)
    users = [f"u{i:04d}" for i in range(peers)]
    files = [f"f{i:04d}" for i in range(peers * 2)]
    for user in users:
        for _ in range(_EVALS_PER_PEER):
            file_id = files[_zipf_index(rng, len(files))]
            system.record_vote(user, file_id, rng.random())
        for _ in range(_DOWNLOADS_PER_PEER):
            uploader = users[rng.randrange(peers)]
            if uploader == user:
                continue
            file_id = files[_zipf_index(rng, len(files))]
            system.record_download(user, uploader, file_id,
                                   rng.uniform(1e5, 1e7))
            system.record_vote(user, file_id, rng.random())
        for _ in range(_RANKS_PER_PEER):
            ratee = users[rng.randrange(peers)]
            if ratee != user:
                system.record_rank(user, ratee, rng.random())
    system.recompute()
    system.refresh_view()  # initial full build, outside all timings
    return system, users, files, rng


def _time_full_refresh(system, repeats: int) -> float:
    """Mean seconds per forced full rebuild."""
    total = 0.0
    for _ in range(repeats):
        started = time.perf_counter()
        system.pipeline.refresh(force_full=True)
        total += time.perf_counter() - started
    return total / repeats


def _time_incremental_refresh(system, users: Sequence[str],
                              files: Sequence[str], rng: random.Random,
                              events: int) -> float:
    """Mean seconds per single-event delta refresh."""
    total = 0.0
    for _ in range(events):
        user = users[rng.randrange(len(users))]
        file_id = files[_zipf_index(rng, len(files))]
        system.record_vote(user, file_id, rng.random())
        started = time.perf_counter()
        system.pipeline.refresh()
        total += time.perf_counter() - started
    return total / events


def _bench_refresh(peers: int, seed: int, events: int) -> Dict[str, object]:
    system, users, files, rng = _seed_system(peers, seed)
    trust = system.pipeline.trust
    full_repeats = max(1, min(5, 500 // peers))
    full_seconds = _time_full_refresh(system, repeats=full_repeats)
    incremental_seconds = _time_incremental_refresh(
        system, users, files, rng, events)
    return {
        "peers": peers,
        "tm_rows": len(trust.row_ids()),
        "tm_entries": trust.entry_count(),
        "full_refresh_seconds": full_seconds,
        "incremental_refresh_seconds": incremental_seconds,
        "incremental_speedup": (full_seconds / incremental_seconds
                                if incremental_seconds > 0 else 0.0),
    }


def _dense_matrix(seed: int):
    """A random row-stochastic matrix at the backend bench's density."""
    from ..core import TrustMatrix

    rng = random.Random(seed)
    matrix = TrustMatrix()
    ids = [f"n{i:03d}" for i in range(_BACKEND_NODES)]
    per_row = max(1, int(_BACKEND_DENSITY * (_BACKEND_NODES - 1)))
    for i in ids:
        targets = rng.sample([j for j in ids if j != i], per_row)
        values = {j: rng.random() for j in targets}
        total = sum(values.values())
        for j, value in values.items():
            matrix.set(i, j, value / total)
    return matrix


def _bench_backends(seed: int) -> Dict[str, object]:
    from ..core import (DENSE_BACKEND, SPARSE_BACKEND, TrustMatrix,
                        select_backend)

    matrix = _dense_matrix(seed)
    ids = matrix.node_ids()

    def best_of(backend) -> "tuple":
        best = float("inf")
        result: TrustMatrix = TrustMatrix()
        for _ in range(3):
            started = time.perf_counter()
            result = backend.power(matrix, _BACKEND_STEPS)
            best = min(best, time.perf_counter() - started)
        return best, result

    sparse_seconds, sparse_result = best_of(SPARSE_BACKEND)
    dense_seconds, dense_result = best_of(DENSE_BACKEND)
    max_abs_diff = max(
        (abs(sparse_result.get(i, j) - dense_result.get(i, j))
         for i in ids for j in ids), default=0.0)
    return {
        "nodes": _BACKEND_NODES,
        "density": matrix.density(ids),
        "steps": _BACKEND_STEPS,
        "sparse_power_seconds": sparse_seconds,
        "dense_power_seconds": dense_seconds,
        "dense_speedup": (sparse_seconds / dense_seconds
                          if dense_seconds > 0 else 0.0),
        "results_max_abs_diff": max_abs_diff,
        "auto_selects": select_backend(matrix).name,
    }


def collect_pipeline_snapshot(seed: int = 42,
                              sizes: Sequence[int] = (100, 500, 1000),
                              events: int = 20) -> Dict[str, object]:
    """Run the pipeline bench workload and return the stamped snapshot."""
    config = {
        "sizes": list(sizes),
        "events": events,
        "evals_per_peer": _EVALS_PER_PEER,
        "downloads_per_peer": _DOWNLOADS_PER_PEER,
        "ranks_per_peer": _RANKS_PER_PEER,
        "backend_nodes": _BACKEND_NODES,
        "backend_density": _BACKEND_DENSITY,
    }
    refresh: List[Dict[str, object]] = [
        _bench_refresh(peers, seed, events) for peers in sizes]
    return {
        **run_stamp(seed, config),
        "refresh": refresh,
        "backend": _bench_backends(seed),
    }


def incremental_speedup(snapshot: Dict[str, object],
                        peers: int) -> float:
    """The full/incremental refresh ratio recorded for a population size."""
    for entry in snapshot.get("refresh", ()):  # type: ignore[union-attr]
        if isinstance(entry, dict) and entry.get("peers") == peers:
            return float(entry.get("incremental_speedup", 0.0))
    return 0.0


def dense_speedup(snapshot: Dict[str, object]) -> float:
    """The sparse/dense power ratio on the >30%-density bench matrix."""
    backend = snapshot.get("backend", {})
    if not isinstance(backend, dict):
        return 0.0
    return float(backend.get("dense_speedup", 0.0))

"""Pipeline perf snapshots: the ``BENCH_pipeline.json`` trajectory point.

Measures the claims the incremental pipeline makes:

1. **Incremental beats full.**  For a seeded synthetic population of N
   peers, one refresh consuming a *single-event* delta must be far cheaper
   than a forced full rebuild — that ratio is the point of delta tracking.
2. **Dense beats sparse when TM densifies.**  Past ~30% density the numpy
   product should beat the dict-of-dicts product (the ``"auto"`` backend
   heuristic's premise), while agreeing to float tolerance.
3. **CSR beats dense when TM stays sparse at scale.**  At ≤10% density on
   a CSR-regime node count the compressed product should beat the dense
   numpy product — the third regime of the ``"auto"`` heuristic.
4. **Sharded beats monolithic at scale.**  Replaying one event stream
   through the monolithic and the sharded pipeline (identical checksums
   required — the refactor must not change a single bit), per-refresh
   latency drops because the sharded pipeline patches only incident
   shards and resolves its backend from O(1) counters instead of
   O(entries) matrix scans.

Snapshots carry the same provenance stamp as ``BENCH_obs.json`` (seed,
config hash, git sha — see :mod:`repro.obs.bench`) so CI can gate on the
speedups and regress them across commits.  Wall-clock numbers live only in
the timing fields; the workload itself is fully deterministic.

Core imports are deferred into the functions to mirror
:mod:`repro.obs.bench` (core modules import :mod:`repro.obs.recorder`).
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Sequence, Tuple

from .bench import run_stamp

__all__ = ["collect_pipeline_snapshot", "incremental_speedup",
           "dense_speedup", "sharded_speedup", "scaling_identical",
           "csr_speedup"]

#: Evaluations / downloads / ranks per peer in the synthetic workload.
_EVALS_PER_PEER = 12
_DOWNLOADS_PER_PEER = 6
_RANKS_PER_PEER = 2

#: Backend micro-bench shape: node count and target density (> the 30%
#: auto-threshold, so the heuristic must pick dense here).
_BACKEND_NODES = 120
_BACKEND_DENSITY = 0.5
_BACKEND_STEPS = 2

#: CSR micro-bench shape: node count deep in the CSR regime (>= 256) at a
#: density well under the 30% dense threshold, so auto must pick csr.  The
#: csr-vs-dense margin widens with node count; 1000 nodes keeps the bench
#: under ~2s while the win is clearly measurable.
_CSR_NODES = 1000
_CSR_DENSITY = 0.05
_CSR_STEPS = 2

#: Scaling workload: per-peer event counts for the sharded-vs-monolithic
#: tiers.  File picks are *uniform* (not Zipf) so co-evaluator counts stay
#: bounded and TM density falls as 1/peers — the regime sharding targets.
_SCALED_EVALS_PER_PEER = 8
_SCALED_DOWNLOADS_PER_PEER = 4
_SCALED_RANKS_PER_PEER = 2


def _zipf_index(rng: random.Random, n: int) -> int:
    """Log-uniform index in [0, n): a cheap Zipf-ish popularity skew."""
    return min(int(n ** rng.random()) - 1, n - 1)


def _seed_system(peers: int, seed: int):
    """A populated reputation system over ``peers`` users, fully refreshed."""
    from ..core import MultiDimensionalReputationSystem

    rng = random.Random(seed)
    system = MultiDimensionalReputationSystem(auto_refresh=False)
    users = [f"u{i:04d}" for i in range(peers)]
    files = [f"f{i:04d}" for i in range(peers * 2)]
    for user in users:
        for _ in range(_EVALS_PER_PEER):
            file_id = files[_zipf_index(rng, len(files))]
            system.record_vote(user, file_id, rng.random())
        for _ in range(_DOWNLOADS_PER_PEER):
            uploader = users[rng.randrange(peers)]
            if uploader == user:
                continue
            file_id = files[_zipf_index(rng, len(files))]
            system.record_download(user, uploader, file_id,
                                   rng.uniform(1e5, 1e7))
            system.record_vote(user, file_id, rng.random())
        for _ in range(_RANKS_PER_PEER):
            ratee = users[rng.randrange(peers)]
            if ratee != user:
                system.record_rank(user, ratee, rng.random())
    system.recompute()
    system.refresh_view()  # initial full build, outside all timings
    return system, users, files, rng


def _time_full_refresh(system, repeats: int) -> float:
    """Mean seconds per forced full rebuild."""
    total = 0.0
    for _ in range(repeats):
        started = time.perf_counter()
        system.pipeline.refresh(force_full=True)
        total += time.perf_counter() - started
    return total / repeats


def _time_incremental_refresh(system, users: Sequence[str],
                              files: Sequence[str], rng: random.Random,
                              events: int) -> float:
    """Mean seconds per single-event delta refresh."""
    total = 0.0
    for _ in range(events):
        user = users[rng.randrange(len(users))]
        file_id = files[_zipf_index(rng, len(files))]
        system.record_vote(user, file_id, rng.random())
        started = time.perf_counter()
        system.pipeline.refresh()
        total += time.perf_counter() - started
    return total / events


def _bench_refresh(peers: int, seed: int, events: int) -> Dict[str, object]:
    system, users, files, rng = _seed_system(peers, seed)
    trust = system.pipeline.trust
    full_repeats = max(1, min(5, 500 // peers))
    full_seconds = _time_full_refresh(system, repeats=full_repeats)
    incremental_seconds = _time_incremental_refresh(
        system, users, files, rng, events)
    return {
        "peers": peers,
        "tm_rows": len(trust.row_ids()),
        "tm_entries": trust.entry_count(),
        "full_refresh_seconds": full_seconds,
        "incremental_refresh_seconds": incremental_seconds,
        "incremental_speedup": (full_seconds / incremental_seconds
                                if incremental_seconds > 0 else 0.0),
    }


def _random_matrix(seed: int, nodes: int, density: float):
    """A random row-stochastic matrix at the requested shape."""
    from ..core import TrustMatrix

    rng = random.Random(seed)
    matrix = TrustMatrix()
    ids = [f"n{i:03d}" for i in range(nodes)]
    per_row = max(1, int(density * (nodes - 1)))
    for i in ids:
        targets = rng.sample([j for j in ids if j != i], per_row)
        values = {j: rng.random() for j in targets}
        total = sum(values.values())
        for j, value in values.items():
            matrix.set(i, j, value / total)
    return matrix


def _dense_matrix(seed: int):
    """A random row-stochastic matrix at the backend bench's density."""
    return _random_matrix(seed, _BACKEND_NODES, _BACKEND_DENSITY)


def _bench_backends(seed: int) -> Dict[str, object]:
    from ..core import (DENSE_BACKEND, SPARSE_BACKEND, TrustMatrix,
                        select_backend)

    matrix = _dense_matrix(seed)
    ids = matrix.node_ids()

    def best_of(backend) -> "tuple":
        best = float("inf")
        result: TrustMatrix = TrustMatrix()
        for _ in range(3):
            started = time.perf_counter()
            result = backend.power(matrix, _BACKEND_STEPS)
            best = min(best, time.perf_counter() - started)
        return best, result

    sparse_seconds, sparse_result = best_of(SPARSE_BACKEND)
    dense_seconds, dense_result = best_of(DENSE_BACKEND)
    max_abs_diff = max(
        (abs(sparse_result.get(i, j) - dense_result.get(i, j))
         for i in ids for j in ids), default=0.0)
    return {
        "nodes": _BACKEND_NODES,
        "density": matrix.density(ids),
        "steps": _BACKEND_STEPS,
        "sparse_power_seconds": sparse_seconds,
        "dense_power_seconds": dense_seconds,
        "dense_speedup": (sparse_seconds / dense_seconds
                          if dense_seconds > 0 else 0.0),
        "results_max_abs_diff": max_abs_diff,
        "auto_selects": select_backend(matrix).name,
    }


def _bench_csr(seed: int) -> Dict[str, object]:
    """Dense numpy vs CSR on a sparse matrix in the CSR regime."""
    from ..core import CSR_BACKEND, DENSE_BACKEND, TrustMatrix, select_backend

    matrix = _random_matrix(seed, _CSR_NODES, _CSR_DENSITY)
    ids = matrix.node_ids()

    def best_of(backend) -> "tuple":
        best = float("inf")
        result: TrustMatrix = TrustMatrix()
        for _ in range(3):
            started = time.perf_counter()
            result = backend.power(matrix, _CSR_STEPS)
            best = min(best, time.perf_counter() - started)
        return best, result

    dense_seconds, dense_result = best_of(DENSE_BACKEND)
    csr_seconds, csr_result = best_of(CSR_BACKEND)
    max_abs_diff = max(
        (abs(dense_result.get(i, j) - csr_result.get(i, j))
         for i in ids for j in ids), default=0.0)
    return {
        "nodes": _CSR_NODES,
        "density": matrix.density(ids),
        "steps": _CSR_STEPS,
        "flavor": CSR_BACKEND.flavor,
        "dense_power_seconds": dense_seconds,
        "csr_power_seconds": csr_seconds,
        "csr_speedup": (dense_seconds / csr_seconds
                        if csr_seconds > 0 else 0.0),
        "results_max_abs_diff": max_abs_diff,
        "auto_selects": select_backend(matrix).name,
    }


def _seed_scaled_system(peers: int, seed: int, shards: int = 1,
                        shard_workers: int = 1):
    """A populated system on the *scaling* workload (uniform file picks).

    Identical ``(peers, seed)`` produce an identical event history whatever
    the shard configuration — the configs differ only in partitioning, and
    bit-identity across them is asserted by the caller.
    """
    from ..core import MultiDimensionalReputationSystem, ReputationConfig

    rng = random.Random(seed)
    config = ReputationConfig(shards=shards, shard_workers=shard_workers)
    system = MultiDimensionalReputationSystem(config, auto_refresh=False)
    users = [f"u{i:05d}" for i in range(peers)]
    files = [f"f{i:05d}" for i in range(peers * 2)]
    for user in users:
        for _ in range(_SCALED_EVALS_PER_PEER):
            system.record_vote(user, files[rng.randrange(len(files))],
                               rng.random())
        for _ in range(_SCALED_DOWNLOADS_PER_PEER):
            uploader = users[rng.randrange(peers)]
            if uploader == user:
                continue
            file_id = files[rng.randrange(len(files))]
            system.record_download(user, uploader, file_id,
                                   rng.uniform(1e5, 1e7))
            system.record_vote(user, file_id, rng.random())
        for _ in range(_SCALED_RANKS_PER_PEER):
            ratee = users[rng.randrange(peers)]
            if ratee != user:
                system.record_rank(user, ratee, rng.random())
    system.recompute()
    system.refresh_view()  # initial full build, outside all timings
    return system, users, files


def _scaled_stream(peers: int, seed: int,
                   events: int) -> List[Tuple[str, str, float]]:
    """The deterministic single-event stream every pipeline variant replays."""
    rng = random.Random(seed + 1)
    stream: List[Tuple[str, str, float]] = []
    for _ in range(events):
        stream.append((f"u{rng.randrange(peers):05d}",
                       f"f{rng.randrange(peers * 2):05d}", rng.random()))
    return stream


def _replay_timed(system, stream: Sequence[Tuple[str, str, float]]) -> float:
    """Mean seconds per single-event refresh over ``stream``."""
    total = 0.0
    for user, file_id, value in stream:
        system.record_vote(user, file_id, value)
        started = time.perf_counter()
        system.pipeline.refresh()
        total += time.perf_counter() - started
    return total / max(1, len(stream))


def _bench_scaling(peers: int, seed: int, events: int, shards: int,
                   shard_workers: int,
                   check_workers: bool) -> Dict[str, object]:
    """Monolithic vs sharded replay of one event stream, checksum-gated."""
    stream = _scaled_stream(peers, seed, events)

    monolith, _users, _files = _seed_scaled_system(peers, seed)
    monolithic_seconds = _replay_timed(monolith, stream)
    monolithic_checksums = monolith.pipeline.checksums()
    trust = monolith.pipeline.trust
    entry: Dict[str, object] = {
        "peers": peers,
        "shards": shards,
        "events": len(stream),
        "tm_rows": len(trust.row_ids()),
        "tm_entries": trust.entry_count(),
        "monolithic_refresh_seconds": monolithic_seconds,
    }
    del monolith, trust

    sharded, _users, _files = _seed_scaled_system(peers, seed, shards=shards)
    sharded_seconds = _replay_timed(sharded, stream)
    entry.update({
        "sharded_refresh_seconds": sharded_seconds,
        "sharded_speedup": (monolithic_seconds / sharded_seconds
                            if sharded_seconds > 0 else 0.0),
        "checksums_match":
            sharded.pipeline.checksums() == monolithic_checksums,
    })
    del sharded

    if check_workers and shard_workers > 1:
        parallel, _users, _files = _seed_scaled_system(
            peers, seed, shards=shards, shard_workers=shard_workers)
        try:
            parallel_seconds = _replay_timed(parallel, stream)
            entry["workers"] = {
                "workers": shard_workers,
                "refresh_seconds": parallel_seconds,
                "matches_serial":
                    parallel.pipeline.checksums() == monolithic_checksums,
            }
        finally:
            parallel.close()
    return entry


def collect_pipeline_snapshot(seed: int = 42,
                              sizes: Sequence[int] = (100, 500, 1000),
                              events: int = 20,
                              scale_sizes: Sequence[int] = (),
                              scale_events: int = 5,
                              shards: int = 8,
                              shard_workers: int = 2) -> Dict[str, object]:
    """Run the pipeline bench workload and return the stamped snapshot.

    ``scale_sizes`` adds sharded-vs-monolithic tiers (see
    :func:`_bench_scaling`); the parallel-workers identity check runs at
    the smallest tier only, to bound seeding cost.
    """
    config = {
        "sizes": list(sizes),
        "events": events,
        "evals_per_peer": _EVALS_PER_PEER,
        "downloads_per_peer": _DOWNLOADS_PER_PEER,
        "ranks_per_peer": _RANKS_PER_PEER,
        "backend_nodes": _BACKEND_NODES,
        "backend_density": _BACKEND_DENSITY,
        "csr_nodes": _CSR_NODES,
        "csr_density": _CSR_DENSITY,
        "scale_sizes": list(scale_sizes),
        "scale_events": scale_events,
        "shards": shards,
        "shard_workers": shard_workers,
    }
    refresh: List[Dict[str, object]] = [
        _bench_refresh(peers, seed, events) for peers in sizes]
    snapshot: Dict[str, object] = {
        **run_stamp(seed, config),
        "refresh": refresh,
        "backend": _bench_backends(seed),
        "csr": _bench_csr(seed),
    }
    if scale_sizes:
        smallest = min(scale_sizes)
        snapshot["scaling"] = [
            _bench_scaling(peers, seed, scale_events, shards, shard_workers,
                           check_workers=(peers == smallest))
            for peers in scale_sizes]
    return snapshot


def incremental_speedup(snapshot: Dict[str, object],
                        peers: int) -> float:
    """The full/incremental refresh ratio recorded for a population size."""
    for entry in snapshot.get("refresh", ()):  # type: ignore[union-attr]
        if isinstance(entry, dict) and entry.get("peers") == peers:
            return float(entry.get("incremental_speedup", 0.0))
    return 0.0


def dense_speedup(snapshot: Dict[str, object]) -> float:
    """The sparse/dense power ratio on the >30%-density bench matrix."""
    backend = snapshot.get("backend", {})
    if not isinstance(backend, dict):
        return 0.0
    return float(backend.get("dense_speedup", 0.0))


def csr_speedup(snapshot: Dict[str, object]) -> float:
    """The dense/csr power ratio on the <=10%-density CSR-regime matrix."""
    section = snapshot.get("csr", {})
    if not isinstance(section, dict):
        return 0.0
    return float(section.get("csr_speedup", 0.0))


def sharded_speedup(snapshot: Dict[str, object], peers: int) -> float:
    """The monolithic/sharded replay ratio recorded for a scaling tier."""
    for entry in snapshot.get("scaling", ()):  # type: ignore[union-attr]
        if isinstance(entry, dict) and entry.get("peers") == peers:
            return float(entry.get("sharded_speedup", 0.0))
    return 0.0


def scaling_identical(snapshot: Dict[str, object]) -> bool:
    """True when every scaling tier reproduced the monolith bit-for-bit
    (and the parallel-workers replay, where run, matched too)."""
    entries = snapshot.get("scaling", ())
    if not entries:
        return False
    for entry in entries:  # type: ignore[union-attr]
        if not isinstance(entry, dict) or not entry.get("checksums_match"):
            return False
        workers = entry.get("workers")
        if isinstance(workers, dict) and not workers.get("matches_serial"):
            return False
    return True

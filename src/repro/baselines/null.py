"""Null mechanism: no reputation at all.

The control arm for every comparison: all peers are equally trusted, no file
is ever flagged fake.  Matches a pre-reputation P2P system.
"""

from __future__ import annotations

from typing import Optional

from .base import ReputationMechanism

__all__ = ["NullMechanism"]


class NullMechanism(ReputationMechanism):
    """Trusts everyone equally and knows nothing about files."""

    name = "null"

    def reputation(self, observer: str, target: str) -> float:
        return 0.0

    def file_score(self, observer: str, file_id: str) -> Optional[float]:
        return None

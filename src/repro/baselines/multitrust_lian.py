"""Lian et al.'s hybrid multi-trust baseline (MSR-TR-2006-14, ref [13]).

The scheme the paper extends: build a one-step trust matrix from *download
traffic only* (Tit-for-Tat-style private history), then derive two-step,
three-step, ... matrices ``TM^k`` whose tiers interpolate between private
Tit-for-Tat (tier 1) and global EigenTrust-like trust (deep tiers).
Service differentiation serves requesters by (tier asc, value desc).

The crucial difference from the paper's system is the *single* trust
dimension: the one-step matrix is built only from download volume, so it
inherits the sparsity that motivates the multi-dimensional design (claim C5).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.matrix import TrustMatrix
from ..core.multitrust import MultiTierView, TierAssignment
from .base import ReputationMechanism

__all__ = ["LianMultiTrustMechanism"]


class LianMultiTrustMechanism(ReputationMechanism):
    """Download-volume-only multi-tier trust (the paper's closest ancestor)."""

    name = "multitrust-lian"

    def __init__(self, max_tier: int = 3):
        if max_tier < 1:
            raise ValueError(f"max_tier must be >= 1, got {max_tier}")
        self._max_tier = max_tier
        self._volume: Dict[Tuple[str, str], float] = {}
        self._view: Optional[MultiTierView] = None
        self._dirty = True

    def record_download(self, downloader: str, uploader: str, file_id: str,
                        size_bytes: float, timestamp: float = 0.0) -> None:
        key = (downloader, uploader)
        self._volume[key] = self._volume.get(key, 0.0) + size_bytes
        self._dirty = True

    def refresh(self) -> None:
        raw = TrustMatrix()
        for (i, j), volume in self._volume.items():
            if volume > 0:
                raw.set(i, j, volume)
        self._view = MultiTierView(raw.row_normalized(), self._max_tier)
        self._dirty = False

    def _ensure_view(self) -> MultiTierView:
        if self._dirty or self._view is None:
            self.refresh()
        assert self._view is not None
        return self._view

    def assign_tier(self, observer: str, target: str) -> TierAssignment:
        """Which tier does ``target`` fall into for ``observer``?"""
        return self._ensure_view().assign(observer, target)

    def reputation(self, observer: str, target: str) -> float:
        """Scalarised tier assignment: higher is better.

        A target at tier ``k`` with in-tier value ``v`` maps to
        ``(max_tier - k + v)`` so any tier-k target outranks every
        tier-(k+1) target, matching the paper's ordering rule; unreachable
        targets score 0.
        """
        assignment = self.assign_tier(observer, target)
        if assignment.tier is None:
            return 0.0
        return (self._max_tier - assignment.tier) + min(assignment.value, 1.0)

    def one_step_matrix(self) -> TrustMatrix:
        return self._ensure_view().tier_matrix(1)

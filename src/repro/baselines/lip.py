"""LIP baseline: lifetime- and popularity-based fake-file ranking (ref [3]).

Feng & Dai's observation: real files survive — they accumulate owners and
stay in the system — while fakes are downloaded, recognised and deleted, so
a file's *lifetime* and *popularity* (owner count) separate real from fake
without any votes.  The paper cites LIP's weakness directly: "this method
cannot identify the quality of a file accurately when its number of owners
is too small" — benchmark C3 exercises exactly that unpopular-file regime.

LIP is file-centric: it scores files, not users, so :meth:`reputation` is
identically zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from .base import ReputationMechanism

__all__ = ["LIPMechanism"]


@dataclass
class _FileState:
    first_seen: float = math.inf
    last_seen: float = -math.inf
    owners: Set[str] = field(default_factory=set)
    deletions: int = 0


class LIPMechanism(ReputationMechanism):
    """Score files by normalised lifetime x log-popularity, minus deletions.

    ``half_owners`` sets the owner count at which the popularity term reaches
    0.5; ``lifetime_scale_seconds`` plays the same role for lifetime.
    """

    name = "lip"

    def __init__(self, half_owners: int = 8,
                 lifetime_scale_seconds: float = 10 * 24 * 3600.0):
        if half_owners < 1:
            raise ValueError("half_owners must be >= 1")
        if lifetime_scale_seconds <= 0:
            raise ValueError("lifetime_scale_seconds must be positive")
        self._half_owners = half_owners
        self._lifetime_scale = lifetime_scale_seconds
        self._files: Dict[str, _FileState] = {}

    # ------------------------------------------------------------------ #
    # Signals                                                            #
    # ------------------------------------------------------------------ #

    def record_download(self, downloader: str, uploader: str, file_id: str,
                        size_bytes: float, timestamp: float = 0.0) -> None:
        state = self._files.setdefault(file_id, _FileState())
        state.first_seen = min(state.first_seen, timestamp)
        state.last_seen = max(state.last_seen, timestamp)
        state.owners.add(downloader)
        state.owners.add(uploader)

    def record_deletion(self, user: str, file_id: str,
                        timestamp: float = 0.0) -> None:
        state = self._files.setdefault(file_id, _FileState())
        state.deletions += 1
        state.owners.discard(user)
        state.last_seen = max(state.last_seen, timestamp)

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #

    def reputation(self, observer: str, target: str) -> float:
        return 0.0

    def file_score(self, observer: str, file_id: str) -> Optional[float]:
        state = self._files.get(file_id)
        if state is None or not math.isfinite(state.first_seen):
            return None
        lifetime = max(state.last_seen - state.first_seen, 0.0)
        lifetime_term = 1.0 - math.exp(-lifetime / self._lifetime_scale)
        owner_count = len(state.owners)
        popularity_term = owner_count / (owner_count + self._half_owners)
        # Deletions are the negative signal: each deletion relative to the
        # surviving owner population pushes the score down.
        total_holders = owner_count + state.deletions
        deletion_penalty = (state.deletions / total_holders
                            if total_holders else 0.0)
        raw = 0.5 * lifetime_term + 0.5 * popularity_term
        return max(raw * (1.0 - deletion_penalty), 0.0)

    def owner_count(self, file_id: str) -> int:
        state = self._files.get(file_id)
        return len(state.owners) if state else 0
